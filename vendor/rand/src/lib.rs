//! Offline stand-in for the `rand` crate.
//!
//! `ffs-sim` brings its own deterministic xoshiro256++ generator and only
//! implements `rand::RngCore` for interoperability, so this stub carries
//! just that trait and its error type.

use std::fmt;

/// Error type returned by fallible RNG operations.
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator, as in `rand` 0.8.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}
