//! Offline stand-in for the `criterion` crate.
//!
//! Provides the subset of the API used by `ffs-bench` — `Criterion`,
//! `bench_function`, `benchmark_group`/`sample_size`/`finish`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock-mean measurement loop instead of criterion's statistical
//! machinery. Benchmarks stay runnable (`cargo bench`) and report a mean
//! time per iteration, which is enough to track the perf trajectory offline.

use std::time::{Duration, Instant};

/// Re-export for code that imports `black_box` from criterion.
pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly, accumulating elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up iteration outside the timed region.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let mean_ns = if b.iters == 0 {
        0.0
    } else {
        b.total.as_nanos() as f64 / b.iters as f64
    };
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "us")
    } else {
        (mean_ns, "ns")
    };
    println!("bench {name:<40} {value:>10.3} {unit}/iter ({} iters)", b.iters);
}

impl Criterion {
    /// Benchmarks `f` under `id` (`&str` or `String`, as in criterion).
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(id.as_ref(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
