//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's panic-free `lock()`
//! signature (no `Result`; poisoning is ignored by recovering the inner
//! guard, which matches parking_lot's no-poisoning behaviour).

use std::sync::PoisonError;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}
