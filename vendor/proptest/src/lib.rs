//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API that the workspace's property
//! tests use — the `proptest!` macro, `Strategy` ranges / tuples / `Just` /
//! `any` / `prop_oneof!` / `collection::vec`, and the `prop_assert*`
//! macros — on top of a small deterministic generator. Unlike the real
//! proptest there is no shrinking and no failure persistence: each test
//! runs a fixed number of cases (default 64, override with
//! `PROPTEST_CASES`) from a seed derived from the test name, so failures
//! reproduce exactly across runs.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A generator of values for one property-test argument.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! unsigned_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    unsigned_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! unsigned_range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    // Span fits in u64 for every type below u64's full range;
                    // a saturating add keeps 0..=u64::MAX from overflowing
                    // (it merely never yields u64::MAX itself).
                    let span = ((*self.end() - *self.start()) as u64).saturating_add(1);
                    self.start() + rng.below(span) as $t
                }
            }
        )*};
    }
    unsigned_range_inclusive_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Values producible uniformly at random, for [`any`].
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy producing any value of `T`; see [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy of all values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strategy producing exactly one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident.$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Uniform choice among boxed strategies; built by `prop_oneof!`.
    pub struct Union<V> {
        options: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Boxes a strategy, erasing its concrete type (helper for `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed size or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_excl: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max_excl: r.end }
        }
    }

    /// Strategy producing vectors of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Deterministic SplitMix64 generator seeded from the test name, so a
    /// failing case reproduces on every run without persisted regressions.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the test name gives a stable per-test seed.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; returns 0 when `n` is 0.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runs `f` for the configured number of cases, panicking with the case
    /// index on the first property failure.
    pub fn run<F>(name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), String>,
    {
        let cases: u32 = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let mut rng = TestRng::from_name(name);
        for case in 0..cases {
            if let Err(msg) = f(&mut rng) {
                panic!("property '{name}' failed on case {case}/{cases}: {msg}");
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    concat!(module_path!(), "::", stringify!($name)),
                    |__ffs_proptest_rng: &mut $crate::test_runner::TestRng| {
                        $(
                            let $arg = $crate::strategy::Strategy::generate(
                                &($strat),
                                __ffs_proptest_rng,
                            );
                        )+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)+), file!(), line!(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r,
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "assertion failed: `{} != {}` ({})\n  both: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l,
            ));
        }
    }};
}
