//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module surface used by `ffs-pipeline`'s executor is
//! provided: `bounded`, `Sender`, `Receiver`, and the matching error types,
//! backed by `std::sync::mpsc::sync_channel`. The std channel is MPSC
//! rather than MPMC, which is sufficient for the executor's
//! one-receiver-per-stage topology.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of a bounded channel.
    ///
    /// Cloneable like crossbeam's MPMC receiver; clones share one
    /// underlying std receiver behind a mutex, so concurrent `recv` calls
    /// serialize rather than run lock-free. The pipeline executor only ever
    /// keeps one active consumer per channel, which this covers.
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    /// Error returned when sending on a disconnected channel.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned when receiving from an empty, disconnected channel.
    #[derive(Debug)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Creates a bounded channel of capacity `cap`.
    ///
    /// A capacity of zero creates a rendezvous channel, matching crossbeam's
    /// semantics.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued or every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.0.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv().map_err(|_| RecvError)
        }

        /// Returns a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            let rx = self.0.lock().unwrap_or_else(PoisonError::into_inner);
            rx.try_recv()
        }
    }
}
