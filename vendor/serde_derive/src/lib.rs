//! Offline stand-in for the `serde_derive` crate.
//!
//! The repository annotates most public data types with
//! `#[derive(Serialize, Deserialize)]` so the eventual wire formats are
//! declared at the type definition, but nothing in the codebase serializes
//! yet (there are no `#[serde(...)]` attributes and no `serde_json` calls).
//! This build environment has no network access to crates.io, so the real
//! derive implementation is replaced by macros that accept the same syntax
//! and expand to nothing. The blanket trait impls live in the companion
//! `serde` stub, keeping every `T: Serialize` bound satisfiable.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
