//! Offline stand-in for the `rand_distr` crate.
//!
//! The workspace declares this dependency for future distribution sampling
//! but currently derives every distribution (Poisson arrivals, Gamma
//! burstiness) from `ffs-sim`'s own `SimRng` via inverse-transform helpers,
//! so no items are needed here yet.
