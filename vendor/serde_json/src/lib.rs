//! Offline stand-in for the `serde_json` crate.
//!
//! The repository emits its few JSON artifacts (benchmark reports) by
//! hand-formatting, so this stub only carries the one helper that
//! hand-formatting needs: JSON string escaping.

/// Escapes `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
