//! Offline stand-in for the `serde` crate.
//!
//! `Serialize` and `Deserialize` are reduced to marker traits with blanket
//! implementations so that existing `#[derive(Serialize, Deserialize)]`
//! annotations and `T: Serialize` bounds keep compiling without network
//! access to crates.io. No actual serialization is provided; code that needs
//! a wire format writes it by hand (see `ffs-experiments`' JSON emitters).

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}
