//! Top-level facade for the FluidFaaS reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a
//! single dependency. See `DESIGN.md` for the system inventory.

pub use ffs_baselines as baselines;
pub use ffs_dag as dag;
pub use ffs_experiments as experiments;
pub use ffs_metrics as metrics;
pub use ffs_mig as mig;
pub use ffs_pipeline as pipeline;
pub use ffs_profile as profile;
pub use ffs_sim as sim;
pub use ffs_trace as trace;
pub use fluidfaas;
