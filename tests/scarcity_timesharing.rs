//! Scenario test: a single-GPU fleet with more functions than big slices
//! forces the full §5.3 machinery — low-utilization demotion (③),
//! shared-slice binding, and LRU eviction (④) — and every function still
//! gets served.

use fluidfaas_repro::fluidfaas::platform::runner::run_platform;
use fluidfaas_repro::fluidfaas::{FfsConfig, FluidFaaSSystem};
use fluidfaas_repro::trace::{AzureTraceConfig, WorkloadClass};

#[test]
fn four_functions_share_one_gpu_through_eviction() {
    // One GPU (4g.40gb + 2g.20gb + 1g.10gb), four medium functions of
    // ~15-30 GB each: at most two can hold exclusive slices; the others
    // must time-share.
    let mut cfg = FfsConfig::paper_default(WorkloadClass::Medium);
    cfg.nodes = 1;
    cfg.gpus_per_node = 1;
    let trace = AzureTraceConfig::steady(WorkloadClass::Medium.apps(), 180.0, 0.4, 3).generate();
    let mut sys = FluidFaaSSystem::new(cfg, &trace);
    let out = run_platform(&mut sys, &trace);

    // Every app must complete requests despite the scarcity.
    for app in WorkloadClass::Medium.apps() {
        let served = out
            .log
            .records()
            .iter()
            .filter(|r| r.app_index == app.index() && r.completed.is_some())
            .count();
        assert!(
            served > 0,
            "App {} starved: {:?}",
            app.index(),
            sys.scheduler_log()
        );
    }

    // The shared machinery actually engaged: reloads onto shared slices,
    // and (with several functions rotating through one slot) evictions.
    let log = sys.scheduler_log();
    assert!(log.reloads > 0, "{log:?}");
    assert!(log.evictions > 0, "{log:?}");
    // Demote-under-pressure retired lightly-used exclusive instances.
    assert!(log.retirements > 0, "{log:?}");

    // Overall most requests should still complete (latency may be poor —
    // that is the cost of scarcity, not a correctness failure).
    let done = out
        .log
        .records()
        .iter()
        .filter(|r| r.completed.is_some())
        .count();
    assert!(
        done as f64 / out.log.len() as f64 > 0.8,
        "completed {done}/{}",
        out.log.len()
    );
}

#[test]
fn strong_isolation_is_never_violated() {
    // At any instant a MIG slice backs at most one resident model; the
    // cost tracker's double-allocation debug assertions (which run in this
    // test profile) plus the fleet allocator's occupancy checks enforce
    // it. Run a contended scenario to exercise them.
    let mut cfg = FfsConfig::paper_default(WorkloadClass::Light);
    cfg.nodes = 1;
    cfg.gpus_per_node = 1;
    let trace = AzureTraceConfig::for_workload(WorkloadClass::Light, 90.0, 5).generate();
    let mut sys = FluidFaaSSystem::new(cfg, &trace);
    let out = run_platform(&mut sys, &trace);
    assert_eq!(out.log.len(), trace.len());
}
