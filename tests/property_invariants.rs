//! Property-based tests of the core cross-crate invariants.

use proptest::prelude::*;

use fluidfaas_repro::dag::{enumerate_partitions, linear_blocks, Component, FfsDag, NodeId};
use fluidfaas_repro::mig::placement::{enumerate_all_layouts, PLACEMENT_UNITS};
use fluidfaas_repro::mig::{Fleet, PartitionScheme, SliceProfile};
use fluidfaas_repro::profile::{App, FunctionProfile, PerfModel, Variant};
use fluidfaas_repro::sim::{SimDuration, SimRng, SimTime};

proptest! {
    /// Every valid MIG layout respects the hardware budgets.
    #[test]
    fn all_valid_layouts_respect_budgets(idx in 0usize..512) {
        static CACHE: std::sync::OnceLock<Vec<fluidfaas_repro::mig::PartitionLayout>> =
            std::sync::OnceLock::new();
        let layouts = CACHE.get_or_init(enumerate_all_layouts);
        let l = &layouts[idx % layouts.len()];
        prop_assert!(l.total_gpcs() <= 7);
        prop_assert!(l.units_used() <= PLACEMENT_UNITS as u32);
        for p in SliceProfile::ALL {
            let n = l.profiles().filter(|&q| q == p).count() as u32;
            prop_assert!(n <= p.max_count());
        }
    }

    /// The fleet allocator never double-books and always restores state.
    #[test]
    fn fleet_allocation_round_trip(picks in proptest::collection::vec(0usize..48, 0..48)) {
        let mut fleet = Fleet::new(2, 8, &PartitionScheme::p1()).unwrap();
        let all: Vec<_> = fleet.free_slices(None).iter().map(|s| s.id).collect();
        let mut allocated = Vec::new();
        for p in picks {
            let id = all[p % all.len()];
            if fleet.allocate(id).is_ok() {
                allocated.push(id);
            } else {
                // Double allocation must be the only failure reason.
                prop_assert!(allocated.contains(&id));
            }
        }
        let free_now = fleet.free_slices(None).len();
        prop_assert_eq!(free_now, all.len() - allocated.len());
        for id in allocated {
            fleet.release(id).unwrap();
        }
        prop_assert_eq!(fleet.free_slices(None).len(), all.len());
        prop_assert_eq!(fleet.allocated_gpcs(), 0);
    }

    /// Consecutive-partition enumeration is complete and order-preserving
    /// for random chains.
    #[test]
    fn chain_partitions_complete(n in 1usize..8, works in proptest::collection::vec(1.0f64..100.0, 8)) {
        let mut dag = FfsDag::new("chain");
        let mut prev: Option<NodeId> = None;
        for (i, &work) in works.iter().enumerate().take(n) {
            let inputs: Vec<NodeId> = prev.into_iter().collect();
            prev = Some(dag.register(
                Component::new(format!("c{i}"), 1.0, work, 1.0),
                &inputs,
            ).unwrap());
        }
        let blocks = linear_blocks(&dag);
        prop_assert_eq!(blocks.len(), n);
        let parts = enumerate_partitions(&blocks);
        prop_assert_eq!(parts.len(), 1usize << (n - 1));
        for p in &parts {
            let flat: Vec<NodeId> = p.stages().iter().flatten().copied().collect();
            prop_assert_eq!(flat.len(), n);
            for w in flat.windows(2) {
                prop_assert!(w[0] < w[1], "topological order preserved");
            }
        }
    }

    /// Pipeline latency always at least the bottleneck, and both scale
    /// monotonically with slice size.
    #[test]
    fn estimate_algebra(variant_idx in 0usize..3, app_idx in 0usize..4) {
        let app = App::ALL[app_idx];
        let variant = Variant::ALL[variant_idx];
        let p = FunctionProfile::build(app, variant, &PerfModel::default());
        let full = fluidfaas_repro::dag::PipelinePartition::new(p.blocks.clone());
        for slice in [SliceProfile::G1_10, SliceProfile::G2_20, SliceProfile::G4_40] {
            let slices = vec![slice; full.num_stages()];
            let lat = p.pipeline_latency_ms(&full, &slices);
            let bott = p.pipeline_bottleneck_ms(&full, &slices);
            prop_assert!(lat >= bott);
            prop_assert!(bott > 0.0);
        }
        let lat_small = p.pipeline_latency_ms(&full, &vec![SliceProfile::G1_10; full.num_stages()]);
        let lat_big = p.pipeline_latency_ms(&full, &vec![SliceProfile::G7_80; full.num_stages()]);
        prop_assert!(lat_big < lat_small);
    }

    /// SimTime arithmetic is consistent for random values.
    #[test]
    fn simtime_algebra(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = SimTime::from_micros(a);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((t + dur) - t, dur);
        prop_assert_eq!((t + dur).saturating_since(t), dur);
        prop_assert_eq!(t.saturating_since(t + dur), SimDuration::ZERO);
    }

    /// Split RNG streams are reproducible and disjoint-seeming.
    #[test]
    fn rng_split_reproducible(seed in any::<u64>(), stream in 0u64..1024) {
        let root = SimRng::seed_from_u64(seed);
        let mut a = root.split(stream);
        let mut b = root.split(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_raw(), b.next_raw());
        }
        let mut c = root.split(stream.wrapping_add(1));
        let first_c = c.next_raw();
        let mut a2 = root.split(stream);
        prop_assert_ne!(a2.next_raw(), first_c);
    }
}
