//! Cross-crate integration tests: trace generation → platform simulation →
//! metrics, for all three systems, asserting the paper's headline shapes.

use fluidfaas_repro::experiments::runner::{run_workload, SystemKind};
use fluidfaas_repro::fluidfaas::platform::runner::run_platform;
use fluidfaas_repro::fluidfaas::{FfsConfig, FluidFaaSSystem};
use fluidfaas_repro::trace::{AzureTraceConfig, WorkloadClass};

#[test]
fn medium_workload_fluidfaas_beats_esg_on_slo() {
    let fluid = run_workload(SystemKind::FluidFaaS, WorkloadClass::Medium, 120.0, 7);
    let esg = run_workload(SystemKind::Esg, WorkloadClass::Medium, 120.0, 7);
    assert!(
        fluid.log.slo_hit_rate() > esg.log.slo_hit_rate(),
        "fluid {:.3} vs esg {:.3}",
        fluid.log.slo_hit_rate(),
        esg.log.slo_hit_rate()
    );
}

#[test]
fn heavy_workload_fluidfaas_serves_faster_and_never_less() {
    // At moderate trace lengths both systems eventually drain their
    // backlogs, so completion counts tie; the separation shows up in how
    // *quickly* requests finish (P95) and in completions inside the
    // offered window.
    let fluid = run_workload(SystemKind::FluidFaaS, WorkloadClass::Heavy, 120.0, 7);
    let esg = run_workload(SystemKind::Esg, WorkloadClass::Heavy, 120.0, 7);
    let in_window = |out: &fluidfaas_repro::fluidfaas::platform::runner::RunOutput| {
        out.log
            .records()
            .iter()
            .filter(|r| {
                r.completed
                    .map(|c| c.as_secs_f64() <= 120.0)
                    .unwrap_or(false)
            })
            .count()
    };
    assert!(
        in_window(&fluid) >= in_window(&esg),
        "fluid {} vs esg {}",
        in_window(&fluid),
        in_window(&esg)
    );
    let p95 = |out: &fluidfaas_repro::fluidfaas::platform::runner::RunOutput| {
        out.latency_cdf().p95().unwrap()
    };
    assert!(
        p95(&fluid) < 0.6 * p95(&esg),
        "fluid p95 {:.0} vs esg p95 {:.0}",
        p95(&fluid),
        p95(&esg)
    );
}

#[test]
fn every_request_is_accounted_exactly_once() {
    for kind in SystemKind::ALL {
        let trace = AzureTraceConfig::for_workload(WorkloadClass::Medium, 60.0, 3).generate();
        let cfg = FfsConfig::paper_default(WorkloadClass::Medium);
        let out = fluidfaas_repro::experiments::runner::run_system(kind, cfg, &trace);
        assert_eq!(
            out.log.len(),
            trace.len(),
            "{}: every arrival yields exactly one record",
            kind.name()
        );
        let mut ids: Vec<u64> = out.log.records().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            trace.len(),
            "{}: no duplicate records",
            kind.name()
        );
    }
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let a = run_workload(SystemKind::FluidFaaS, WorkloadClass::Heavy, 60.0, 11);
    let b = run_workload(SystemKind::FluidFaaS, WorkloadClass::Heavy, 60.0, 11);
    assert_eq!(a.log.slo_hit_rate(), b.log.slo_hit_rate());
    assert_eq!(a.log.latencies_ms(), b.log.latencies_ms());
    assert_eq!(a.cost.total_mig_time_secs(), b.cost.total_mig_time_secs());
}

#[test]
fn different_seeds_give_different_traces_but_same_shapes() {
    let mut fluid_wins = 0;
    for seed in [1, 2, 3] {
        let fluid = run_workload(SystemKind::FluidFaaS, WorkloadClass::Heavy, 90.0, seed);
        let esg = run_workload(SystemKind::Esg, WorkloadClass::Heavy, 90.0, seed);
        if fluid.log.slo_hit_rate() > esg.log.slo_hit_rate() {
            fluid_wins += 1;
        }
    }
    assert_eq!(
        fluid_wins, 3,
        "the heavy-workload ordering must be seed-robust"
    );
}

#[test]
fn pipelines_only_form_when_fragments_are_the_only_option() {
    // Light: every function fits every slice monolithically; no pipelines.
    let cfg = FfsConfig::paper_default(WorkloadClass::Light);
    let trace = AzureTraceConfig::for_workload(WorkloadClass::Light, 60.0, 5).generate();
    let mut sys = FluidFaaSSystem::new(cfg, &trace);
    let _ = run_platform(&mut sys, &trace);
    assert_eq!(sys.peak_pipelines(), 0, "light workload needs no pipelines");

    // Heavy: monoliths only fit 4g slices; pipelines must appear.
    let cfg = FfsConfig::paper_default(WorkloadClass::Heavy);
    let trace = AzureTraceConfig::for_workload(WorkloadClass::Heavy, 90.0, 5).generate();
    let mut sys = FluidFaaSSystem::new(cfg, &trace);
    let _ = run_platform(&mut sys, &trace);
    assert!(
        sys.peak_pipelines() > 0,
        "heavy workload must build pipelines"
    );
}

#[test]
fn drained_fleet_releases_exclusive_resources() {
    let mut cfg = FfsConfig::paper_default(WorkloadClass::Light);
    // Shorten the demote hysteresis so the 60 s drain suffices.
    cfg.exclusive_idle_grace = fluidfaas_repro::sim::SimDuration::from_secs(15);
    // A trace that stops early, followed by the drain window.
    let trace = AzureTraceConfig::steady(WorkloadClass::Light.apps(), 20.0, 5.0, 9).generate();
    let mut sys = FluidFaaSSystem::new(cfg, &trace);
    let out = run_platform(&mut sys, &trace);
    assert!(out.log.slo_hit_rate() > 0.5);
    // After draining, only time-sharing pool slices may remain allocated
    // (they are reclaimed by the 10-minute keep-alive, which the short run
    // does not reach).
    assert_eq!(sys.instance_count(), 0, "exclusive instances retired");
}
