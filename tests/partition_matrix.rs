//! Robustness matrix: every preset partition scheme x every system x every
//! workload runs to completion with sane accounting.

use fluidfaas_repro::experiments::runner::{run_system, SystemKind};
use fluidfaas_repro::fluidfaas::FfsConfig;
use fluidfaas_repro::mig::PartitionScheme;
use fluidfaas_repro::trace::{AzureTraceConfig, WorkloadClass};

#[test]
fn all_schemes_all_systems_all_workloads() {
    for scheme in [
        PartitionScheme::p1(),
        PartitionScheme::p2(),
        PartitionScheme::hybrid(),
    ] {
        for workload in WorkloadClass::ALL {
            let trace = AzureTraceConfig::for_workload(workload, 30.0, 2).generate();
            for system in SystemKind::ALL {
                let mut cfg = FfsConfig::paper_default(workload);
                cfg.scheme = scheme.clone();
                let out = run_system(system, cfg, &trace);
                // Every arrival accounted exactly once.
                assert_eq!(
                    out.log.len(),
                    trace.len(),
                    "{} {} {}",
                    scheme.name(),
                    workload.name(),
                    system.name()
                );
                // Cost accounting is self-consistent.
                assert!(out.cost.total_active_secs() <= out.cost.total_mig_time_secs() + 1e-6);
                assert!(out.cost.total_gpu_time_secs() <= 16.0 * out.cost.window_secs + 1e-6);
                // Some work actually happened.
                let completed = out
                    .log
                    .records()
                    .iter()
                    .filter(|r| r.completed.is_some())
                    .count();
                assert!(
                    completed > 0,
                    "{} {} {}: nothing completed",
                    scheme.name(),
                    workload.name(),
                    system.name()
                );
            }
        }
    }
}

#[test]
fn erlang_c_policy_runs_end_to_end() {
    let mut cfg = FfsConfig::paper_default(WorkloadClass::Medium);
    cfg.scaling_policy = fluidfaas_repro::fluidfaas::ScalingPolicy::ErlangC {
        target_wait_frac: 0.25,
    };
    let trace = AzureTraceConfig::for_workload(WorkloadClass::Medium, 60.0, 3).generate();
    let out = run_system(SystemKind::FluidFaaS, cfg, &trace);
    assert!(out.log.slo_hit_rate() > 0.3);
}
