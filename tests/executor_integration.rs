//! Integration tests of the live pipeline executor against the planner and
//! profiles: a pipelined run must produce exactly the monolithic result.

use std::time::Instant;

use fluidfaas_repro::mig::{Fleet, PartitionLayout, PartitionScheme};
use fluidfaas_repro::pipeline::plan::plan_deployment;
use fluidfaas_repro::pipeline::{KernelMode, PipelineExecutor, StageSpec};
use fluidfaas_repro::profile::{App, FunctionProfile, PerfModel, Variant};

/// Builds executor stage specs from a planned deployment.
fn specs_from_plan(
    profile: &FunctionProfile,
    plan: &fluidfaas_repro::pipeline::DeploymentPlan,
) -> Vec<StageSpec> {
    plan.stages
        .iter()
        .enumerate()
        .map(|(i, stage)| {
            let service = profile.stage_exec_ms(&stage.nodes, stage.profile);
            StageSpec::new(format!("stage{i}"), service, 1.5, -0.25)
        })
        .collect()
}

#[test]
fn planned_pipeline_runs_live_and_matches_reference() {
    let profile = FunctionProfile::build(
        App::ImageClassification,
        Variant::Medium,
        &PerfModel::default(),
    );
    // Only 1g slices: the planner must pipeline.
    let fleet = Fleet::new(
        1,
        1,
        &PartitionScheme::Uniform(PartitionLayout::preset_seven_small()),
    )
    .unwrap();
    let plan = plan_deployment(&profile, &fleet.free_slices(None)).expect("feasible");
    assert!(!plan.is_monolithic());

    let ex = PipelineExecutor::spawn(
        specs_from_plan(&profile, &plan),
        KernelMode::Sleep,
        0.001,
        4,
    );
    let input = vec![3.0_f32, -1.5, 0.0, 42.0];
    let expected = ex.reference_output(input.clone());
    for i in 0..10 {
        ex.submit(i, input.clone()).unwrap();
    }
    for _ in 0..10 {
        let (_, out) = ex.recv().unwrap();
        assert_eq!(out, expected);
    }
    let timings = ex.shutdown();
    assert_eq!(timings.len(), 10);
    assert!(timings
        .iter()
        .all(|t| t.stage_service.len() == plan.num_stages()));
}

#[test]
fn live_pipeline_overlaps_like_the_model_predicts() {
    // 3 equal stages: pipelined makespan for n requests ~ (n + s - 1) * t,
    // sequential ~ n * s * t. Check the live executor lands near the model.
    let stage_ms = 20.0;
    let n = 8u64;
    let specs: Vec<StageSpec> = (0..3)
        .map(|i| StageSpec::new(format!("s{i}"), stage_ms, 1.0, 0.0))
        .collect();
    let ex = PipelineExecutor::spawn(specs, KernelMode::Sleep, 1.0, 8);
    let start = Instant::now();
    for i in 0..n {
        ex.submit(i, vec![1.0]).unwrap();
    }
    for _ in 0..n {
        ex.recv().unwrap();
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
    ex.shutdown();
    let model_ms = (n as f64 + 2.0) * stage_ms;
    let sequential_ms = n as f64 * 3.0 * stage_ms;
    assert!(
        elapsed_ms < sequential_ms * 0.75,
        "elapsed {elapsed_ms:.0} vs sequential {sequential_ms:.0}"
    );
    assert!(
        elapsed_ms > model_ms * 0.8,
        "elapsed {elapsed_ms:.0} vs model lower bound {model_ms:.0}"
    );
}

#[test]
fn eviction_flag_terminates_stage_mid_service() {
    let specs = vec![
        StageSpec::new("a", 5.0, 1.0, 1.0),
        StageSpec::new("b", 5.0, 1.0, 1.0),
    ];
    let ex = PipelineExecutor::spawn(specs, KernelMode::Sleep, 0.01, 4);
    ex.submit(0, vec![0.0]).unwrap();
    ex.recv().unwrap();
    ex.evict_stage(0);
    ex.submit(1, vec![0.0]).unwrap();
    assert!(ex.recv().is_err(), "evicted stage drops the pipeline");
}
