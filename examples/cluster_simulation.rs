//! Replay a bursty Azure-style trace against the full simulated cluster and
//! compare FluidFaaS with the ESG and INFless baselines — a miniature of
//! the paper's end-to-end evaluation.
//!
//! ```sh
//! cargo run --release --example cluster_simulation            # medium, 120 s
//! cargo run --release --example cluster_simulation -- heavy 300
//! ```

use fluidfaas_repro::experiments::runner::{run_workload, SystemKind};
use fluidfaas_repro::trace::WorkloadClass;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = match args.get(1).map(String::as_str) {
        Some("light") => WorkloadClass::Light,
        Some("heavy") => WorkloadClass::Heavy,
        _ => WorkloadClass::Medium,
    };
    let secs: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(120.0);
    let seed = 1;

    println!(
        "replaying a {}s {} workload (apps in their {} variants) on 2 nodes x 8 A100s\n",
        secs,
        workload.name(),
        workload.variant().name()
    );
    println!(
        "{:<10} {:>8} {:>10} {:>9} {:>9} {:>10} {:>10}",
        "system", "SLO hit", "completed", "p50 ms", "p95 ms", "GPU time", "MIG time"
    );
    for system in SystemKind::ALL {
        let out = run_workload(system, workload, secs, seed);
        let cdf = out.latency_cdf();
        println!(
            "{:<10} {:>7.1}% {:>10} {:>9.0} {:>9.0} {:>9.0}s {:>9.0}s",
            system.name(),
            out.log.slo_hit_rate() * 100.0,
            out.log
                .records()
                .iter()
                .filter(|r| r.completed.is_some())
                .count(),
            cdf.p50().unwrap_or(0.0),
            cdf.p95().unwrap_or(0.0),
            out.cost.total_gpu_time_secs(),
            out.cost.total_mig_time_secs(),
        );
    }
    println!(
        "\n(the monolithic baselines cannot place {} variants on the fragmented slices\n that FluidFaaS turns into pipelines — see Figure 9/10 of the paper)",
        workload.variant().name()
    );
}
