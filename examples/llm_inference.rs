//! Extension: multi-stage LLM inference as a FluidFaaS function (§5.2.3).
//!
//! The paper argues FluidFaaS "seamlessly maps [LLM] stages to the
//! appropriate GPU resources". This example makes the claim executable:
//! tokenization → transformer front half → transformer back half →
//! response generation, profiled, planned onto fragmented MIG slices, and
//! run on the live pipeline executor.
//!
//! ```sh
//! cargo run --example llm_inference
//! ```

use fluidfaas_repro::mig::{Fleet, PartitionScheme, SliceProfile};
use fluidfaas_repro::pipeline::plan::plan_deployment;
use fluidfaas_repro::pipeline::replay::{spawn_from_plan, ReplayOptions};
use fluidfaas_repro::pipeline::{estimate, KernelMode};
use fluidfaas_repro::profile::{App, FunctionProfile, PerfModel, Variant};

fn main() {
    let perf = PerfModel::default();

    println!("LLM service variants (≈7B / 13B / 30B):");
    for variant in [Variant::Small, Variant::Medium, Variant::Large] {
        let p = FunctionProfile::build(App::LlmService, variant, &perf);
        println!(
            "  {:>6}: {:5.1} GB total | monolithic >= {:8} | pipelined >= {:8} | ref latency {:6.0} ms",
            variant.name(),
            p.total_mem_gb(),
            p.min_baseline_slice().map_or("NULL", |s| s.name()),
            p.min_pipeline_slice().map_or("NULL", |s| s.name()),
            p.reference_latency_ms(),
        );
    }

    // A 13B-class model on a node whose 4g.40gb slices are all taken:
    // only 1g/2g fragments remain — the monolithic view would have to wait
    // (the transformer halves need ~12 GB each, so the pipeline spreads
    // over the two GPUs' 2g.20gb fragments).
    let profile = FunctionProfile::build(App::LlmService, Variant::Medium, &perf);
    let mut fleet = Fleet::new(1, 2, &PartitionScheme::p1()).unwrap();
    for s in fleet
        .free_slices(None)
        .into_iter()
        .filter(|s| s.profile == SliceProfile::G4_40)
        .collect::<Vec<_>>()
    {
        fleet.allocate(s.id).unwrap();
    }
    println!(
        "\nfree fragments after the 4g.40gb is taken: {:?}",
        fleet.free_profile_histogram()
    );

    let plan = plan_deployment(&profile, &fleet.free_slices(None))
        .expect("the transformer halves fit the fragments");
    println!(
        "planned a {}-stage LLM pipeline (CV {:.3}):",
        plan.num_stages(),
        plan.cv
    );
    for (i, stage) in plan.stages.iter().enumerate() {
        let names: Vec<&str> = stage
            .nodes
            .iter()
            .map(|&n| profile.dag.component(n).name.as_str())
            .collect();
        println!(
            "  stage {i}: [{}] on {} ({:.1} GB)",
            names.join(", "),
            stage.profile,
            stage.mem_gb
        );
    }
    let est = estimate(&profile, &plan);
    println!(
        "estimated latency {:.0} ms, bottleneck {:.0} ms -> {:.1} tokens-of-work/s",
        est.latency_ms, est.bottleneck_ms, est.throughput_rps
    );

    // Run it live (time scaled down 50x for the demo).
    let opts = ReplayOptions {
        mode: KernelMode::Sleep,
        time_scale: 0.02,
        queue_cap: 8,
    };
    let ex = spawn_from_plan(&profile, &plan, &opts);
    let prompt: Vec<f32> = (0..32).map(|i| (i as f32).sin()).collect();
    let expected = ex.reference_output(prompt.clone());
    for i in 0..8 {
        ex.submit(i, prompt.clone()).unwrap();
    }
    let mut ok = 0;
    for _ in 0..8 {
        let (_, out) = ex.recv().unwrap();
        if out == expected {
            ok += 1;
        }
    }
    ex.shutdown();
    println!("\nlive pipeline served 8 requests; {ok}/8 outputs match the monolithic reference");
    assert_eq!(ok, 8);
}
