//! Run the image-classification application as a *live* multi-threaded
//! pipeline (the paper's Listing 1 runtime), and verify that splitting the
//! function across stages does not change its output.
//!
//! ```sh
//! cargo run --example image_pipeline
//! ```

use std::time::Instant;

use fluidfaas_repro::mig::SliceProfile;
use fluidfaas_repro::pipeline::{KernelMode, PipelineExecutor, StageSpec};
use fluidfaas_repro::profile::{App, FunctionProfile, PerfModel, Variant};

fn main() {
    let perf = PerfModel::default();
    let profile = FunctionProfile::build(App::ImageClassification, Variant::Small, &perf);

    // One stage per component, each on a (simulated) 1g.10gb slice, with
    // service times from the profile. Every stage applies a deterministic
    // affine transform as its stand-in model.
    let specs: Vec<StageSpec> = profile
        .dag
        .nodes()
        .enumerate()
        .map(|(i, n)| {
            let c = profile.dag.component(n);
            StageSpec::new(
                c.name.clone(),
                profile.node_exec_ms(n, SliceProfile::G1_10),
                1.0 + i as f32 * 0.5,
                i as f32,
            )
        })
        .collect();
    println!("pipeline stages:");
    for s in &specs {
        println!("  {:<18} {:.0} ms/request", s.name, s.service_ms);
    }

    // Scale time down 10x so the demo runs quickly.
    let executor = PipelineExecutor::spawn(specs, KernelMode::Sleep, 0.1, 8);

    // Sequential reference for correctness.
    let input: Vec<f32> = (0..64).map(|i| i as f32 / 7.0).collect();
    let expected = executor.reference_output(input.clone());

    let n_requests = 24;
    let start = Instant::now();
    for i in 0..n_requests {
        executor.submit(i, input.clone()).unwrap();
    }
    let mut ok = 0;
    for _ in 0..n_requests {
        let (_, out) = executor.recv().unwrap();
        if out == expected {
            ok += 1;
        }
    }
    let elapsed = start.elapsed();
    let timings = executor.shutdown();

    println!("\n{ok}/{n_requests} outputs match the sequential reference");
    let per_request_seq: f64 = timings[0]
        .stage_service
        .iter()
        .map(|d| d.as_secs_f64())
        .sum();
    println!(
        "wall clock for {n_requests} requests: {:.0} ms (sequential would be ~{:.0} ms)",
        elapsed.as_secs_f64() * 1e3,
        per_request_seq * n_requests as f64 * 1e3,
    );
    println!(
        "pipelining speedup: {:.2}x",
        per_request_seq * n_requests as f64 / elapsed.as_secs_f64()
    );
    assert_eq!(
        ok, n_requests,
        "pipeline must preserve the function's output"
    );
}
