//! Demonstrate hotness-aware eviction-based time sharing (§5.3): several
//! low-rate functions share one MIG slice through LRU eviction, and the
//! keep-alive state machine of Figure 8 drives their lifecycles.
//!
//! ```sh
//! cargo run --example eviction_timesharing
//! ```

use fluidfaas_repro::fluidfaas::shared::SharedPool;
use fluidfaas_repro::fluidfaas::{KeepAliveState, Transition};
use fluidfaas_repro::mig::fleet::FreeSlice;
use fluidfaas_repro::mig::{GpuId, NodeId, SliceId, SliceProfile};
use fluidfaas_repro::sim::SimTime;

fn main() {
    // --- Figure 8's state machine, step by step ---------------------------
    println!("Figure 8 keep-alive transitions:");
    let mut state = KeepAliveState::Cold;
    let script = [
        (
            Transition::RequestArrived,
            "first request creates a time-sharing instance (1)",
        ),
        (
            Transition::UtilizationHigh,
            "load spike promotes it to exclusive hot (2)",
        ),
        (
            Transition::UtilizationLow,
            "demand drops, back to time sharing (3)",
        ),
        (
            Transition::Evicted,
            "another function needs the slice: evicted to CPU = warm (4)",
        ),
        (
            Transition::RequestArrived,
            "a request reloads it from CPU memory",
        ),
        (Transition::Evicted, "evicted again"),
        (
            Transition::IdleTimeout,
            "10 idle minutes terminate it: cold (5)",
        ),
    ];
    for (t, what) in script {
        let next = state.next(t);
        println!("  {state:?} --[{t:?}]--> {next:?}   ({what})");
        state = next;
    }

    // --- LRU eviction on a shared slice -----------------------------------
    println!("\nShared-slice time sharing (one 2g.20gb slice, three functions):");
    let mut pool = SharedPool::new();
    let slice = FreeSlice {
        node: NodeId(0),
        id: SliceId::new(GpuId(0), 1),
        profile: SliceProfile::G2_20,
    };
    let slot = pool.add_slot(slice, SimTime::ZERO);
    for f in 0..3usize {
        // Each function's monolithic footprint (e.g. ~6 GB) fits the slice.
        let bound = pool.bind(f, 6.0);
        assert_eq!(bound, Some(slot));
    }
    println!("  bound functions: {:?}", pool.slot(slot).bound);

    // Requests arrive round-robin; each non-resident dispatch evicts the
    // LRU resident (strong isolation preserved: one function at a time).
    let mut evictions = 0;
    for (step, f) in [0usize, 1, 0, 2, 1, 0, 2, 2, 1].into_iter().enumerate() {
        let s = pool.slot_mut(slot);
        let action = match s.resident {
            Some(r) if r == f => "hit (model resident)".to_string(),
            Some(r) => {
                evictions += 1;
                format!("evict f{r} -> warm, load f{f}")
            }
            None => format!("cold slot, load f{f}"),
        };
        s.touch_resident(f);
        println!(
            "  step {step}: request for f{f}: {action}; LRU order now {:?}",
            s.lru
        );
    }
    println!("  total evictions: {evictions}");
    println!(
        "\nThe eviction cost is worth paying because occupied slices are active\n\
         only a small fraction of the time (paper Figure 5: 16.1% on average)."
    );
}
