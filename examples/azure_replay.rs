//! Replay a real-format Azure Functions trace file against the platform.
//!
//! Pass a CSV in the Azure Functions 2019 dataset format
//! (`HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440`); without an
//! argument, an embedded 10-minute sample demonstrates the path.
//!
//! ```sh
//! cargo run --release --example azure_replay -- path/to/invocations.csv
//! ```

use fluidfaas_repro::fluidfaas::platform::runner::run_platform;
use fluidfaas_repro::fluidfaas::{FfsConfig, FluidFaaSSystem};
use fluidfaas_repro::profile::App;
use fluidfaas_repro::trace::{parse_csv, to_trace, WorkloadClass};

/// A miniature sample in the dataset's format: four functions with bursty
/// per-minute counts over 10 minutes.
const SAMPLE: &str = "\
HashOwner,HashApp,HashFunction,Trigger,1,2,3,4,5,6,7,8,9,10
o1,appA,f1,http,180,220,160,500,640,520,140,180,200,160
o2,appB,f2,http,120,140,100,130,420,380,360,110,90,120
o3,appC,f3,queue,80,60,90,70,100,260,300,280,70,60
o4,appD,f4,timer,60,60,60,60,60,60,60,60,60,60
";

fn main() {
    let content = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}; using the embedded sample");
            SAMPLE.to_string()
        }),
        None => SAMPLE.to_string(),
    };

    let rows = parse_csv(&content).expect("valid Azure-format CSV");
    let total: u64 = rows.iter().map(|r| r.total()).sum();
    let minutes = rows
        .iter()
        .map(|r| r.per_minute.len())
        .max()
        .unwrap_or(0)
        .min(10);
    println!(
        "loaded {} functions, {total} invocations; replaying the first {minutes} minutes",
        rows.len()
    );

    // Map trace functions round-robin onto the paper's light-workload apps.
    let apps: Vec<App> = WorkloadClass::Light.apps();
    let trace = to_trace(&rows, &apps, minutes, 42);
    println!(
        "trace: {} invocations over {}, mean rate {:.1} req/s",
        trace.len(),
        trace.duration,
        trace.mean_rate()
    );

    let cfg = FfsConfig::paper_default(WorkloadClass::Light);
    let mut sys = FluidFaaSSystem::new(cfg, &trace);
    let out = run_platform(&mut sys, &trace);
    let cdf = out.latency_cdf();
    println!(
        "\nFluidFaaS served the trace: SLO hit rate {:.1}%, p50 {:.0} ms, p95 {:.0} ms",
        out.log.slo_hit_rate() * 100.0,
        cdf.p50().unwrap_or(0.0),
        cdf.p95().unwrap_or(0.0),
    );
    println!("scheduler activity: {:?}", sys.scheduler_log());
}
