//! Quickstart: define a FluidFaaS function, profile it, and plan a
//! deployment onto whatever MIG slices are free.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fluidfaas_repro::dag::module::SimpleModule;
use fluidfaas_repro::dag::{FfsFunctionBuilder, Mode};
use fluidfaas_repro::mig::{Fleet, PartitionScheme};
use fluidfaas_repro::pipeline::{estimate, plan::plan_deployment};
use fluidfaas_repro::profile::{App, FunctionProfile, PerfModel, Variant};

fn main() {
    // --- 1. The programming model (paper Figure 7) -----------------------
    // Define DNN components and register them into an FFS DAG. In the
    // paper this is `class MyFFaaS(FFS.FFaaS): def defDAG(...)`.
    let mut f = FfsFunctionBuilder::new("my_function", Mode::BuildDag);
    let preprocess = SimpleModule {
        name: "preprocess".into(),
        mem_gb: 2.0,
        work: 40.0,
        output_mb: 12.0,
    };
    let detect = SimpleModule {
        name: "detector".into(),
        mem_gb: 6.0,
        work: 120.0,
        output_mb: 4.0,
    };
    let classify = SimpleModule {
        name: "classifier".into(),
        mem_gb: 3.0,
        work: 35.0,
        output_mb: 0.01,
    };
    let a = f.reg(&preprocess, &[]).unwrap();
    let b = f.reg(&detect, &[a]).unwrap();
    let _c = f.reg(&classify, &[b]).unwrap();
    let dag = f.build().unwrap();
    println!(
        "registered FFS DAG `{}` with {} components, {:.1} GB total",
        dag.name(),
        dag.len(),
        dag.total_mem_gb()
    );

    // --- 2. Offline profiling (the BUILDDAG entry point) ------------------
    // The paper's applications ship pre-built; profile one of them.
    let profile = FunctionProfile::build(
        App::ImageClassification,
        Variant::Medium,
        &PerfModel::default(),
    );
    println!(
        "\nprofiled `{}`: reference latency {:.0} ms, SLO(1.5x) {:.0} ms",
        profile.name,
        profile.reference_latency_ms(),
        profile.slo_ms(1.5)
    );
    println!(
        "minimum slice: monolithic >= {}, pipelined >= {}",
        profile.min_baseline_slice().unwrap(),
        profile.min_pipeline_slice().unwrap()
    );

    // --- 3. Pipeline planning on fragmented slices (§5.2.2) ---------------
    let mut fleet = Fleet::new(1, 2, &PartitionScheme::p1()).unwrap();
    // Occupy the large slices so only 1g.10gb fragments remain — the
    // Figure 1 scenario where a monolithic scheduler would have to wait.
    for s in fleet.free_slices(None) {
        if s.profile.gpcs() >= 2 {
            fleet.allocate(s.id).unwrap();
        }
    }
    println!("\nfree slices: only {:?}", fleet.free_profile_histogram());
    match plan_deployment(&profile, &fleet.free_slices(None)) {
        Some(plan) => {
            println!(
                "planned a {}-stage pipeline (CV {:.3}):",
                plan.num_stages(),
                plan.cv
            );
            for (i, stage) in plan.stages.iter().enumerate() {
                let names: Vec<&str> = stage
                    .nodes
                    .iter()
                    .map(|&n| profile.dag.component(n).name.as_str())
                    .collect();
                println!(
                    "  stage {i}: [{}] on {} ({:.1} GB)",
                    names.join(", "),
                    stage.profile,
                    stage.mem_gb
                );
            }
            let est = estimate(&profile, &plan);
            println!(
                "estimated latency {:.0} ms, bottleneck {:.0} ms, throughput {:.1} req/s",
                est.latency_ms, est.bottleneck_ms, est.throughput_rps
            );
        }
        None => println!("no deployment fits the free slices"),
    }
}
