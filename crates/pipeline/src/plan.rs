//! Planning: from ranked partitions + free slices to a deployable plan.

use serde::{Deserialize, Serialize};

use ffs_dag::{NodeId, PipelinePartition};
use ffs_mig::fleet::FreeSlice;
use ffs_mig::{SliceId, SliceProfile};
use ffs_profile::FunctionProfile;

/// One stage of a planned deployment: which components run on which slice.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StagePlan {
    /// The DAG nodes executed by this stage, in topological order.
    pub nodes: Vec<NodeId>,
    /// The MIG slice hosting the stage.
    pub slice: SliceId,
    /// The slice's profile.
    pub profile: SliceProfile,
    /// The stage's memory footprint in GB.
    pub mem_gb: f64,
}

/// A deployable instance configuration: the partition plus its
/// stage-to-slice assignment. A single-stage plan is a conventional
/// (non-pipelined) deployment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeploymentPlan {
    /// The chosen partition.
    pub partition: PipelinePartition,
    /// Per-stage slice assignments, in pipeline order.
    pub stages: Vec<StagePlan>,
    /// The CV balance score of the chosen partition.
    pub cv: f64,
}

impl DeploymentPlan {
    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// True for a conventional non-pipelined deployment.
    pub fn is_monolithic(&self) -> bool {
        self.stages.len() == 1
    }

    /// The slices used by this plan.
    pub fn slices(&self) -> Vec<SliceId> {
        self.stages.iter().map(|s| s.slice).collect()
    }

    /// The slice profiles per stage.
    pub fn slice_profiles(&self) -> Vec<SliceProfile> {
        self.stages.iter().map(|s| s.profile).collect()
    }

    /// Total GPCs consumed.
    pub fn total_gpcs(&self) -> u32 {
        self.stages.iter().map(|s| s.profile.gpcs()).sum()
    }
}

/// Tries to assign each stage (by memory demand) a distinct free slice.
///
/// Greedy, largest demand first, smallest fitting slice: for
/// one-dimensional capacities this succeeds whenever any assignment does.
/// Returns per-stage slice picks in the original stage order.
fn assign_slices(
    stage_mems: &[f64],
    min_gpcs_stage0: u32,
    free: &[FreeSlice],
) -> Option<Vec<FreeSlice>> {
    let mut order: Vec<usize> = (0..stage_mems.len()).collect();
    // Sort by descending demand; put GPC-constrained stages first among
    // equals so they get first pick.
    order.sort_by(|&a, &b| {
        stage_mems[b]
            .partial_cmp(&stage_mems[a])
            .expect("finite memory")
            .then_with(|| a.cmp(&b))
    });
    let mut available: Vec<FreeSlice> = free.to_vec();
    // Deterministic: smallest profile first, then by id.
    available.sort_by_key(|s| (s.profile, s.id));
    let mut picks: Vec<Option<FreeSlice>> = vec![None; stage_mems.len()];
    for &idx in &order {
        let need_gpcs = if idx == 0 && stage_mems.len() == 1 {
            min_gpcs_stage0
        } else {
            1
        };
        let pos = available.iter().position(|s| {
            s.profile.fits_memory(stage_mems[idx]) && s.profile.gpcs() >= need_gpcs
        })?;
        picks[idx] = Some(available.remove(pos));
    }
    Some(
        picks
            .into_iter()
            .map(|p| p.expect("all assigned"))
            .collect(),
    )
}

/// Plans a deployment of `profile` onto the currently free slices.
///
/// Walks the CV-ranked partition list (monolithic first) and returns the
/// first partition for which every stage can be assigned a distinct free
/// slice with sufficient memory (and, for monolithic plans, the compute
/// floor of Table 5). Returns `None` when no partition fits — the function
/// must wait or time-share.
pub fn plan_deployment(profile: &FunctionProfile, free: &[FreeSlice]) -> Option<DeploymentPlan> {
    plan_from_list(profile, free, profile.ranked_partitions())
}

/// Like [`plan_deployment`] but *without* CV ranking: partitions are tried
/// in raw enumeration order (monolithic first, then arbitrary cut
/// patterns). This is the ablation arm for the paper's balanced-pipeline
/// selection — it deploys the first partition that fits, balanced or not.
pub fn plan_deployment_unranked(
    profile: &FunctionProfile,
    free: &[FreeSlice],
) -> Option<DeploymentPlan> {
    // A malformed block spec yields "nothing deployable", never a panic.
    let list: Vec<ffs_dag::RankedPartition> = ffs_dag::try_enumerate_partitions(&profile.blocks)
        .ok()?
        .into_iter()
        .map(|p| {
            let stage_costs =
                p.stage_costs(|n| profile.node_exec_ms(n, ffs_mig::SliceProfile::G1_10));
            let cv = p.cv(|n| profile.node_exec_ms(n, ffs_mig::SliceProfile::G1_10));
            ffs_dag::RankedPartition {
                partition: p,
                cv,
                stage_costs,
            }
        })
        .collect();
    plan_from_list(profile, free, &list)
}

/// The trace-facing account of a planning decision: which rank won and why
/// every higher-ranked partition was passed over.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanExplanation {
    /// Rank of the deployed partition within the candidate list.
    pub chosen_rank: u32,
    /// Candidates ranked above the winner, with their rejection reasons.
    pub rejected: Vec<ffs_obs::RejectedCandidate>,
}

/// Reconstructs why `plan_from_list`-style planning settled on `plan`:
/// walks `list` up to the deployed partition and classifies each rejection.
///
/// Pure and side-effect-free — intended to run only when tracing is
/// enabled, after a plan has been produced, so the planning hot path stays
/// untouched.
pub fn explain_plan(
    profile: &FunctionProfile,
    free: &[FreeSlice],
    plan: &DeploymentPlan,
    list: &[ffs_dag::RankedPartition],
) -> PlanExplanation {
    let mut rejected = Vec::new();
    for (rank, ranked) in list.iter().enumerate() {
        if ranked.partition == plan.partition {
            return PlanExplanation {
                chosen_rank: rank as u32,
                rejected,
            };
        }
        rejected.push(ffs_obs::RejectedCandidate {
            rank: rank as u32,
            stages: ranked.partition.num_stages() as u32,
            cv: ranked.cv,
            reason: classify_rejection(profile, ranked, free),
        });
    }
    // The deployed partition was not in the list (shouldn't happen for
    // plans produced from it); report it as rank = list length.
    PlanExplanation {
        chosen_rank: list.len() as u32,
        rejected,
    }
}

/// Why a single candidate partition could not be hosted on `free`.
fn classify_rejection(
    profile: &FunctionProfile,
    ranked: &ffs_dag::RankedPartition,
    free: &[FreeSlice],
) -> ffs_obs::RejectReason {
    let partition = &ranked.partition;
    let stage_mems = partition.stage_mem_gb(&profile.dag);
    let min_gpcs = if partition.is_monolithic() {
        profile.min_gpcs_mono
    } else {
        1
    };
    for &mem in &stage_mems {
        if !free.iter().any(|s| s.profile.fits_memory(mem)) {
            return ffs_obs::RejectReason::MemoryNoFit;
        }
        if !free
            .iter()
            .any(|s| s.profile.fits_memory(mem) && s.profile.gpcs() >= min_gpcs)
        {
            // Memory-fitting slices exist but none meets the monolithic
            // compute floor (Table 5).
            return ffs_obs::RejectReason::ComputeFloor;
        }
    }
    // Every stage fits *some* free slice individually; the distinct
    // assignment failed, i.e. the paper's resource fragmentation.
    ffs_obs::RejectReason::Fragmentation
}

fn plan_from_list(
    profile: &FunctionProfile,
    free: &[FreeSlice],
    list: &[ffs_dag::RankedPartition],
) -> Option<DeploymentPlan> {
    for ranked in list {
        let partition = &ranked.partition;
        let stage_mems = partition.stage_mem_gb(&profile.dag);
        let min_gpcs = if partition.is_monolithic() {
            profile.min_gpcs_mono
        } else {
            1
        };
        if let Some(picks) = assign_slices(&stage_mems, min_gpcs, free) {
            let stages = partition
                .stages()
                .iter()
                .zip(&picks)
                .zip(&stage_mems)
                .map(|((nodes, pick), &mem_gb)| StagePlan {
                    nodes: nodes.clone(),
                    slice: pick.id,
                    profile: pick.profile,
                    mem_gb,
                })
                .collect();
            return Some(DeploymentPlan {
                partition: partition.clone(),
                stages,
                cv: ranked.cv,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffs_mig::{Fleet, NodeId as MigNodeId, PartitionScheme};
    use ffs_profile::{App, PerfModel, Variant};

    // Silence the unused-import lint trap: fleet's NodeId is not dag's.
    #[allow(unused)]
    fn _t(_: MigNodeId) {}

    fn profile(app: App, variant: Variant) -> FunctionProfile {
        FunctionProfile::build(app, variant, &PerfModel::default())
    }

    fn free_of(fleet: &Fleet) -> Vec<FreeSlice> {
        fleet.free_slices(None)
    }

    #[test]
    fn monolithic_preferred_when_big_slice_free() {
        let fleet = Fleet::new(1, 1, &PartitionScheme::p1()).unwrap();
        let p = profile(App::ImageClassification, Variant::Medium);
        let plan = plan_deployment(&p, &free_of(&fleet)).unwrap();
        assert!(plan.is_monolithic());
        // Smallest fitting slice picked: the 2g.20gb, not the 4g.40gb.
        assert_eq!(plan.stages[0].profile, SliceProfile::G2_20);
    }

    #[test]
    fn pipeline_built_from_fragments_when_no_big_slice() {
        // Only 1g.10gb slices free: medium app must pipeline (Figure 4 c/d).
        let fleet = Fleet::new(
            1,
            1,
            &PartitionScheme::Uniform(ffs_mig::PartitionLayout::preset_seven_small()),
        )
        .unwrap();
        let p = profile(App::ImageClassification, Variant::Medium);
        let plan = plan_deployment(&p, &free_of(&fleet)).unwrap();
        assert!(!plan.is_monolithic());
        assert!(plan.num_stages() >= 2);
        for s in &plan.stages {
            assert_eq!(s.profile, SliceProfile::G1_10);
            assert!(s.mem_gb <= 10.0);
        }
    }

    #[test]
    fn balanced_partition_chosen_among_feasible() {
        // With plenty of 1g slices, the chosen pipeline is the lowest-CV
        // multi-stage partition that fits.
        let fleet = Fleet::new(
            1,
            2,
            &PartitionScheme::Uniform(ffs_mig::PartitionLayout::preset_seven_small()),
        )
        .unwrap();
        let p = profile(App::DepthRecognition, Variant::Medium);
        let plan = plan_deployment(&p, &free_of(&fleet)).unwrap();
        let ranked = p.ranked_partitions();
        // The plan's partition must be the first feasible in rank order;
        // all multi-stage partitions of a 3-chain fit 1g slices, so it is
        // the first non-monolithic entry.
        let first_multi = ranked
            .iter()
            .find(|r| {
                !r.partition.is_monolithic() && {
                    r.partition.stage_mem_gb(&p.dag).iter().all(|&m| m <= 10.0)
                }
            })
            .unwrap();
        assert_eq!(plan.partition, first_multi.partition);
        assert!((plan.cv - first_multi.cv).abs() < 1e-12);
    }

    #[test]
    fn infeasible_when_no_resources() {
        let p = profile(App::ImageClassification, Variant::Large);
        assert_eq!(plan_deployment(&p, &[]), None);
        // Large needs 2g.20gb stages; 1g-only fleets cannot host it at all.
        let fleet = Fleet::new(
            1,
            1,
            &PartitionScheme::Uniform(ffs_mig::PartitionLayout::preset_seven_small()),
        )
        .unwrap();
        assert_eq!(plan_deployment(&p, &free_of(&fleet)), None);
    }

    #[test]
    fn compute_floor_respected_for_monolithic() {
        // Expanded-medium needs >= 4 GPCs monolithic (Table 5): a 3g.40gb
        // slice has the memory but not the compute, so with only a 3g free
        // the planner must pipeline instead.
        let fleet = Fleet::new(
            1,
            1,
            &PartitionScheme::Uniform(ffs_mig::PartitionLayout::preset_two_large()),
        )
        .unwrap();
        let p = profile(App::ExpandedImageClassification, Variant::Medium);
        // Free: 4g.40gb + 3g.40gb. Monolithic fits the 4g.
        let plan = plan_deployment(&p, &free_of(&fleet)).unwrap();
        assert!(plan.is_monolithic());
        assert_eq!(plan.stages[0].profile, SliceProfile::G4_40);

        // Occupy the 4g: only the 3g remains -> must pipeline... but a
        // single 3g slice cannot host a >= 2-stage pipeline of a 30 GB
        // function? It can: two stages don't fit one slice, so planning
        // fails on one slice; with the 3g alone the only option would be
        // monolithic (compute floor fails) -> None.
        let mut fleet2 = fleet.clone();
        let fourg = fleet2
            .free_slices(None)
            .into_iter()
            .find(|s| s.profile == SliceProfile::G4_40)
            .unwrap();
        fleet2.allocate(fourg.id).unwrap();
        assert_eq!(plan_deployment(&p, &free_of(&fleet2)), None);
    }

    #[test]
    fn large_app_monolithic_on_4g_else_pipelined() {
        let mut fleet = Fleet::new(1, 2, &PartitionScheme::p1()).unwrap();
        let p = profile(App::ImageClassification, Variant::Large);
        // The 4g.40gb can host the ~30 GB monolith ("ESG can only use the
        // 4g.40gb slices in heavy workloads").
        let plan = plan_deployment(&p, &free_of(&fleet)).unwrap();
        assert!(plan.is_monolithic());
        assert_eq!(plan.stages[0].profile, SliceProfile::G4_40);
        // With both 4g slices occupied, FluidFaaS still deploys: a pipeline
        // over the fragmented 2g + 1g slices of the node.
        for s in fleet
            .free_slices(None)
            .into_iter()
            .filter(|s| s.profile == SliceProfile::G4_40)
            .collect::<Vec<_>>()
        {
            fleet.allocate(s.id).unwrap();
        }
        let plan = plan_deployment(&p, &free_of(&fleet)).unwrap();
        assert!(!plan.is_monolithic());
        let mut slices = plan.slices();
        slices.sort();
        slices.dedup();
        assert_eq!(slices.len(), plan.num_stages(), "no slice reuse");
    }

    #[test]
    fn explain_plan_reports_rank_and_rejections() {
        // Only 1g.10gb slices free: the monolith (rank 0) cannot fit, so
        // the chosen pipeline sits at a later rank and every earlier rank
        // carries a rejection reason.
        let fleet = Fleet::new(
            1,
            1,
            &PartitionScheme::Uniform(ffs_mig::PartitionLayout::preset_seven_small()),
        )
        .unwrap();
        let p = profile(App::ImageClassification, Variant::Medium);
        let free = free_of(&fleet);
        let plan = plan_deployment(&p, &free).unwrap();
        assert!(!plan.is_monolithic());
        let ex = explain_plan(&p, &free, &plan, p.ranked_partitions());
        assert!(ex.chosen_rank >= 1);
        assert_eq!(ex.rejected.len(), ex.chosen_rank as usize);
        // Rank 0 is the monolith; a ~14 GB model on 10 GB slices is a
        // memory rejection.
        assert_eq!(ex.rejected[0].rank, 0);
        assert_eq!(ex.rejected[0].stages, 1);
        assert_eq!(ex.rejected[0].reason, ffs_obs::RejectReason::MemoryNoFit);
    }

    #[test]
    fn explain_plan_monolithic_choice_has_no_rejections() {
        let fleet = Fleet::new(1, 1, &PartitionScheme::p1()).unwrap();
        let p = profile(App::ImageClassification, Variant::Medium);
        let free = free_of(&fleet);
        let plan = plan_deployment(&p, &free).unwrap();
        assert!(plan.is_monolithic());
        let ex = explain_plan(&p, &free, &plan, p.ranked_partitions());
        assert_eq!(ex.chosen_rank, 0);
        assert!(ex.rejected.is_empty());
    }

    #[test]
    fn plan_accessors() {
        let fleet = Fleet::new(1, 1, &PartitionScheme::p1()).unwrap();
        let p = profile(App::ImageClassification, Variant::Small);
        let plan = plan_deployment(&p, &free_of(&fleet)).unwrap();
        assert_eq!(plan.slice_profiles().len(), plan.num_stages());
        assert!(plan.total_gpcs() >= 1);
    }
}
