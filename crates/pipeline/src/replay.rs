//! Bridging planned deployments to the live executor.
//!
//! A [`DeploymentPlan`] describes *where* each stage runs; this module turns
//! it into a runnable [`PipelineExecutor`] whose stage service times come
//! from the function's profile — the `RUN`-mode path of the paper's
//! Figure 7, where the invoker writes the MIG assignment into the
//! configuration layer and `FFaaS.run()` brings the pipeline up.

use ffs_profile::FunctionProfile;

use crate::executor::{KernelMode, PipelineExecutor, StageSpec};
use crate::plan::DeploymentPlan;

/// Options for materialising a plan into a live pipeline.
#[derive(Clone, Debug)]
pub struct ReplayOptions {
    /// Kernel mode for the synthetic stage work.
    pub mode: KernelMode,
    /// Multiplier on all service times (use e.g. `0.01` to run paper-scale
    /// pipelines in test time).
    pub time_scale: f64,
    /// Inter-stage queue capacity (backpressure bound).
    pub queue_cap: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            mode: KernelMode::Sleep,
            time_scale: 1.0,
            queue_cap: 8,
        }
    }
}

/// Builds the executor stage specs for a planned deployment: one stage per
/// plan stage, service time = the stage's components back-to-back on the
/// assigned slice, and a deterministic per-stage affine transform so output
/// equivalence with the monolithic run can be checked.
pub fn stage_specs(profile: &FunctionProfile, plan: &DeploymentPlan) -> Vec<StageSpec> {
    plan.stages
        .iter()
        .enumerate()
        .map(|(i, stage)| {
            let service_ms = profile.stage_exec_ms(&stage.nodes, stage.profile);
            let names: Vec<&str> = stage
                .nodes
                .iter()
                .map(|&n| profile.dag.component(n).name.as_str())
                .collect();
            StageSpec::new(
                names.join("+"),
                service_ms,
                // Distinct, deterministic coefficients per stage index.
                1.0 + 0.25 * (i as f32 + 1.0),
                0.5 * (i as f32) - 1.0,
            )
        })
        .collect()
}

/// Spawns a live pipeline for a planned deployment.
pub fn spawn_from_plan(
    profile: &FunctionProfile,
    plan: &DeploymentPlan,
    opts: &ReplayOptions,
) -> PipelineExecutor {
    PipelineExecutor::spawn(
        stage_specs(profile, plan),
        opts.mode,
        opts.time_scale,
        opts.queue_cap,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_deployment;
    use ffs_mig::{Fleet, PartitionLayout, PartitionScheme};
    use ffs_profile::{App, PerfModel, Variant};

    fn pipelined_plan() -> (FunctionProfile, DeploymentPlan) {
        let profile = FunctionProfile::build(
            App::DepthRecognition,
            Variant::Medium,
            &PerfModel::default(),
        );
        let fleet = Fleet::new(
            1,
            1,
            &PartitionScheme::Uniform(PartitionLayout::preset_seven_small()),
        )
        .unwrap();
        let plan = plan_deployment(&profile, &fleet.free_slices(None)).unwrap();
        assert!(!plan.is_monolithic());
        (profile, plan)
    }

    #[test]
    fn specs_cover_every_component_once() {
        let (profile, plan) = pipelined_plan();
        let specs = stage_specs(&profile, &plan);
        assert_eq!(specs.len(), plan.num_stages());
        let all_names: String = specs
            .iter()
            .map(|s| s.name.clone())
            .collect::<Vec<_>>()
            .join("+");
        for n in profile.dag.nodes() {
            assert!(
                all_names.contains(&profile.dag.component(n).name),
                "{} missing",
                profile.dag.component(n).name
            );
        }
    }

    #[test]
    fn service_times_match_the_profile() {
        let (profile, plan) = pipelined_plan();
        let specs = stage_specs(&profile, &plan);
        for (spec, stage) in specs.iter().zip(&plan.stages) {
            let expected = profile.stage_exec_ms(&stage.nodes, stage.profile);
            assert!((spec.service_ms - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn spawned_pipeline_preserves_output() {
        let (profile, plan) = pipelined_plan();
        let opts = ReplayOptions {
            time_scale: 0.001,
            ..Default::default()
        };
        let ex = spawn_from_plan(&profile, &plan, &opts);
        let input = vec![1.0_f32, 2.5, -3.0];
        let expected = ex.reference_output(input.clone());
        ex.submit(0, input).unwrap();
        let (_, out) = ex.recv().unwrap();
        assert_eq!(out, expected);
        ex.shutdown();
    }
}
