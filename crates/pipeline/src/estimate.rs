//! Latency / throughput algebra for planned instances.
//!
//! The load balancer's heterogeneity-aware routing (§5.3) needs to know,
//! for every live instance: its end-to-end latency (pipelines add transfer
//! overhead), its bottleneck service time (which bounds throughput), and
//! therefore how many requests per second it can absorb while meeting SLOs.

use serde::{Deserialize, Serialize};

use ffs_profile::FunctionProfile;

use crate::plan::DeploymentPlan;

/// Performance estimate for a deployed instance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct InstanceEstimate {
    /// Unloaded end-to-end latency (ms): stage execution plus boundary
    /// transfers (pipelines) or in-process handoffs (monolithic).
    pub latency_ms: f64,
    /// Service time of the slowest pipeline stage (ms); equals the full
    /// execution time for monolithic instances.
    pub bottleneck_ms: f64,
    /// Sustainable throughput in requests/second (`1000 / bottleneck_ms`).
    pub throughput_rps: f64,
}

/// Estimates a planned deployment against its function profile.
pub fn estimate(profile: &FunctionProfile, plan: &DeploymentPlan) -> InstanceEstimate {
    let slices = plan.slice_profiles();
    let (latency_ms, bottleneck_ms) = if plan.is_monolithic() {
        let t = profile.mono_exec_ms(slices[0]);
        (t, t)
    } else {
        (
            profile.pipeline_latency_ms(&plan.partition, &slices),
            profile.pipeline_bottleneck_ms(&plan.partition, &slices),
        )
    };
    InstanceEstimate {
        latency_ms,
        bottleneck_ms,
        throughput_rps: 1_000.0 / bottleneck_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::plan_deployment;
    use ffs_mig::{Fleet, PartitionLayout, PartitionScheme};
    use ffs_profile::{App, PerfModel, Variant};

    fn profile(app: App, variant: Variant) -> FunctionProfile {
        FunctionProfile::build(app, variant, &PerfModel::default())
    }

    #[test]
    fn monolithic_estimate_matches_mono_exec() {
        let fleet = Fleet::new(1, 1, &PartitionScheme::p1()).unwrap();
        let p = profile(App::ImageClassification, Variant::Small);
        let plan = plan_deployment(&p, &fleet.free_slices(None)).unwrap();
        assert!(plan.is_monolithic());
        let est = estimate(&p, &plan);
        assert!((est.latency_ms - p.mono_exec_ms(plan.stages[0].profile)).abs() < 1e-9);
        assert_eq!(est.latency_ms, est.bottleneck_ms);
        assert!((est.throughput_rps - 1_000.0 / est.latency_ms).abs() < 1e-9);
    }

    #[test]
    fn pipeline_has_higher_latency_but_higher_throughput_than_1g_mono() {
        // A pipeline's latency includes transfers, but its bottleneck is a
        // fraction of the total work — that is the whole point of
        // pipelining fragments.
        let fleet = Fleet::new(
            1,
            1,
            &PartitionScheme::Uniform(PartitionLayout::preset_seven_small()),
        )
        .unwrap();
        let small = profile(App::ImageClassification, Variant::Small);
        let plan_mono = plan_deployment(&small, &fleet.free_slices(None)).unwrap();
        assert!(plan_mono.is_monolithic(), "small fits a 1g slice");
        let est_mono = estimate(&small, &plan_mono);

        let medium = profile(App::ImageClassification, Variant::Medium);
        let plan_pipe = plan_deployment(&medium, &fleet.free_slices(None)).unwrap();
        assert!(!plan_pipe.is_monolithic());
        let est_pipe = estimate(&medium, &plan_pipe);

        assert!(est_pipe.latency_ms > est_pipe.bottleneck_ms);
        // The medium pipeline on 1g slices sustains more than the medium
        // function would at 1 GPC monolithically (if it fit).
        let hypothetical_mono_1g = medium.mono_exec_ms(ffs_mig::SliceProfile::G1_10);
        assert!(est_pipe.bottleneck_ms < hypothetical_mono_1g);
        let _ = est_mono;
    }

    #[test]
    fn throughput_is_inverse_bottleneck() {
        let fleet = Fleet::new(1, 1, &PartitionScheme::p1()).unwrap();
        let p = profile(App::DepthRecognition, Variant::Medium);
        let plan = plan_deployment(&p, &fleet.free_slices(None)).unwrap();
        let est = estimate(&p, &plan);
        assert!((est.throughput_rps * est.bottleneck_ms - 1_000.0).abs() < 1e-6);
    }
}
