//! # ffs-pipeline — on-the-fly pipeline construction and execution
//!
//! Given a function's offline profile (ranked partitions, per-slice timing)
//! and the MIG slices currently free on an invoker, this crate builds the
//! pipeline the paper's runtime deploys (§5.2.2):
//!
//! * [`plan`] — walks the CV-ranked partition list and returns the first
//!   partition the free slices can host, together with the concrete
//!   stage-to-slice assignment. The monolithic single-stage "partition"
//!   ranks first, so non-pipelined deployments are preferred whenever a
//!   large-enough slice is available (matching the paper's pipeline
//!   migration policy).
//! * [`estimate()`] — latency / bottleneck / throughput algebra for a planned
//!   instance, used by the load balancer's heterogeneity-aware routing.
//! * [`executor`] — a real multi-threaded pipeline runtime mirroring the
//!   paper's Listing 1: one worker per stage, handoff through in-memory
//!   channels standing in for host shared memory, eviction flags, and
//!   graceful termination.
//!
//! ```
//! use ffs_mig::{Fleet, PartitionScheme};
//! use ffs_pipeline::plan::plan_deployment;
//! use ffs_profile::{App, FunctionProfile, PerfModel, Variant};
//!
//! let fleet = Fleet::new(1, 1, &PartitionScheme::p1()).unwrap();
//! let profile = FunctionProfile::build(App::ImageClassification, Variant::Medium,
//!                                      &PerfModel::default());
//! let free = fleet.free_slices(None);
//! let plan = plan_deployment(&profile, &free).expect("a 2g.20gb slice is free");
//! assert!(plan.is_monolithic(), "monolithic preferred while big slices are free");
//! ```

pub mod estimate;
pub mod executor;
pub mod plan;
pub mod replay;

pub use estimate::{estimate, InstanceEstimate};
pub use executor::{
    ExecutorError, ExecutorStats, KernelMode, PipelineExecutor, RequestTiming, StageSpec,
};
pub use plan::{
    explain_plan, plan_deployment, plan_deployment_unranked, DeploymentPlan, PlanExplanation,
    StagePlan,
};
pub use replay::{spawn_from_plan, ReplayOptions};
