//! A live multi-threaded pipeline executor mirroring the paper's Listing 1.
//!
//! On real hardware, `FFaaS.run()` spawns one process per MIG slice, wires
//! them with host shared memory plus trigger queues, and loops
//! `_run_inference` in each. This executor reproduces that runtime shape in
//! miniature:
//!
//! * one worker **thread** per stage (standing in for the per-MIG process),
//! * bounded channels carrying tensors between stages (standing in for the
//!   shared-memory regions plus trigger queues),
//! * a per-stage **eviction flag** that makes the worker drop its model and
//!   exit (the `self.eviction[stage]` check in Listing 1), and
//! * graceful termination that drains in-flight requests
//!   (`_terminate_processes`).
//!
//! Each stage applies a deterministic affine transform to its tensor, so a
//! pipelined run is bit-identical to the sequential reference — the
//! integration tests rely on this to prove that splitting a function does
//! not change its output.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;

/// How a stage's synthetic kernel burns its service time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelMode {
    /// Sleep for the (scaled) service time — cheap, good for tests.
    Sleep,
    /// Spin on real floating-point work for the (scaled) service time —
    /// keeps a core busy like a real inference would keep a GPC busy.
    Compute,
}

/// Static description of one pipeline stage.
#[derive(Clone, Debug)]
pub struct StageSpec {
    /// Stage name (for timings and debugging).
    pub name: String,
    /// Service time per request, in milliseconds (already scaled to the
    /// stage's slice by the caller).
    pub service_ms: f64,
    /// Affine transform applied to every tensor element: `x * scale + bias`.
    /// This is the stage's stand-in "model".
    pub scale: f32,
    /// See `scale`.
    pub bias: f32,
}

impl StageSpec {
    /// Creates a stage spec.
    pub fn new(name: impl Into<String>, service_ms: f64, scale: f32, bias: f32) -> Self {
        StageSpec {
            name: name.into(),
            service_ms,
            scale,
            bias,
        }
    }
}

/// Per-request timing collected by the executor.
#[derive(Clone, Debug)]
pub struct RequestTiming {
    /// The caller-assigned request id.
    pub request_id: u64,
    /// Wall-clock time from submit to completion.
    pub total: Duration,
    /// Time spent inside each stage's kernel.
    pub stage_service: Vec<Duration>,
}

/// Aggregate statistics over a set of request timings.
#[derive(Clone, Debug)]
pub struct ExecutorStats {
    /// Requests measured.
    pub count: usize,
    /// Mean end-to-end latency (ms).
    pub mean_ms: f64,
    /// P95 end-to-end latency estimate (ms).
    pub p95_ms: Option<f64>,
    /// Mean per-stage service time (ms), by stage index.
    pub stage_mean_ms: Vec<f64>,
}

impl ExecutorStats {
    /// Summarises request timings.
    pub fn from_timings(timings: &[RequestTiming]) -> Self {
        let mut hist = ffs_metrics::LogHistogram::for_latency_ms();
        let stages = timings
            .iter()
            .map(|t| t.stage_service.len())
            .max()
            .unwrap_or(0);
        let mut stage_sums = vec![0.0f64; stages];
        let mut stage_counts = vec![0usize; stages];
        for t in timings {
            hist.record(t.total.as_secs_f64() * 1e3);
            for (i, d) in t.stage_service.iter().enumerate() {
                stage_sums[i] += d.as_secs_f64() * 1e3;
                stage_counts[i] += 1;
            }
        }
        ExecutorStats {
            count: timings.len(),
            mean_ms: hist.mean(),
            p95_ms: hist.percentile(0.95),
            stage_mean_ms: stage_sums
                .iter()
                .zip(&stage_counts)
                .map(|(&s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
                .collect(),
        }
    }
}

/// Errors from the executor.
#[derive(Clone, Debug, PartialEq)]
pub enum ExecutorError {
    /// The executor has been shut down (or a stage was evicted).
    Terminated,
}

impl std::fmt::Display for ExecutorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutorError::Terminated => write!(f, "pipeline executor terminated"),
        }
    }
}

impl std::error::Error for ExecutorError {}

struct Envelope {
    request_id: u64,
    tensor: Vec<f32>,
    submitted: Instant,
    stage_service: Vec<Duration>,
}

/// A running pipeline: worker threads connected by bounded channels.
pub struct PipelineExecutor {
    specs: Vec<StageSpec>,
    input: Option<Sender<Envelope>>,
    output: Receiver<Envelope>,
    eviction: Vec<Arc<AtomicBool>>,
    workers: Vec<JoinHandle<()>>,
    timings: Arc<Mutex<Vec<RequestTiming>>>,
    time_scale: f64,
    /// When the executor was spawned; trace timestamps for this live
    /// (wall-clock) runtime are microseconds since this instant.
    spawned: Instant,
}

impl PipelineExecutor {
    /// Spawns the pipeline.
    ///
    /// `time_scale` multiplies every stage's service time (use a small
    /// value, e.g. `0.01`, to run paper-scale pipelines in test time).
    /// `queue_cap` bounds each inter-stage queue, providing backpressure
    /// like the paper's job queues.
    pub fn spawn(
        specs: Vec<StageSpec>,
        mode: KernelMode,
        time_scale: f64,
        queue_cap: usize,
    ) -> Self {
        assert!(!specs.is_empty(), "a pipeline needs at least one stage");
        assert!(time_scale > 0.0);
        assert!(queue_cap >= 1);

        let n = specs.len();
        let mut senders: Vec<Sender<Envelope>> = Vec::with_capacity(n + 1);
        let mut receivers: Vec<Receiver<Envelope>> = Vec::with_capacity(n + 1);
        for _ in 0..=n {
            let (tx, rx) = bounded::<Envelope>(queue_cap);
            senders.push(tx);
            receivers.push(rx);
        }
        let eviction: Vec<Arc<AtomicBool>> =
            (0..n).map(|_| Arc::new(AtomicBool::new(false))).collect();
        let timings = Arc::new(Mutex::new(Vec::new()));

        let mut workers = Vec::with_capacity(n);
        for (i, spec) in specs.iter().enumerate() {
            let rx = receivers[i].clone();
            let tx = senders[i + 1].clone();
            let evict = Arc::clone(&eviction[i]);
            let spec = spec.clone();
            let service = Duration::from_secs_f64(spec.service_ms / 1_000.0 * time_scale);
            workers.push(std::thread::spawn(move || {
                // The stage's "model": loaded once, dropped on eviction —
                // mirrors `_load_models` / `model.cpu(); del model`.
                let mut model: Option<(f32, f32)> = Some((spec.scale, spec.bias));
                // `_run_inference`: read from shared memory, infer, write
                // to the next stage's shared memory, signal its queue.
                while let Ok(mut env) = rx.recv() {
                    if evict.load(Ordering::Acquire) {
                        model = None;
                    }
                    let Some((scale, bias)) = model else {
                        // Evicted mid-stream: drop remaining work. The
                        // invoker only evicts idle instances, so in-flight
                        // loss is a test-only scenario.
                        break;
                    };
                    let start = Instant::now();
                    match mode {
                        KernelMode::Sleep => {
                            if !service.is_zero() {
                                std::thread::sleep(service);
                            }
                        }
                        KernelMode::Compute => {
                            let deadline = start + service;
                            let mut acc = 1.000_000_1_f64;
                            while Instant::now() < deadline {
                                for _ in 0..1_000 {
                                    acc = acc * 1.000_000_3 + 1e-9;
                                }
                                std::hint::black_box(acc);
                            }
                        }
                    }
                    for x in &mut env.tensor {
                        *x = *x * scale + bias;
                    }
                    env.stage_service.push(start.elapsed());
                    if tx.send(env).is_err() {
                        break;
                    }
                }
                // Channel closed: clean exit (`_terminate_processes`).
            }));
        }

        PipelineExecutor {
            specs,
            input: Some(senders[0].clone()),
            output: receivers[n].clone(),
            eviction,
            workers,
            timings,
            time_scale,
            spawned: Instant::now(),
        }
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.specs.len()
    }

    /// The configured time scale.
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    /// Submits a request tensor; blocks if the first stage's queue is full
    /// (backpressure).
    ///
    /// Total in-flight capacity is `stages * (queue_cap + 1) + queue_cap`
    /// (per-stage queues plus in-service slots plus the completion queue).
    /// A producer that submits more than that without concurrently calling
    /// [`PipelineExecutor::recv`] will block until a consumer drains
    /// completions — the same backpressure a real invoker applies.
    pub fn submit(&self, request_id: u64, tensor: Vec<f32>) -> Result<(), ExecutorError> {
        ffs_obs::record_at(self.spawned.elapsed().as_micros() as u64, || {
            ffs_obs::ObsEvent::ExecutorSubmit { req: request_id }
        });
        let env = Envelope {
            request_id,
            tensor,
            submitted: Instant::now(),
            stage_service: Vec::with_capacity(self.specs.len()),
        };
        self.input
            .as_ref()
            .ok_or(ExecutorError::Terminated)?
            .send(env)
            .map_err(|_| ExecutorError::Terminated)
    }

    /// Receives the next completed request (in completion order), recording
    /// its timing.
    pub fn recv(&self) -> Result<(u64, Vec<f32>), ExecutorError> {
        let env = self.output.recv().map_err(|_| ExecutorError::Terminated)?;
        let timing = RequestTiming {
            request_id: env.request_id,
            total: env.submitted.elapsed(),
            stage_service: env.stage_service,
        };
        ffs_obs::record_at(self.spawned.elapsed().as_micros() as u64, || {
            ffs_obs::ObsEvent::ExecutorComplete {
                req: timing.request_id,
                total_ms: timing.total.as_secs_f64() * 1e3,
            }
        });
        self.timings.lock().push(timing);
        Ok((env.request_id, env.tensor))
    }

    /// Raises the eviction flag of one stage (Listing 1's
    /// `self.eviction[stage] = True`). The stage drops its model when it
    /// next looks at the flag.
    pub fn evict_stage(&self, stage: usize) {
        self.eviction[stage].store(true, Ordering::Release);
    }

    /// The reference (sequential) output for an input tensor: what the
    /// un-pipelined function would produce.
    pub fn reference_output(&self, mut tensor: Vec<f32>) -> Vec<f32> {
        for spec in &self.specs {
            for x in &mut tensor {
                *x = *x * spec.scale + spec.bias;
            }
        }
        tensor
    }

    /// Timings of all requests received so far.
    pub fn timings(&self) -> Vec<RequestTiming> {
        self.timings.lock().clone()
    }

    /// Shuts the pipeline down, draining in-flight requests, and joins the
    /// workers.
    pub fn shutdown(mut self) -> Vec<RequestTiming> {
        self.input = None; // close the first channel; closure cascades
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let t = self.timings.lock().clone();
        t
    }
}

impl Drop for PipelineExecutor {
    fn drop(&mut self) {
        self.input = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs3() -> Vec<StageSpec> {
        vec![
            StageSpec::new("sr", 90.0, 2.0, 1.0),
            StageSpec::new("seg", 70.0, 0.5, -1.0),
            StageSpec::new("cls", 30.0, 3.0, 0.0),
        ]
    }

    #[test]
    fn pipeline_output_matches_sequential_reference() {
        let ex = PipelineExecutor::spawn(specs3(), KernelMode::Sleep, 0.001, 4);
        let input = vec![1.0_f32, -2.0, 0.5, 7.25];
        let expected = ex.reference_output(input.clone());
        ex.submit(1, input).unwrap();
        let (id, out) = ex.recv().unwrap();
        assert_eq!(id, 1);
        assert_eq!(out, expected);
        ex.shutdown();
    }

    #[test]
    fn many_requests_complete_in_order_through_fifo_stages() {
        // queue_cap 8 gives 3*(8+1)+8 = 35 in-flight slots, comfortably
        // above the 20 requests submitted before any recv (submitting past
        // capacity without a consumer would deadlock by design).
        let ex = PipelineExecutor::spawn(specs3(), KernelMode::Sleep, 0.0001, 8);
        for i in 0..20 {
            ex.submit(i, vec![i as f32]).unwrap();
        }
        let mut ids = Vec::new();
        for _ in 0..20 {
            let (id, _) = ex.recv().unwrap();
            ids.push(id);
        }
        assert_eq!(ids, (0..20).collect::<Vec<_>>());
        let timings = ex.shutdown();
        assert_eq!(timings.len(), 20);
        assert!(timings.iter().all(|t| t.stage_service.len() == 3));
    }

    #[test]
    fn pipelining_overlaps_stages() {
        // With 3 stages of ~30 ms (scaled), 6 requests take ~(6+2)*30 ms
        // pipelined vs ~6*90 ms sequentially. Assert we beat 70% of
        // sequential — loose enough for CI noise.
        let specs: Vec<StageSpec> = (0..3)
            .map(|i| StageSpec::new(format!("s{i}"), 30.0, 1.0, 1.0))
            .collect();
        let ex = PipelineExecutor::spawn(specs, KernelMode::Sleep, 1.0, 4);
        let start = Instant::now();
        for i in 0..6 {
            ex.submit(i, vec![0.0]).unwrap();
        }
        for _ in 0..6 {
            ex.recv().unwrap();
        }
        let elapsed = start.elapsed();
        ex.shutdown();
        let sequential = Duration::from_millis(6 * 90);
        assert!(
            elapsed < sequential.mul_f64(0.7),
            "pipelined {elapsed:?} vs sequential {sequential:?}"
        );
    }

    #[test]
    fn compute_kernel_busy_spins_for_service_time() {
        let specs = vec![StageSpec::new("k", 20.0, 1.0, 0.0)];
        let ex = PipelineExecutor::spawn(specs, KernelMode::Compute, 1.0, 2);
        ex.submit(0, vec![1.0]).unwrap();
        ex.recv().unwrap();
        let timings = ex.shutdown();
        assert!(timings[0].stage_service[0] >= Duration::from_millis(19));
    }

    #[test]
    fn eviction_stops_a_stage() {
        let ex = PipelineExecutor::spawn(specs3(), KernelMode::Sleep, 0.0001, 4);
        ex.submit(1, vec![1.0]).unwrap();
        ex.recv().unwrap();
        ex.evict_stage(1);
        // The evicted stage drops its model on the next request; the
        // request never completes and the pipeline winds down.
        ex.submit(2, vec![1.0]).unwrap();
        let res = ex.recv();
        assert_eq!(res, Err(ExecutorError::Terminated));
    }

    #[test]
    fn shutdown_drains_in_flight_requests() {
        let ex = PipelineExecutor::spawn(specs3(), KernelMode::Sleep, 0.001, 8);
        for i in 0..5 {
            ex.submit(i, vec![i as f32]).unwrap();
        }
        for _ in 0..5 {
            ex.recv().unwrap();
        }
        let timings = ex.shutdown();
        assert_eq!(timings.len(), 5);
    }

    #[test]
    fn stats_summarise_timings() {
        let ex = PipelineExecutor::spawn(specs3(), KernelMode::Sleep, 0.05, 4);
        for i in 0..10 {
            ex.submit(i, vec![1.0]).unwrap();
        }
        for _ in 0..10 {
            ex.recv().unwrap();
        }
        let timings = ex.shutdown();
        let stats = ExecutorStats::from_timings(&timings);
        assert_eq!(stats.count, 10);
        assert!(stats.mean_ms > 0.0);
        assert!(stats.p95_ms.unwrap() >= stats.mean_ms * 0.5);
        assert_eq!(stats.stage_mean_ms.len(), 3);
        // sr (90 ms * 0.05 scale) is the slowest stage.
        assert!(stats.stage_mean_ms[0] > stats.stage_mean_ms[2]);
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let ex = PipelineExecutor::spawn(specs3(), KernelMode::Sleep, 0.001, 2);
        let timings = ex.shutdown();
        assert!(timings.is_empty());
    }
}
