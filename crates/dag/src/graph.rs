//! The FFS DAG: components and dataflow within one serverless function.
//!
//! Note the distinction the paper draws (§5.2.1): this DAG captures the
//! computation flow *within* a serverless function, not the task DAGs
//! *among* functions that other serverless systems schedule.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a component (node) within one FFS DAG.
///
/// Ids are dense indices in registration order, which is always a
/// topological order because a component can only name already-registered
/// components as inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One DNN component of a FluidFaaS function.
///
/// `work` is an abstract compute cost: the component's execution time in
/// milliseconds on a single GPC at batch size 1. The performance model in
/// `ffs-profile` scales it to concrete MIG slices and batch sizes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Human-readable component name (e.g. `"super_resolution"`).
    pub name: String,
    /// GPU memory footprint in GB (weights + activations at batch 1).
    pub mem_gb: f64,
    /// Compute cost: milliseconds on one GPC at batch size 1.
    pub work: f64,
    /// Size of the component's output tensor in MB (what must cross a
    /// pipeline-stage boundary through host shared memory).
    pub output_mb: f64,
}

impl Component {
    /// Creates a component description.
    pub fn new(name: impl Into<String>, mem_gb: f64, work: f64, output_mb: f64) -> Self {
        Component {
            name: name.into(),
            mem_gb,
            work,
            output_mb,
        }
    }
}

/// Errors from DAG construction or validation.
#[derive(Clone, Debug, PartialEq)]
pub enum DagError {
    /// An input id does not refer to an already-registered node.
    UnknownInput(NodeId),
    /// The same input was listed twice for one node.
    DuplicateInput(NodeId),
    /// The DAG has no nodes.
    Empty,
    /// A non-source node list was expected but the DAG is disconnected:
    /// `node` is unreachable from the sources.
    Unreachable(NodeId),
    /// A component field is not finite / positive where required.
    InvalidComponent {
        /// The offending node.
        node: NodeId,
        /// Which field is invalid.
        field: &'static str,
    },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::UnknownInput(n) => write!(f, "unknown input node {n:?}"),
            DagError::DuplicateInput(n) => write!(f, "duplicate input node {n:?}"),
            DagError::Empty => write!(f, "the DAG has no components"),
            DagError::Unreachable(n) => write!(f, "node {n:?} is unreachable from the sources"),
            DagError::InvalidComponent { node, field } => {
                write!(f, "component {node:?} has an invalid {field}")
            }
        }
    }
}

impl std::error::Error for DagError {}

/// The FFS DAG of one FluidFaaS function.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FfsDag {
    name: String,
    components: Vec<Component>,
    /// `inputs[i]` = nodes feeding node `i`.
    inputs: Vec<Vec<NodeId>>,
    /// `outputs[i]` = nodes consuming node `i`'s output.
    outputs: Vec<Vec<NodeId>>,
}

impl FfsDag {
    /// Creates an empty DAG for the named function.
    pub fn new(name: impl Into<String>) -> Self {
        FfsDag {
            name: name.into(),
            components: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Registers a component with its dataflow inputs, mirroring the
    /// paper's `model.reg(self, x1, x2)` API. Inputs must already be
    /// registered, which keeps the graph acyclic by construction.
    pub fn register(
        &mut self,
        component: Component,
        inputs: &[NodeId],
    ) -> Result<NodeId, DagError> {
        let id = NodeId(self.components.len() as u32);
        for (i, &inp) in inputs.iter().enumerate() {
            if inp.index() >= self.components.len() {
                return Err(DagError::UnknownInput(inp));
            }
            if inputs[..i].contains(&inp) {
                return Err(DagError::DuplicateInput(inp));
            }
        }
        if !component.mem_gb.is_finite() || component.mem_gb <= 0.0 {
            return Err(DagError::InvalidComponent {
                node: id,
                field: "mem_gb",
            });
        }
        if !component.work.is_finite() || component.work <= 0.0 {
            return Err(DagError::InvalidComponent {
                node: id,
                field: "work",
            });
        }
        if !component.output_mb.is_finite() || component.output_mb < 0.0 {
            return Err(DagError::InvalidComponent {
                node: id,
                field: "output_mb",
            });
        }
        self.components.push(component);
        self.inputs.push(inputs.to_vec());
        self.outputs.push(Vec::new());
        for &inp in inputs {
            self.outputs[inp.index()].push(id);
        }
        Ok(id)
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True if the DAG has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// All node ids in topological (registration) order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.components.len() as u32).map(NodeId)
    }

    /// The component description of a node.
    pub fn component(&self, id: NodeId) -> &Component {
        &self.components[id.index()]
    }

    /// The dataflow inputs of a node.
    pub fn inputs(&self, id: NodeId) -> &[NodeId] {
        &self.inputs[id.index()]
    }

    /// The dataflow consumers of a node.
    pub fn outputs(&self, id: NodeId) -> &[NodeId] {
        &self.outputs[id.index()]
    }

    /// Nodes with no inputs.
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|&n| self.inputs(n).is_empty())
            .collect()
    }

    /// Nodes with no consumers.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes()
            .filter(|&n| self.outputs(n).is_empty())
            .collect()
    }

    /// All edges as `(from, to)` pairs, in registration order.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        for to in self.nodes() {
            for &from in self.inputs(to) {
                out.push((from, to));
            }
        }
        out
    }

    /// Total memory footprint of all components (the monolithic requirement
    /// a baseline scheduler must satisfy with one MIG slice).
    pub fn total_mem_gb(&self) -> f64 {
        self.components.iter().map(|c| c.mem_gb).sum()
    }

    /// Total compute work of all components.
    pub fn total_work(&self) -> f64 {
        self.components.iter().map(|c| c.work).sum()
    }

    /// Validates the DAG: non-empty and fully reachable from the sources.
    pub fn validate(&self) -> Result<(), DagError> {
        if self.is_empty() {
            return Err(DagError::Empty);
        }
        // Reachability from sources (forward BFS; ids are topologically
        // ordered so one pass suffices).
        let mut reachable = vec![false; self.len()];
        for n in self.nodes() {
            if self.inputs(n).is_empty() {
                reachable[n.index()] = true;
            } else if self.inputs(n).iter().any(|i| reachable[i.index()]) {
                // A node is part of the function if any of its inputs is;
                // all inputs are registered earlier so already decided.
                reachable[n.index()] = true;
            }
        }
        if let Some(i) = reachable.iter().position(|r| !r) {
            return Err(DagError::Unreachable(NodeId(i as u32)));
        }
        Ok(())
    }

    /// Sum of the output tensors (MB) crossing from `left` to nodes outside
    /// `left`. This is the data a pipeline boundary must move through host
    /// shared memory.
    pub fn crossing_mb(&self, left: &[NodeId]) -> f64 {
        let in_left = |n: NodeId| left.contains(&n);
        let mut total = 0.0;
        for &n in left {
            if self.outputs(n).iter().any(|&o| !in_left(o)) {
                // The producer writes its tensor once into shared memory,
                // regardless of the number of consumers.
                total += self.component(n).output_mb;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain3() -> (FfsDag, Vec<NodeId>) {
        let mut dag = FfsDag::new("chain");
        let a = dag
            .register(Component::new("a", 1.0, 10.0, 4.0), &[])
            .unwrap();
        let b = dag
            .register(Component::new("b", 2.0, 20.0, 2.0), &[a])
            .unwrap();
        let c = dag
            .register(Component::new("c", 3.0, 30.0, 1.0), &[b])
            .unwrap();
        (dag, vec![a, b, c])
    }

    #[test]
    fn chain_structure() {
        let (dag, ids) = chain3();
        dag.validate().unwrap();
        assert_eq!(dag.len(), 3);
        assert_eq!(dag.sources(), vec![ids[0]]);
        assert_eq!(dag.sinks(), vec![ids[2]]);
        assert_eq!(dag.edges(), vec![(ids[0], ids[1]), (ids[1], ids[2])]);
        assert!((dag.total_mem_gb() - 6.0).abs() < 1e-12);
        assert!((dag.total_work() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_structure() {
        // a -> (b, c) -> d : the App-3-style branch.
        let mut dag = FfsDag::new("diamond");
        let a = dag
            .register(Component::new("a", 1.0, 10.0, 4.0), &[])
            .unwrap();
        let b = dag
            .register(Component::new("b", 1.0, 10.0, 4.0), &[a])
            .unwrap();
        let c = dag
            .register(Component::new("c", 1.0, 10.0, 4.0), &[a])
            .unwrap();
        let d = dag
            .register(Component::new("d", 1.0, 10.0, 4.0), &[b, c])
            .unwrap();
        dag.validate().unwrap();
        assert_eq!(dag.outputs(a), &[b, c]);
        assert_eq!(dag.inputs(d), &[b, c]);
        assert_eq!(dag.sinks(), vec![d]);
    }

    #[test]
    fn unknown_input_rejected() {
        let mut dag = FfsDag::new("bad");
        let err = dag
            .register(Component::new("x", 1.0, 1.0, 1.0), &[NodeId(5)])
            .unwrap_err();
        assert_eq!(err, DagError::UnknownInput(NodeId(5)));
    }

    #[test]
    fn duplicate_input_rejected() {
        let mut dag = FfsDag::new("bad");
        let a = dag
            .register(Component::new("a", 1.0, 1.0, 1.0), &[])
            .unwrap();
        let err = dag
            .register(Component::new("b", 1.0, 1.0, 1.0), &[a, a])
            .unwrap_err();
        assert_eq!(err, DagError::DuplicateInput(a));
    }

    #[test]
    fn invalid_component_fields_rejected() {
        let mut dag = FfsDag::new("bad");
        assert!(dag
            .register(Component::new("a", 0.0, 1.0, 1.0), &[])
            .is_err());
        assert!(dag
            .register(Component::new("a", 1.0, -1.0, 1.0), &[])
            .is_err());
        assert!(dag
            .register(Component::new("a", 1.0, 1.0, f64::NAN), &[])
            .is_err());
        // Zero-sized output is fine (e.g. a final classifier label).
        assert!(dag
            .register(Component::new("a", 1.0, 1.0, 0.0), &[])
            .is_ok());
    }

    #[test]
    fn empty_dag_fails_validation() {
        assert_eq!(FfsDag::new("e").validate(), Err(DagError::Empty));
    }

    #[test]
    fn crossing_mb_counts_producers_once() {
        let mut dag = FfsDag::new("fanout");
        let a = dag
            .register(Component::new("a", 1.0, 1.0, 10.0), &[])
            .unwrap();
        let b = dag
            .register(Component::new("b", 1.0, 1.0, 3.0), &[a])
            .unwrap();
        let c = dag
            .register(Component::new("c", 1.0, 1.0, 4.0), &[a])
            .unwrap();
        let _d = dag
            .register(Component::new("d", 1.0, 1.0, 1.0), &[b, c])
            .unwrap();
        // Boundary after {a}: a's tensor crosses once even with two readers.
        assert!((dag.crossing_mb(&[a]) - 10.0).abs() < 1e-12);
        // Boundary after {a, b}: both a (consumed by c) and b (by d) cross.
        assert!((dag.crossing_mb(&[a, b]) - 13.0).abs() < 1e-12);
        // Boundary after {a, b, c}: b and c cross to d.
        assert!((dag.crossing_mb(&[a, b, c]) - 7.0).abs() < 1e-12);
    }
}
