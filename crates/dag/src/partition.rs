//! Enumeration and CV-ranking of consecutive pipeline partitions.
//!
//! For a linearised DAG with `b` blocks there are `2^(b-1)` consecutive
//! partitions (each of the `b-1` boundaries is either a stage cut or not).
//! The paper ranks them offline by the coefficient of variation of the
//! stage execution times (Equation 1): lower CV means a better balanced
//! pipeline. At launch, the invoker walks the ranked list and deploys the
//! first partition the currently free MIG slices can host.

use serde::{Deserialize, Serialize};

use crate::graph::{FfsDag, NodeId};

/// A concrete pipeline partition: an ordered list of stages, each holding
/// the DAG nodes it executes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelinePartition {
    stages: Vec<Vec<NodeId>>,
}

impl PipelinePartition {
    /// Creates a partition from explicit stages.
    pub fn new(stages: Vec<Vec<NodeId>>) -> Self {
        debug_assert!(stages.iter().all(|s| !s.is_empty()));
        PipelinePartition { stages }
    }

    /// The stages, in pipeline order.
    pub fn stages(&self) -> &[Vec<NodeId>] {
        &self.stages
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// True if this is the non-pipelined (single-stage) configuration.
    pub fn is_monolithic(&self) -> bool {
        self.stages.len() == 1
    }

    /// Memory footprint of each stage: the sum of its components'
    /// footprints (all components of a stage are co-resident on one slice).
    pub fn stage_mem_gb(&self, dag: &FfsDag) -> Vec<f64> {
        self.stages
            .iter()
            .map(|s| s.iter().map(|&n| dag.component(n).mem_gb).sum())
            .collect()
    }

    /// The largest single-stage memory footprint — the minimum slice memory
    /// a pipelined deployment of this partition needs.
    pub fn max_stage_mem_gb(&self, dag: &FfsDag) -> f64 {
        self.stage_mem_gb(dag).into_iter().fold(0.0, f64::max)
    }

    /// Execution cost of each stage under a per-node cost function
    /// (components of a stage run sequentially on the stage's slice).
    pub fn stage_costs(&self, cost: impl Fn(NodeId) -> f64) -> Vec<f64> {
        self.stages
            .iter()
            .map(|s| s.iter().map(|&n| cost(n)).sum())
            .collect()
    }

    /// The coefficient of variation of the stage costs (paper Equation 1):
    /// `std(t_1..t_n) / mean(t_1..t_n)`. Zero for a monolithic partition.
    pub fn cv(&self, cost: impl Fn(NodeId) -> f64) -> f64 {
        let costs = self.stage_costs(cost);
        let n = costs.len() as f64;
        let mean = costs.iter().sum::<f64>() / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = costs.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / n;
        var.sqrt() / mean
    }

    /// Megabytes transferred across each of the `num_stages - 1` boundaries
    /// (through host shared memory, because MIG slices cannot exchange data
    /// on the GPU).
    pub fn boundary_transfers_mb(&self, dag: &FfsDag) -> Vec<f64> {
        let mut prefix: Vec<NodeId> = Vec::new();
        let mut out = Vec::new();
        for stage in &self.stages[..self.stages.len().saturating_sub(1)] {
            prefix.extend_from_slice(stage);
            out.push(dag.crossing_mb(&prefix));
        }
        out
    }
}

/// Why a partition spec could not be enumerated or ranked.
///
/// These used to be asserts/unwraps on the planner path; a malformed spec
/// (an empty DAG, a degenerate block, a NaN profile cost) now surfaces as a
/// recoverable error instead of panicking the invoker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionError {
    /// The block sequence is empty — nothing to partition.
    NoBlocks,
    /// Too many blocks: enumeration is `2^(b-1)` and would explode.
    TooManyBlocks(usize),
    /// Block `{0}` contains no nodes.
    EmptyBlock(usize),
    /// The cost function produced a non-finite stage cost for block `{0}`'s
    /// node, so CV ranking would be meaningless.
    NonFiniteCost(u32),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::NoBlocks => write!(f, "cannot partition zero blocks"),
            PartitionError::TooManyBlocks(b) => {
                write!(f, "partition enumeration is exponential: {b} blocks > 24")
            }
            PartitionError::EmptyBlock(i) => write!(f, "block {i} is empty"),
            PartitionError::NonFiniteCost(n) => {
                write!(f, "non-finite execution cost for node {n}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// Maximum block count accepted by enumeration (`2^(b-1)` partitions).
pub const MAX_BLOCKS: usize = 24;

/// Fallible form of [`enumerate_partitions`]: returns an error instead of
/// panicking on a malformed block sequence.
pub fn try_enumerate_partitions(
    blocks: &[Vec<NodeId>],
) -> Result<Vec<PipelinePartition>, PartitionError> {
    let b = blocks.len();
    if b == 0 {
        return Err(PartitionError::NoBlocks);
    }
    if b > MAX_BLOCKS {
        return Err(PartitionError::TooManyBlocks(b));
    }
    if let Some(i) = blocks.iter().position(|blk| blk.is_empty()) {
        return Err(PartitionError::EmptyBlock(i));
    }
    let mut out = Vec::with_capacity(1 << (b - 1));
    for mask in 0u32..(1 << (b - 1)) {
        let mut stages: Vec<Vec<NodeId>> = Vec::new();
        let mut current: Vec<NodeId> = Vec::new();
        for (i, block) in blocks.iter().enumerate() {
            current.extend_from_slice(block);
            let boundary_after = i + 1 < b && mask & (1 << i) != 0;
            if boundary_after || i + 1 == b {
                stages.push(std::mem::take(&mut current));
            }
        }
        out.push(PipelinePartition::new(stages));
    }
    Ok(out)
}

/// Enumerates all `2^(blocks-1)` consecutive partitions of a block
/// sequence, monolithic first. Stages never split a block.
///
/// Panics on a malformed block sequence; planner-path callers should use
/// [`try_enumerate_partitions`] instead.
pub fn enumerate_partitions(blocks: &[Vec<NodeId>]) -> Vec<PipelinePartition> {
    try_enumerate_partitions(blocks).expect("valid block sequence")
}

/// A partition together with its balance score.
#[derive(Clone, Debug, PartialEq)]
pub struct RankedPartition {
    /// The partition.
    pub partition: PipelinePartition,
    /// Its coefficient of variation (lower = more balanced).
    pub cv: f64,
    /// The per-stage costs the CV was computed from.
    pub stage_costs: Vec<f64>,
}

/// Enumerates and ranks all partitions of `blocks` by CV, ascending, with
/// ties broken toward fewer stages (cheaper: fewer slices, fewer
/// transfers) and then deterministically by stage shape.
///
/// `max_stages` caps the pipeline depth (use `usize::MAX` for no cap). The
/// monolithic single-stage partition is always included: it has CV 0 and
/// one stage, so it sorts first — matching the paper's pipeline-migration
/// preference for non-pipelined deployments when a large slice is free.
pub fn rank_partitions(
    blocks: &[Vec<NodeId>],
    cost: impl Fn(NodeId) -> f64,
    max_stages: usize,
) -> Vec<RankedPartition> {
    try_rank_partitions(blocks, cost, max_stages).expect("valid partition spec")
}

/// Fallible form of [`rank_partitions`]: a malformed block sequence or a
/// cost function yielding non-finite values returns an error instead of
/// panicking (previously an `unwrap` inside the sort comparator).
pub fn try_rank_partitions(
    blocks: &[Vec<NodeId>],
    cost: impl Fn(NodeId) -> f64,
    max_stages: usize,
) -> Result<Vec<RankedPartition>, PartitionError> {
    // Validate costs once over the nodes rather than per partition: every
    // stage cost is a sum of node costs, so finite node costs imply finite
    // stage costs.
    for blk in blocks {
        for &n in blk {
            if !cost(n).is_finite() {
                return Err(PartitionError::NonFiniteCost(n.0));
            }
        }
    }
    let mut ranked: Vec<RankedPartition> = try_enumerate_partitions(blocks)?
        .into_iter()
        .filter(|p| p.num_stages() <= max_stages)
        .map(|p| {
            let stage_costs = p.stage_costs(&cost);
            let cv = p.cv(&cost);
            RankedPartition {
                partition: p,
                cv,
                stage_costs,
            }
        })
        .collect();
    // total_cmp keeps the comparator panic-free even if a cost function is
    // non-deterministic between the validation pass and here.
    ranked.sort_by(|a, b| {
        a.cv.total_cmp(&b.cv)
            .then_with(|| a.partition.num_stages().cmp(&b.partition.num_stages()))
            .then_with(|| a.partition.stages().cmp(b.partition.stages()))
    });
    Ok(ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Component;

    fn blocks_of(n: u32) -> Vec<Vec<NodeId>> {
        (0..n).map(|i| vec![NodeId(i)]).collect()
    }

    fn chain_dag(works: &[f64]) -> FfsDag {
        let mut dag = FfsDag::new("chain");
        let mut prev: Option<NodeId> = None;
        for (i, &w) in works.iter().enumerate() {
            let inputs: Vec<NodeId> = prev.into_iter().collect();
            prev = Some(
                dag.register(Component::new(format!("n{i}"), 1.0, w, 5.0), &inputs)
                    .unwrap(),
            );
        }
        dag
    }

    #[test]
    fn enumeration_count_is_2_pow_b_minus_1() {
        for b in 1..=6u32 {
            let parts = enumerate_partitions(&blocks_of(b));
            assert_eq!(parts.len(), 1 << (b - 1));
        }
    }

    #[test]
    fn five_model_example_has_16_partitions() {
        // The paper: "There are 2^4 possible consecutive partitions" for a
        // five-model sequential DAG.
        assert_eq!(enumerate_partitions(&blocks_of(5)).len(), 16);
    }

    #[test]
    fn every_partition_preserves_order_and_covers_all_nodes() {
        let blocks = blocks_of(4);
        for p in enumerate_partitions(&blocks) {
            let flat: Vec<NodeId> = p.stages().iter().flatten().copied().collect();
            assert_eq!(flat, (0..4).map(NodeId).collect::<Vec<_>>());
        }
    }

    #[test]
    fn cv_zero_for_perfectly_balanced() {
        let p = PipelinePartition::new(vec![vec![NodeId(0)], vec![NodeId(1)]]);
        assert_eq!(p.cv(|_| 10.0), 0.0);
    }

    #[test]
    fn cv_matches_equation_1() {
        // Stages with costs [10, 20, 30]: mean 20, std sqrt(200/3).
        let p = PipelinePartition::new(vec![vec![NodeId(0)], vec![NodeId(1)], vec![NodeId(2)]]);
        let cost = |n: NodeId| (n.0 as f64 + 1.0) * 10.0;
        let expected = (200.0f64 / 3.0).sqrt() / 20.0;
        assert!((p.cv(cost) - expected).abs() < 1e-12);
    }

    #[test]
    fn ranking_prefers_balanced_pipelines_among_equal_depth() {
        // Work [10, 10, 20]: among 2-stage partitions, [n0,n1|n2] has
        // stages (20, 20) → CV 0; [n0|n1,n2] has (10, 30) → CV 0.5.
        let blocks = blocks_of(3);
        let cost = |n: NodeId| if n.0 == 2 { 20.0 } else { 10.0 };
        let ranked = rank_partitions(&blocks, cost, usize::MAX);
        let two_stage: Vec<&RankedPartition> = ranked
            .iter()
            .filter(|r| r.partition.num_stages() == 2)
            .collect();
        assert_eq!(
            two_stage[0].partition.stages()[0],
            vec![NodeId(0), NodeId(1)]
        );
        assert!(two_stage[0].cv < two_stage[1].cv);
    }

    #[test]
    fn monolithic_sorts_first() {
        let ranked = rank_partitions(&blocks_of(3), |_| 10.0, usize::MAX);
        assert!(ranked[0].partition.is_monolithic());
        // Balanced multi-stage partitions also have CV 0 but more stages.
        assert_eq!(ranked[0].cv, 0.0);
    }

    #[test]
    fn max_stages_filter() {
        let ranked = rank_partitions(&blocks_of(5), |_| 1.0, 2);
        assert!(ranked.iter().all(|r| r.partition.num_stages() <= 2));
        assert_eq!(ranked.len(), 1 + 4); // monolithic + 4 two-stage cuts
    }

    #[test]
    fn stage_mem_and_max() {
        let dag = chain_dag(&[1.0, 1.0, 1.0]);
        let mut p = PipelinePartition::new(vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2)]]);
        // chain_dag gives each node 1.0 GB.
        assert_eq!(p.stage_mem_gb(&dag), vec![2.0, 1.0]);
        assert_eq!(p.max_stage_mem_gb(&dag), 2.0);
        p = PipelinePartition::new(vec![vec![NodeId(0)], vec![NodeId(1)], vec![NodeId(2)]]);
        assert_eq!(p.max_stage_mem_gb(&dag), 1.0);
    }

    #[test]
    fn boundary_transfers_follow_crossing_tensors() {
        let dag = chain_dag(&[1.0, 1.0, 1.0]); // each output is 5 MB
        let p = PipelinePartition::new(vec![vec![NodeId(0)], vec![NodeId(1), NodeId(2)]]);
        assert_eq!(p.boundary_transfers_mb(&dag), vec![5.0]);
        let mono = PipelinePartition::new(vec![vec![NodeId(0), NodeId(1), NodeId(2)]]);
        assert!(mono.boundary_transfers_mb(&dag).is_empty());
    }

    #[test]
    fn malformed_specs_error_instead_of_panicking() {
        assert_eq!(
            try_enumerate_partitions(&[]).unwrap_err(),
            PartitionError::NoBlocks
        );
        let too_many = blocks_of(25);
        assert_eq!(
            try_enumerate_partitions(&too_many).unwrap_err(),
            PartitionError::TooManyBlocks(25)
        );
        let holey = vec![vec![NodeId(0)], vec![], vec![NodeId(1)]];
        assert_eq!(
            try_enumerate_partitions(&holey).unwrap_err(),
            PartitionError::EmptyBlock(1)
        );
        assert_eq!(
            try_rank_partitions(&[], |_| 1.0, usize::MAX).unwrap_err(),
            PartitionError::NoBlocks
        );
    }

    #[test]
    fn non_finite_costs_error_instead_of_panicking() {
        let blocks = blocks_of(3);
        let err = try_rank_partitions(
            &blocks,
            |n| if n.0 == 1 { f64::NAN } else { 1.0 },
            usize::MAX,
        )
        .unwrap_err();
        assert_eq!(err, PartitionError::NonFiniteCost(1));
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn try_rank_matches_infallible_on_valid_input() {
        let blocks = blocks_of(4);
        let cost = |n: NodeId| n.0 as f64 + 1.0;
        let a = rank_partitions(&blocks, cost, usize::MAX);
        let b = try_rank_partitions(&blocks, cost, usize::MAX).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ranking_is_deterministic() {
        let blocks = blocks_of(4);
        let a = rank_partitions(&blocks, |n| n.0 as f64 + 1.0, usize::MAX);
        let b = rank_partitions(&blocks, |n| n.0 as f64 + 1.0, usize::MAX);
        assert_eq!(
            a.iter().map(|r| r.partition.clone()).collect::<Vec<_>>(),
            b.iter().map(|r| r.partition.clone()).collect::<Vec<_>>()
        );
    }
}
