//! Graphviz export of FFS DAGs and their pipeline partitions.
//!
//! Handy for documentation and debugging: render a function's DAG, or a
//! partitioned view where each pipeline stage becomes a cluster (the
//! visual analogue of the paper's Figure 4 pipelines).

use std::fmt::Write as _;

use crate::graph::{FfsDag, NodeId};
use crate::partition::PipelinePartition;

/// Renders the DAG in Graphviz `dot` syntax.
pub fn to_dot(dag: &FfsDag) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dag.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for n in dag.nodes() {
        let c = dag.component(n);
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{:.1} GB, {:.0} ms\" shape=box];",
            n.0, c.name, c.mem_gb, c.work
        );
    }
    for (from, to) in dag.edges() {
        let _ = writeln!(
            out,
            "  n{} -> n{} [label=\"{:.0} MB\"];",
            from.0,
            to.0,
            dag.component(from).output_mb
        );
    }
    out.push_str("}\n");
    out
}

/// Renders a partitioned DAG: one cluster per pipeline stage.
pub fn partition_to_dot(dag: &FfsDag, partition: &PipelinePartition) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", dag.name());
    let _ = writeln!(out, "  rankdir=LR;");
    for (i, stage) in partition.stages().iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_stage{i} {{");
        let _ = writeln!(out, "    label=\"stage {i}\";");
        for &n in stage {
            let c = dag.component(n);
            let _ = writeln!(out, "    n{} [label=\"{}\" shape=box];", n.0, c.name);
        }
        let _ = writeln!(out, "  }}");
    }
    for (from, to) in dag.edges() {
        let _ = writeln!(out, "  n{} -> n{};", from.0, to.0);
    }
    out.push_str("}\n");
    out
}

/// Node membership lookup used by rendering code and tests.
pub fn stage_of(partition: &PipelinePartition, node: NodeId) -> Option<usize> {
    partition.stages().iter().position(|s| s.contains(&node))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Component;

    fn dag() -> FfsDag {
        let mut d = FfsDag::new("demo");
        let a = d
            .register(Component::new("sr", 2.0, 90.0, 48.0), &[])
            .unwrap();
        let b = d
            .register(Component::new("seg", 2.4, 70.0, 16.0), &[a])
            .unwrap();
        let _ = d
            .register(Component::new("cls", 1.6, 30.0, 0.01), &[b])
            .unwrap();
        d
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let s = to_dot(&dag());
        assert!(s.starts_with("digraph \"demo\""));
        assert!(s.contains("n0 [label=\"sr"));
        assert!(s.contains("n0 -> n1"));
        assert!(s.contains("48 MB"));
        assert!(s.trim_end().ends_with('}'));
    }

    #[test]
    fn partitioned_dot_clusters_stages() {
        let d = dag();
        let p = PipelinePartition::new(vec![vec![NodeId(0)], vec![NodeId(1), NodeId(2)]]);
        let s = partition_to_dot(&d, &p);
        assert!(s.contains("cluster_stage0"));
        assert!(s.contains("cluster_stage1"));
        assert_eq!(stage_of(&p, NodeId(2)), Some(1));
        assert_eq!(stage_of(&p, NodeId(9)), None);
    }
}
