//! Dominator analysis: finding the valid pipeline-stage boundaries of an
//! FFS DAG.
//!
//! A pipeline stage boundary must be a *linearisation point* of the DAG: a
//! cut that every source-to-sink path crosses in the same place. The nodes
//! that provide such cuts are exactly the common dominators of all sinks
//! ("cut nodes"). Grouping the remaining nodes into the gaps between
//! consecutive cut nodes yields a sequence of *blocks*; consecutive runs of
//! blocks are the candidate pipeline stages (§5.2.2 of the paper, following
//! ESG's dominator-based partitioning).

use crate::graph::{FfsDag, NodeId};

/// Maximum number of components supported by the bitset-based analysis.
pub const MAX_NODES: usize = 64;

/// Dominator sets and cut nodes of an FFS DAG.
#[derive(Clone, Debug)]
pub struct DominatorInfo {
    /// `dom[v]` is a bitset of the nodes dominating `v` (including `v`
    /// itself). A node `d` dominates `v` if every path from a source to `v`
    /// passes through `d`.
    dom: Vec<u64>,
    /// The cut nodes in topological order: nodes present on *every*
    /// source-to-sink path.
    cuts: Vec<NodeId>,
}

impl DominatorInfo {
    /// Computes dominators for a validated DAG.
    ///
    /// # Panics
    /// Panics if the DAG has more than [`MAX_NODES`] components or is empty.
    pub fn compute(dag: &FfsDag) -> Self {
        let n = dag.len();
        assert!(n > 0, "dominators of an empty DAG");
        assert!(
            n <= MAX_NODES,
            "FFS DAGs larger than {MAX_NODES} components are unsupported"
        );

        // Registration order is topological, so one forward pass suffices.
        let mut dom = vec![0u64; n];
        for v in dag.nodes() {
            let i = v.index();
            let preds = dag.inputs(v);
            let mut d = if preds.is_empty() {
                // Sources are dominated only by themselves (a virtual entry
                // would dominate everything; we leave it implicit).
                0u64
            } else {
                preds
                    .iter()
                    .map(|p| dom[p.index()])
                    .fold(u64::MAX, |acc, x| acc & x)
            };
            d |= 1 << i;
            dom[i] = d;
        }

        // Cut nodes: common dominators of all sinks.
        let sinks = dag.sinks();
        let common = sinks
            .iter()
            .map(|s| dom[s.index()])
            .fold(u64::MAX, |acc, x| acc & x);
        let cuts: Vec<NodeId> = dag
            .nodes()
            .filter(|v| common & (1 << v.index()) != 0)
            .collect();

        DominatorInfo { dom, cuts }
    }

    /// True if `d` dominates `v`.
    pub fn dominates(&self, d: NodeId, v: NodeId) -> bool {
        self.dom[v.index()] & (1 << d.index()) != 0
    }

    /// The cut nodes in topological order.
    pub fn cut_nodes(&self) -> &[NodeId] {
        &self.cuts
    }
}

/// Linearises a DAG into blocks: each cut node is its own block, and the
/// non-cut nodes between two consecutive cut nodes form a gap block.
///
/// Every consecutive grouping of the returned blocks is a valid pipeline
/// partition: all dataflow crosses block boundaries in the forward
/// direction.
pub fn linear_blocks(dag: &FfsDag) -> Vec<Vec<NodeId>> {
    let info = DominatorInfo::compute(dag);
    let cuts = info.cut_nodes();

    // For each node, find the index of the last cut that dominates it
    // (usize::MAX for "before the first cut", only possible with multiple
    // sources).
    let gap_of = |v: NodeId| -> usize {
        let mut last = usize::MAX;
        for (i, &c) in cuts.iter().enumerate() {
            if info.dominates(c, v) {
                last = i;
            }
        }
        last
    };

    let mut blocks: Vec<Vec<NodeId>> = Vec::new();
    // gap before the first cut
    let mut gap0: Vec<NodeId> = dag
        .nodes()
        .filter(|&v| !cuts.contains(&v) && gap_of(v) == usize::MAX)
        .collect();
    if !gap0.is_empty() {
        gap0.sort();
        blocks.push(gap0);
    }
    for (i, &c) in cuts.iter().enumerate() {
        blocks.push(vec![c]);
        let mut gap: Vec<NodeId> = dag
            .nodes()
            .filter(|&v| v != c && !cuts.contains(&v) && gap_of(v) == i)
            .collect();
        if !gap.is_empty() {
            gap.sort();
            blocks.push(gap);
        }
    }
    debug_assert_eq!(
        blocks.iter().map(Vec::len).sum::<usize>(),
        dag.len(),
        "every node appears in exactly one block"
    );
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Component;

    fn comp(name: &str) -> Component {
        Component::new(name, 1.0, 10.0, 1.0)
    }

    #[test]
    fn chain_every_node_is_a_cut() {
        let mut dag = FfsDag::new("chain");
        let a = dag.register(comp("a"), &[]).unwrap();
        let b = dag.register(comp("b"), &[a]).unwrap();
        let c = dag.register(comp("c"), &[b]).unwrap();
        let info = DominatorInfo::compute(&dag);
        assert_eq!(info.cut_nodes(), &[a, b, c]);
        assert!(info.dominates(a, c));
        assert!(!info.dominates(c, a));
        let blocks = linear_blocks(&dag);
        assert_eq!(blocks, vec![vec![a], vec![b], vec![c]]);
    }

    #[test]
    fn diamond_branch_nodes_form_a_gap_block() {
        // a -> (b, c) -> d, the App 3 shape.
        let mut dag = FfsDag::new("diamond");
        let a = dag.register(comp("a"), &[]).unwrap();
        let b = dag.register(comp("b"), &[a]).unwrap();
        let c = dag.register(comp("c"), &[a]).unwrap();
        let d = dag.register(comp("d"), &[b, c]).unwrap();
        let info = DominatorInfo::compute(&dag);
        assert_eq!(info.cut_nodes(), &[a, d]);
        let blocks = linear_blocks(&dag);
        assert_eq!(blocks, vec![vec![a], vec![b, c], vec![d]]);
    }

    #[test]
    fn skip_edge_keeps_optional_node_in_gap() {
        // deblur -> sr -> bgrm with a skip edge deblur -> bgrm
        // (the "if low resolution" branch of App 3).
        let mut dag = FfsDag::new("skip");
        let deblur = dag.register(comp("deblur"), &[]).unwrap();
        let sr = dag.register(comp("sr"), &[deblur]).unwrap();
        let bgrm = dag.register(comp("bgrm"), &[sr, deblur]).unwrap();
        let tail = dag.register(comp("cls"), &[bgrm]).unwrap();
        let blocks = linear_blocks(&dag);
        assert_eq!(blocks, vec![vec![deblur], vec![sr], vec![bgrm], vec![tail]]);
    }

    #[test]
    fn multiple_sources_go_before_the_first_cut() {
        // (x, y) -> z
        let mut dag = FfsDag::new("join");
        let x = dag.register(comp("x"), &[]).unwrap();
        let y = dag.register(comp("y"), &[]).unwrap();
        let z = dag.register(comp("z"), &[x, y]).unwrap();
        let info = DominatorInfo::compute(&dag);
        assert_eq!(info.cut_nodes(), &[z]);
        let blocks = linear_blocks(&dag);
        assert_eq!(blocks, vec![vec![x, y], vec![z]]);
    }

    #[test]
    fn blocks_are_topologically_consistent() {
        // Every edge must go from an earlier-or-same block to a
        // later-or-same block.
        let mut dag = FfsDag::new("w");
        let a = dag.register(comp("a"), &[]).unwrap();
        let b = dag.register(comp("b"), &[a]).unwrap();
        let c = dag.register(comp("c"), &[a]).unwrap();
        let d = dag.register(comp("d"), &[b, c]).unwrap();
        let e = dag.register(comp("e"), &[d, c]).unwrap();
        let blocks = linear_blocks(&dag);
        let block_of = |v: NodeId| blocks.iter().position(|blk| blk.contains(&v)).unwrap();
        for (from, to) in dag.edges() {
            assert!(block_of(from) <= block_of(to), "{from:?} -> {to:?}");
        }
        let _ = e;
    }

    #[test]
    fn five_model_paper_example_has_five_blocks() {
        // The Figure 7 example: x -> m1, x -> m2, (m1, m2) -> m3 -> m4,
        // (m4, y) -> m5. Sources m1, m2 (x and y are request payloads, not
        // components).
        let mut dag = FfsDag::new("fig7");
        let m1 = dag.register(comp("m1"), &[]).unwrap();
        let m2 = dag.register(comp("m2"), &[]).unwrap();
        let m3 = dag.register(comp("m3"), &[m1, m2]).unwrap();
        let m4 = dag.register(comp("m4"), &[m3]).unwrap();
        let m5 = dag.register(comp("m5"), &[m4]).unwrap();
        let blocks = linear_blocks(&dag);
        assert_eq!(blocks, vec![vec![m1, m2], vec![m3], vec![m4], vec![m5]]);
    }
}
