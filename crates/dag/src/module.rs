//! The `FFS.Module` / `FFaaS`-style programming facade (paper Figure 7).
//!
//! In the paper, developers subclass `FluidFaaS.Module` instead of PyTorch's
//! `nn.Module` and register models (and the dataflow between them) in a
//! `defDAG` method; the `FFaaS` object is then constructed either in
//! `BUILDDAG` mode (build the DAG and profile it, offline) or in `RUN` mode
//! (import the DAG plus the MIG assignment the invoker wrote into the
//! configuration layer, and execute).
//!
//! The Rust analogue: implement [`FfsModule`] for each component type and
//! register instances with [`FfsFunctionBuilder::reg`]. The builder produces
//! the [`FfsDag`] consumed by the profiler and the invoker's pipeline
//! planner.

use crate::graph::{Component, DagError, FfsDag, NodeId};

/// Construction mode of an FFS function (paper Figure 7's `RUN` /
/// `BUILDDAG` modes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Build the DAG for profiling (the `MyHandler_buildDAG` entry point).
    BuildDag,
    /// Execute with an imported DAG + MIG configuration (the
    /// `MyHandler_run` entry point). In this workspace, execution is
    /// provided by `ffs-pipeline`'s executor and by the simulators.
    Run,
}

/// A DNN component in the FluidFaaS programming model — the analogue of a
/// `FluidFaaS.Module` subclass.
pub trait FfsModule {
    /// The component's name.
    fn name(&self) -> &str;
    /// GPU memory footprint in GB (weights plus working set at batch 1).
    fn mem_gb(&self) -> f64;
    /// Compute cost: milliseconds on one GPC at batch size 1.
    fn work(&self) -> f64;
    /// Output tensor size in MB.
    fn output_mb(&self) -> f64;

    /// The component description registered into the FFS DAG.
    fn describe(&self) -> Component {
        Component::new(self.name(), self.mem_gb(), self.work(), self.output_mb())
    }
}

/// A plain-struct [`FfsModule`], convenient for tests and synthetic apps.
#[derive(Clone, Debug)]
pub struct SimpleModule {
    /// Component name.
    pub name: String,
    /// Memory footprint in GB.
    pub mem_gb: f64,
    /// Compute cost (ms on 1 GPC, batch 1).
    pub work: f64,
    /// Output tensor size in MB.
    pub output_mb: f64,
}

impl FfsModule for SimpleModule {
    fn name(&self) -> &str {
        &self.name
    }
    fn mem_gb(&self) -> f64 {
        self.mem_gb
    }
    fn work(&self) -> f64 {
        self.work
    }
    fn output_mb(&self) -> f64 {
        self.output_mb
    }
}

/// Builder that accumulates `reg` calls into an [`FfsDag`] — the `defDAG`
/// phase of a FluidFaaS function.
#[derive(Debug)]
pub struct FfsFunctionBuilder {
    mode: Mode,
    dag: FfsDag,
}

impl FfsFunctionBuilder {
    /// Starts building the named function in the given mode.
    pub fn new(name: impl Into<String>, mode: Mode) -> Self {
        FfsFunctionBuilder {
            mode,
            dag: FfsDag::new(name),
        }
    }

    /// The construction mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Registers a module with its dataflow inputs — the analogue of
    /// `x1 = model1.reg(self, x)` in the paper's Figure 7.
    pub fn reg(&mut self, module: &dyn FfsModule, inputs: &[NodeId]) -> Result<NodeId, DagError> {
        self.dag.register(module.describe(), inputs)
    }

    /// Finishes `defDAG`, validating and returning the FFS DAG.
    pub fn build(self) -> Result<FfsDag, DagError> {
        self.dag.validate()?;
        Ok(self.dag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(name: &str, mem: f64) -> SimpleModule {
        SimpleModule {
            name: name.into(),
            mem_gb: mem,
            work: 25.0,
            output_mb: 4.0,
        }
    }

    #[test]
    fn figure7_style_construction() {
        // Mirrors defDAG from the paper: five models, two of them parallel.
        let mut f = FfsFunctionBuilder::new("MyFFaaS", Mode::BuildDag);
        let m1 = f.reg(&module("model1", 2.0), &[]).unwrap();
        let m2 = f.reg(&module("model2", 2.0), &[]).unwrap();
        let m3 = f.reg(&module("model3", 3.0), &[m1, m2]).unwrap();
        let m4 = f.reg(&module("model4", 1.0), &[m3]).unwrap();
        let m5 = f.reg(&module("model5", 1.5), &[m4]).unwrap();
        assert_eq!(f.mode(), Mode::BuildDag);
        let dag = f.build().unwrap();
        assert_eq!(dag.len(), 5);
        assert_eq!(dag.name(), "MyFFaaS");
        assert_eq!(dag.sinks(), vec![m5]);
        assert!((dag.total_mem_gb() - 9.5).abs() < 1e-12);
    }

    #[test]
    fn empty_function_rejected_at_build() {
        let f = FfsFunctionBuilder::new("empty", Mode::BuildDag);
        assert!(matches!(f.build(), Err(DagError::Empty)));
    }

    #[test]
    fn describe_copies_module_fields() {
        let m = module("seg", 4.5);
        let c = m.describe();
        assert_eq!(c.name, "seg");
        assert_eq!(c.mem_gb, 4.5);
        assert_eq!(c.work, 25.0);
        assert_eq!(c.output_mb, 4.0);
    }
}
