//! # ffs-dag — the FluidFaaS function DAG programming model
//!
//! The paper's central programming-system contribution is the *FluidFaaS
//! function*: a serverless function whose internal DNN components are
//! registered in a DAG (the "FFS DAG"), so the invoker can split the
//! function into pipeline stages that run on separate MIG slices. This crate
//! provides:
//!
//! * [`graph::FfsDag`] — the DAG itself, built through a `reg`-style API
//!   mirroring the paper's Figure 7 (`model.reg(self, inputs...)`).
//! * [`dominator`] — dominator analysis that linearises a (possibly
//!   branched) DAG into *blocks*: the units between cut nodes, which are the
//!   only valid pipeline-stage boundaries. This is the "dominator-based
//!   method from ESG" the paper builds on (§5.2.2).
//! * [`partition`] — enumeration of all consecutive partitions of the block
//!   sequence (2^(b-1) of them), scored by the coefficient of variation of
//!   stage times (Equation 1) so the runtime can rank pipelines by balance.
//! * [`module`] — the `FFS.Module` / `FFaaS`-style builder facade of
//!   Figure 7.
//!
//! ```
//! use ffs_dag::{Component, FfsDag};
//!
//! let mut dag = FfsDag::new("depth_recognition");
//! let deblur = dag.register(Component::new("deblur", 2.0, 40.0, 6.0), &[]).unwrap();
//! let sr = dag.register(Component::new("super_res", 3.0, 60.0, 24.0), &[deblur]).unwrap();
//! let depth = dag.register(Component::new("depth", 2.5, 50.0, 1.0), &[sr]).unwrap();
//! dag.validate().unwrap();
//! assert_eq!(dag.len(), 3);
//! assert_eq!(dag.sinks(), vec![depth]);
//! ```

pub mod dominator;
pub mod export;
pub mod graph;
pub mod module;
pub mod partition;

pub use dominator::{linear_blocks, DominatorInfo};
pub use export::{partition_to_dot, to_dot};
pub use graph::{Component, DagError, FfsDag, NodeId};
pub use module::{FfsFunctionBuilder, FfsModule, Mode};
pub use partition::{
    enumerate_partitions, rank_partitions, try_enumerate_partitions, try_rank_partitions,
    PartitionError, PipelinePartition, RankedPartition,
};
