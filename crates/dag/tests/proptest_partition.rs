//! Property tests of DAG partitioning over randomly generated DAGs.

use proptest::prelude::*;

use ffs_dag::{enumerate_partitions, linear_blocks, rank_partitions, Component, FfsDag, NodeId};

/// Builds a random DAG: each node after the first takes 1..=2 random
/// earlier nodes as inputs (always including the immediately preceding
/// node with probability, keeping it connected).
fn random_dag(n: usize, edges: &[usize]) -> FfsDag {
    let mut dag = FfsDag::new("random");
    let mut ids: Vec<NodeId> = Vec::new();
    for i in 0..n {
        let inputs: Vec<NodeId> = if i == 0 {
            vec![]
        } else {
            let mut ins = vec![ids[i - 1]];
            let extra = edges[i % edges.len()] % i;
            if extra != i - 1 && !ins.contains(&ids[extra]) {
                ins.push(ids[extra]);
            }
            ins
        };
        ids.push(
            dag.register(
                Component::new(format!("n{i}"), 1.0 + i as f64, 10.0 + i as f64, 1.0),
                &inputs,
            )
            .unwrap(),
        );
    }
    dag
}

proptest! {
    /// Blocks partition the node set, preserve topological order, and all
    /// enumerated partitions cover every node exactly once.
    #[test]
    fn blocks_and_partitions_are_sound(
        n in 1usize..10,
        edges in proptest::collection::vec(0usize..10, 10),
    ) {
        let dag = random_dag(n, &edges);
        dag.validate().unwrap();
        let blocks = linear_blocks(&dag);
        let flat: Vec<NodeId> = blocks.iter().flatten().copied().collect();
        prop_assert_eq!(flat.len(), n, "blocks cover all nodes");
        // Edges never go backward across blocks.
        let block_of = |v: NodeId| blocks.iter().position(|b| b.contains(&v)).unwrap();
        for (from, to) in dag.edges() {
            prop_assert!(block_of(from) <= block_of(to));
        }
        let parts = enumerate_partitions(&blocks);
        prop_assert_eq!(parts.len(), 1usize << (blocks.len() - 1));
        for p in &parts {
            let covered: usize = p.stages().iter().map(Vec::len).sum();
            prop_assert_eq!(covered, n);
            // Stage memory sums to the DAG total.
            let mem: f64 = p.stage_mem_gb(&dag).iter().sum();
            prop_assert!((mem - dag.total_mem_gb()).abs() < 1e-9);
        }
    }

    /// Ranking is sorted by CV and always starts with a CV-0 single-stage
    /// partition.
    #[test]
    fn ranking_sorted_and_monolithic_first(
        n in 1usize..8,
        edges in proptest::collection::vec(0usize..10, 10),
        costs in proptest::collection::vec(1.0f64..100.0, 10),
    ) {
        let dag = random_dag(n, &edges);
        let blocks = linear_blocks(&dag);
        let ranked = rank_partitions(&blocks, |v| costs[v.index() % costs.len()], usize::MAX);
        prop_assert!(ranked[0].partition.is_monolithic());
        prop_assert_eq!(ranked[0].cv, 0.0);
        for w in ranked.windows(2) {
            prop_assert!(w[0].cv <= w[1].cv + 1e-12);
        }
    }

    /// Boundary transfers are non-negative and bounded by the sum of all
    /// component outputs.
    #[test]
    fn transfers_bounded(
        n in 2usize..8,
        edges in proptest::collection::vec(0usize..10, 10),
    ) {
        let dag = random_dag(n, &edges);
        let blocks = linear_blocks(&dag);
        let total_out: f64 = dag.nodes().map(|v| dag.component(v).output_mb).sum();
        for p in enumerate_partitions(&blocks) {
            for t in p.boundary_transfers_mb(&dag) {
                prop_assert!(t >= 0.0);
                prop_assert!(t <= total_out + 1e-9);
            }
        }
    }
}
