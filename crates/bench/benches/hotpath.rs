//! Microbenchmarks of the simulation hot path: the timer-wheel scheduler
//! against the binary heap it replaced, batch slot drain against the
//! per-event loop it replaced, kind-grouped dispatch against per-event
//! dispatch, SoA column scans against record scans, the incremental
//! routing index against the full admission scan, the incremental
//! plan-cache signature against recomputing it from the free-slice list,
//! and an end-to-end run that exercises every hot-path change at once.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BinaryHeap;
use std::hint::black_box;

use ffs_mig::{Fleet, GpuId, NodeId, SliceId, SliceProfile};
use ffs_pipeline::plan::StagePlan;
use ffs_pipeline::{DeploymentPlan, InstanceEstimate};
use ffs_profile::{App, FunctionProfile, PerfModel, Variant};
use ffs_sim::{run_until, run_until_stepwise, Scheduler, SimTime, World};
use ffs_trace::{AzureTraceConfig, WorkloadClass};
use fluidfaas::instance::{Instance, Phase, StageTimings};
use fluidfaas::plancache::{slice_signature, PlanCache};
use fluidfaas::platform::events::InstanceId;
use fluidfaas::platform::runner::run_platform;
use fluidfaas::platform::slab::InstanceSlab;
use fluidfaas::{FfsConfig, FluidFaaSSystem};

// ---------------------------------------------------------------------
// Wheel vs heap push/pop
// ---------------------------------------------------------------------

/// A deterministic xorshift stream.
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// The real event mix: a standing population of pending events, each pop
/// scheduling a short-horizon follow-up (stage completions, handoffs,
/// ticks are all `now + a-few-ms`). The heap pays `O(log pending)` per
/// op here; the wheel pays `O(1)`.
const PENDING: usize = 1_000;
const CHURN_OPS: usize = 50_000;
const SEED: u64 = 0x2545_f491_4f6c_dd1d;

/// Delta for the follow-up push: 1 µs ..= ~1 s.
fn delta(rng: &mut u64) -> u64 {
    1 + xorshift(rng) % 1_000_000
}

struct Churn {
    remaining: usize,
    rng: u64,
}

impl World for Churn {
    type Event = u32;
    fn handle(&mut self, _t: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let d = delta(&mut self.rng);
            sched.after(ffs_sim::SimDuration::from_micros(d), ev);
        }
    }
}

/// The pre-wheel scheduler: a `(time, seq)`-ordered binary heap.
#[derive(PartialEq, Eq)]
struct HeapEntry {
    at: u64,
    seq: u64,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn bench_scheduler_push_pop(c: &mut Criterion) {
    // Both sides seed the same standing population and consume the same
    // delta stream, so they do identical logical work.
    let seeds: Vec<u64> = {
        let mut x = SEED;
        (0..PENDING).map(|_| xorshift(&mut x) % 1_000_000).collect()
    };
    let mut g = c.benchmark_group("scheduler_steady_churn_1k_pending");
    g.bench_function("timer_wheel", |b| {
        b.iter(|| {
            let mut w = Churn {
                remaining: CHURN_OPS,
                rng: SEED,
            };
            let mut s: Scheduler<u32> = Scheduler::new();
            for (i, &t) in seeds.iter().enumerate() {
                s.at(SimTime::from_micros(t), i as u32);
            }
            run_until(&mut w, &mut s, SimTime::MAX);
            black_box(s.now())
        })
    });
    g.bench_function("binary_heap", |b| {
        b.iter(|| {
            let mut heap = BinaryHeap::with_capacity(PENDING + 1);
            let mut seq = 0u64;
            for &t in &seeds {
                heap.push(HeapEntry { at: t, seq });
                seq += 1;
            }
            let mut rng = SEED;
            let mut remaining = CHURN_OPS;
            let mut last = 0;
            while let Some(e) = heap.pop() {
                last = e.at;
                if remaining > 0 {
                    remaining -= 1;
                    heap.push(HeapEntry {
                        at: e.at + delta(&mut rng),
                        seq,
                    });
                    seq += 1;
                }
            }
            black_box(last)
        })
    });
    g.finish();
}

// ---------------------------------------------------------------------
// Batch slot drain vs per-event drain
// ---------------------------------------------------------------------

/// Follow-up deltas quantized to a 1 ms grid with 128 distinct values:
/// a standing population of 1k events collapses onto ~128 future slots,
/// so L0 slots hold multi-event batches — the shape the batched loop is
/// built for (simultaneous arrivals, same-tick completions).
fn bursty_delta(rng: &mut u64) -> u64 {
    (1 + xorshift(rng) % 128) * 1_000
}

struct BurstChurn {
    remaining: usize,
    rng: u64,
}

impl World for BurstChurn {
    type Event = u32;
    fn handle(&mut self, _t: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let d = bursty_delta(&mut self.rng);
            sched.after(ffs_sim::SimDuration::from_micros(d), ev);
        }
    }
}

/// The batched drive loop (`run_until`: one clock update, one deadline
/// check, one obs flush per same-timestamp batch) against the per-event
/// loop it replaced (`run_until_stepwise`). Identical programs, identical
/// delivery order — the property tests pin that — so the delta is pure
/// loop overhead.
fn bench_batch_drain(c: &mut Criterion) {
    // Seeds on the same 1 ms grid as the follow-up deltas, so every event
    // the program ever schedules shares a timestamp with ~7 others.
    let seeds: Vec<u64> = {
        let mut x = SEED;
        (0..PENDING)
            .map(|_| (xorshift(&mut x) % 128) * 1_000)
            .collect()
    };
    let mut g = c.benchmark_group("drain_bursty_1k_pending");
    g.bench_function("batched", |b| {
        b.iter(|| {
            let mut w = BurstChurn {
                remaining: CHURN_OPS,
                rng: SEED,
            };
            let mut s: Scheduler<u32> = Scheduler::new();
            for (i, &t) in seeds.iter().enumerate() {
                s.at(SimTime::from_micros(t), i as u32);
            }
            run_until(&mut w, &mut s, SimTime::MAX);
            black_box(s.now())
        })
    });
    g.bench_function("per_event", |b| {
        b.iter(|| {
            let mut w = BurstChurn {
                remaining: CHURN_OPS,
                rng: SEED,
            };
            let mut s: Scheduler<u32> = Scheduler::new();
            for (i, &t) in seeds.iter().enumerate() {
                s.at(SimTime::from_micros(t), i as u32);
            }
            run_until_stepwise(&mut w, &mut s, SimTime::MAX);
            black_box(s.now())
        })
    });
    g.finish();
}

// ---------------------------------------------------------------------
// Kind-grouped dispatch vs per-event dispatch
// ---------------------------------------------------------------------

/// The handler work both dispatch arms share: a tiny per-kind body plus
/// the bursty follow-up push — the engine's dispatch shape without the
/// platform state behind it.
struct KindChurn {
    remaining: usize,
    rng: u64,
    acc: u64,
}

impl KindChurn {
    #[inline]
    fn push(&mut self, ev: u32, sched: &mut Scheduler<u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let d = bursty_delta(&mut self.rng);
            sched.after(ffs_sim::SimDuration::from_micros(d), ev);
        }
    }

    /// Per-event dispatch: one match per event.
    #[inline]
    fn step_one(&mut self, ev: u32, sched: &mut Scheduler<u32>) {
        match ev % 4 {
            0 => self.acc = self.acc.wrapping_add(1),
            1 => self.acc = self.acc.wrapping_mul(3),
            2 => self.acc ^= u64::from(ev),
            _ => self.acc = self.acc.rotate_left(7),
        }
        self.push(ev, sched);
    }
}

/// Kind-grouped: `kind_of` splits batches into homogeneous runs and
/// `handle_run` matches the kind once, then runs a kind-specialized
/// inner loop.
struct GroupedChurn(KindChurn);

impl World for GroupedChurn {
    type Event = u32;

    fn handle(&mut self, _t: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        self.0.step_one(ev, sched);
    }

    fn kind_of(&self, ev: &u32) -> u16 {
        (ev % 4) as u16
    }

    fn handle_run(
        &mut self,
        _t: SimTime,
        kind: u16,
        run: std::vec::Drain<'_, u32>,
        sched: &mut Scheduler<u32>,
    ) {
        let w = &mut self.0;
        match kind {
            0 => {
                for ev in run {
                    w.acc = w.acc.wrapping_add(1);
                    w.push(ev, sched);
                }
            }
            1 => {
                for ev in run {
                    w.acc = w.acc.wrapping_mul(3);
                    w.push(ev, sched);
                }
            }
            2 => {
                for ev in run {
                    w.acc ^= u64::from(ev);
                    w.push(ev, sched);
                }
            }
            _ => {
                for ev in run {
                    w.acc = w.acc.rotate_left(7);
                    w.push(ev, sched);
                }
            }
        }
    }
}

/// Per-event: constant `kind_of` (the default), so `handle_run`'s default
/// body calls `handle` — and its match — once per event.
struct PerEventChurn(KindChurn);

impl World for PerEventChurn {
    type Event = u32;
    fn handle(&mut self, _t: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        self.0.step_one(ev, sched);
    }
}

/// Kind-grouped dispatch against per-event dispatch, inside the same
/// batched drive loop. The programs are identical; the delta is the
/// amortization — one kind match and one dispatch span per run instead of
/// per event.
fn bench_grouped_dispatch(c: &mut Criterion) {
    let seeds: Vec<u64> = {
        let mut x = SEED;
        (0..PENDING)
            .map(|_| (xorshift(&mut x) % 128) * 1_000)
            .collect()
    };
    let churn = || KindChurn {
        remaining: CHURN_OPS,
        rng: SEED,
        acc: 0,
    };
    let load = |s: &mut Scheduler<u32>| {
        for (i, &t) in seeds.iter().enumerate() {
            s.at(SimTime::from_micros(t), i as u32);
        }
    };
    let mut g = c.benchmark_group("dispatch_bursty_1k_pending");
    g.bench_function("kind_grouped", |b| {
        b.iter(|| {
            let mut w = GroupedChurn(churn());
            let mut s: Scheduler<u32> = Scheduler::new();
            load(&mut s);
            run_until(&mut w, &mut s, SimTime::MAX);
            black_box(w.0.acc)
        })
    });
    g.bench_function("per_event", |b| {
        b.iter(|| {
            let mut w = PerEventChurn(churn());
            let mut s: Scheduler<u32> = Scheduler::new();
            load(&mut s);
            run_until(&mut w, &mut s, SimTime::MAX);
            black_box(w.0.acc)
        })
    });
    g.finish();
}

// ---------------------------------------------------------------------
// SoA column scan vs slab record scan
// ---------------------------------------------------------------------

/// A slab of `n` ready single-stage instances with varied latency
/// estimates and occupancies — the shape of the routing scan.
fn scan_slab(n: u64) -> InstanceSlab {
    let mut slab = InstanceSlab::new();
    let mut rng = SEED;
    for id in 0..n {
        let nodes = vec![ffs_dag::NodeId(0)];
        let plan = DeploymentPlan {
            partition: ffs_dag::PipelinePartition::new(vec![nodes.clone()]),
            stages: vec![StagePlan {
                nodes,
                slice: SliceId::new(GpuId((id / 7) as u16), (id % 7) as u8),
                profile: SliceProfile::G1_10,
                mem_gb: 1.0,
            }],
            cv: 0.0,
        };
        let jitter = (xorshift(&mut rng) % 64) as f64;
        let inst = Instance::new(
            InstanceId(id),
            0,
            plan,
            InstanceEstimate {
                latency_ms: 20.0 + jitter,
                bottleneck_ms: 10.0,
                throughput_rps: 100.0,
            },
            StageTimings::zero(1),
            NodeId(0),
            SimTime::ZERO,
            SimTime::ZERO,
        );
        slab.insert(InstanceId(id), inst, 100.0);
        slab.set_phase(&InstanceId(id), Phase::Ready);
        // A third of the fleet sits at its admission bound.
        if id % 3 == 0 {
            for _ in 0..10 {
                slab.note_admitted(InstanceId(id));
                slab.get_mut(&InstanceId(id)).unwrap().stage_queues[0].push_back(0);
            }
        }
    }
    slab
}

/// The lowest-latency routing scan (admission filter + latency argmin),
/// on the SoA hot columns against the instance records they mirror. The
/// record path drags each instance's plans, queues and timing tables
/// through the cache to read three scalars.
fn bench_soa_scan(c: &mut Criterion) {
    const FLEET: u64 = 256;
    let slab = scan_slab(FLEET);
    let slo_ms = 100.0;
    let mut g = c.benchmark_group("routing_scan_256_instances");
    g.bench_function("soa_columns", |b| {
        b.iter(|| {
            let mut best: Option<(InstanceId, f64)> = None;
            for id in (0..FLEET).map(InstanceId) {
                if !slab.has_admission_capacity(id) {
                    continue;
                }
                let lat = slab.latency_ms_of(id);
                if best.is_none_or(|(_, b)| lat < b) {
                    best = Some((id, lat));
                }
            }
            black_box(best)
        })
    });
    g.bench_function("slab_records", |b| {
        b.iter(|| {
            let mut best: Option<(InstanceId, f64)> = None;
            for inst in slab.values() {
                if !inst.has_capacity(slo_ms) {
                    continue;
                }
                let lat = inst.est.latency_ms;
                if best.is_none_or(|(_, b)| lat < b) {
                    best = Some((inst.id, lat));
                }
            }
            black_box(best)
        })
    });
    g.finish();
}

// ---------------------------------------------------------------------
// Incremental routing index vs full admission scan
// ---------------------------------------------------------------------

/// The routing lookup on the maintained per-function candidate index
/// against the full filter-scan it replaced. `scan_slab` parks a third of
/// the fleet at its admission bound, so the index holds ~2/3 of the
/// instances; the full scan still reads the phase/occupancy/cap columns
/// of all of them.
fn bench_route_index(c: &mut Criterion) {
    const FLEET: u64 = 256;
    let slab = scan_slab(FLEET);
    let mut g = c.benchmark_group("route_lookup_256_instances");
    g.bench_function("incremental_index", |b| {
        b.iter(|| {
            let mut best: Option<(u32, f64)> = None;
            for &idx in slab.admissible_of(0) {
                let lat = slab.latency_ms_of(InstanceId(u64::from(idx)));
                if best.is_none_or(|(_, b)| lat < b) {
                    best = Some((idx, lat));
                }
            }
            black_box(best)
        })
    });
    g.bench_function("full_scan", |b| {
        b.iter(|| {
            let mut best: Option<(InstanceId, f64)> = None;
            for id in (0..FLEET).map(InstanceId) {
                if !slab.has_admission_capacity(id) {
                    continue;
                }
                let lat = slab.latency_ms_of(id);
                if best.is_none_or(|(_, b)| lat < b) {
                    best = Some((id, lat));
                }
            }
            black_box(best)
        })
    });
    g.finish();
}

// ---------------------------------------------------------------------
// Plan-cache hit: incremental signature vs recomputed signature
// ---------------------------------------------------------------------

fn bench_plan_cache_hit(c: &mut Criterion) {
    let fleet = Fleet::paper_default();
    let node = NodeId(0);
    let profile = FunctionProfile::build(
        App::ImageClassification,
        Variant::Small,
        &PerfModel::default(),
    );
    let mut cache = PlanCache::new();
    // Warm the single entry both variants will hit.
    cache.plan(7, node, true, &profile, &fleet.free_slices(Some(node)));

    let mut g = c.benchmark_group("plan_cache_hit");
    g.bench_function("incremental_signature", |b| {
        b.iter(|| {
            let sig = fleet.node_signature(node);
            black_box(cache.plan_with_signature(7, node, true, &profile, sig, || {
                fleet.free_slices(Some(node))
            }))
        })
    });
    g.bench_function("recomputed_signature", |b| {
        b.iter(|| {
            // The pre-incremental hot path: materialize the free-slice
            // list and hash it on every lookup.
            let free = fleet.free_slices(Some(node));
            let sig = slice_signature(&free);
            black_box(cache.plan_with_signature(7, node, true, &profile, sig, || free.clone()))
        })
    });
    g.finish();
}

// ---------------------------------------------------------------------
// End-to-end run (all hot-path changes at once)
// ---------------------------------------------------------------------

fn bench_end_to_end(c: &mut Criterion) {
    let trace = AzureTraceConfig::for_workload(WorkloadClass::Light, 60.0, 7).generate();
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("fluidfaas_light_60s", |b| {
        b.iter(|| {
            let cfg = FfsConfig::paper_default(WorkloadClass::Light);
            let mut sys = FluidFaaSSystem::new(cfg, &trace);
            let out = run_platform(&mut sys, &trace);
            black_box(out.log.len())
        })
    });
    g.finish();
}

criterion_group!(
    hotpath,
    bench_scheduler_push_pop,
    bench_batch_drain,
    bench_grouped_dispatch,
    bench_soa_scan,
    bench_route_index,
    bench_plan_cache_hit,
    bench_end_to_end
);
criterion_main!(hotpath);
