//! Microbenchmarks of the simulation hot path: the timer-wheel scheduler
//! against the binary heap it replaced, the incremental plan-cache
//! signature against recomputing it from the free-slice list, and an
//! end-to-end run that exercises every hot-path change at once.

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BinaryHeap;
use std::hint::black_box;

use ffs_mig::{Fleet, NodeId};
use ffs_profile::{App, FunctionProfile, PerfModel, Variant};
use ffs_sim::{run_until, Scheduler, SimTime, World};
use ffs_trace::{AzureTraceConfig, WorkloadClass};
use fluidfaas::plancache::{slice_signature, PlanCache};
use fluidfaas::platform::runner::run_platform;
use fluidfaas::{FfsConfig, FluidFaaSSystem};

// ---------------------------------------------------------------------
// Wheel vs heap push/pop
// ---------------------------------------------------------------------

/// A deterministic xorshift stream.
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// The real event mix: a standing population of pending events, each pop
/// scheduling a short-horizon follow-up (stage completions, handoffs,
/// ticks are all `now + a-few-ms`). The heap pays `O(log pending)` per
/// op here; the wheel pays `O(1)`.
const PENDING: usize = 1_000;
const CHURN_OPS: usize = 50_000;
const SEED: u64 = 0x2545_f491_4f6c_dd1d;

/// Delta for the follow-up push: 1 µs ..= ~1 s.
fn delta(rng: &mut u64) -> u64 {
    1 + xorshift(rng) % 1_000_000
}

struct Churn {
    remaining: usize,
    rng: u64,
}

impl World for Churn {
    type Event = u32;
    fn handle(&mut self, _t: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let d = delta(&mut self.rng);
            sched.after(ffs_sim::SimDuration::from_micros(d), ev);
        }
    }
}

/// The pre-wheel scheduler: a `(time, seq)`-ordered binary heap.
#[derive(PartialEq, Eq)]
struct HeapEntry {
    at: u64,
    seq: u64,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

fn bench_scheduler_push_pop(c: &mut Criterion) {
    // Both sides seed the same standing population and consume the same
    // delta stream, so they do identical logical work.
    let seeds: Vec<u64> = {
        let mut x = SEED;
        (0..PENDING).map(|_| xorshift(&mut x) % 1_000_000).collect()
    };
    let mut g = c.benchmark_group("scheduler_steady_churn_1k_pending");
    g.bench_function("timer_wheel", |b| {
        b.iter(|| {
            let mut w = Churn {
                remaining: CHURN_OPS,
                rng: SEED,
            };
            let mut s: Scheduler<u32> = Scheduler::new();
            for (i, &t) in seeds.iter().enumerate() {
                s.at(SimTime::from_micros(t), i as u32);
            }
            run_until(&mut w, &mut s, SimTime::MAX);
            black_box(s.now())
        })
    });
    g.bench_function("binary_heap", |b| {
        b.iter(|| {
            let mut heap = BinaryHeap::with_capacity(PENDING + 1);
            let mut seq = 0u64;
            for &t in &seeds {
                heap.push(HeapEntry { at: t, seq });
                seq += 1;
            }
            let mut rng = SEED;
            let mut remaining = CHURN_OPS;
            let mut last = 0;
            while let Some(e) = heap.pop() {
                last = e.at;
                if remaining > 0 {
                    remaining -= 1;
                    heap.push(HeapEntry {
                        at: e.at + delta(&mut rng),
                        seq,
                    });
                    seq += 1;
                }
            }
            black_box(last)
        })
    });
    g.finish();
}

// ---------------------------------------------------------------------
// Plan-cache hit: incremental signature vs recomputed signature
// ---------------------------------------------------------------------

fn bench_plan_cache_hit(c: &mut Criterion) {
    let fleet = Fleet::paper_default();
    let node = NodeId(0);
    let profile = FunctionProfile::build(
        App::ImageClassification,
        Variant::Small,
        &PerfModel::default(),
    );
    let mut cache = PlanCache::new();
    // Warm the single entry both variants will hit.
    cache.plan(7, node, true, &profile, &fleet.free_slices(Some(node)));

    let mut g = c.benchmark_group("plan_cache_hit");
    g.bench_function("incremental_signature", |b| {
        b.iter(|| {
            let sig = fleet.node_signature(node);
            black_box(cache.plan_with_signature(7, node, true, &profile, sig, || {
                fleet.free_slices(Some(node))
            }))
        })
    });
    g.bench_function("recomputed_signature", |b| {
        b.iter(|| {
            // The pre-incremental hot path: materialize the free-slice
            // list and hash it on every lookup.
            let free = fleet.free_slices(Some(node));
            let sig = slice_signature(&free);
            black_box(cache.plan_with_signature(7, node, true, &profile, sig, || free.clone()))
        })
    });
    g.finish();
}

// ---------------------------------------------------------------------
// End-to-end run (all hot-path changes at once)
// ---------------------------------------------------------------------

fn bench_end_to_end(c: &mut Criterion) {
    let trace = AzureTraceConfig::for_workload(WorkloadClass::Light, 60.0, 7).generate();
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("fluidfaas_light_60s", |b| {
        b.iter(|| {
            let cfg = FfsConfig::paper_default(WorkloadClass::Light);
            let mut sys = FluidFaaSSystem::new(cfg, &trace);
            let out = run_platform(&mut sys, &trace);
            black_box(out.log.len())
        })
    });
    g.finish();
}

criterion_group!(
    hotpath,
    bench_scheduler_push_pop,
    bench_plan_cache_hit,
    bench_end_to_end
);
criterion_main!(hotpath);
