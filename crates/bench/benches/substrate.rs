//! Microbenchmarks of the substrates: event engine, placement enumeration,
//! DAG partitioning, the pipeline planner, and trace generation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ffs_dag::{enumerate_partitions, linear_blocks};
use ffs_mig::Fleet;
use ffs_pipeline::plan_deployment;
use ffs_profile::{App, FunctionProfile, PerfModel, Variant};
use ffs_sim::{run_until, Scheduler, SimDuration, SimTime, World};
use ffs_trace::{AzureTraceConfig, WorkloadClass};

struct PingPong {
    remaining: u64,
}

impl World for PingPong {
    type Event = ();
    fn handle(&mut self, _t: SimTime, _ev: (), sched: &mut Scheduler<()>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            sched.after(SimDuration::from_micros(1), ());
        }
    }
}

fn bench_event_engine(c: &mut Criterion) {
    c.bench_function("sim_engine_100k_events", |b| {
        b.iter(|| {
            let mut w = PingPong { remaining: 100_000 };
            let mut s = Scheduler::new();
            s.at(SimTime::ZERO, ());
            run_until(&mut w, &mut s, SimTime::MAX);
            black_box(s.executed())
        })
    });
}

fn bench_placement_enumeration(c: &mut Criterion) {
    c.bench_function("mig_enumerate_maximal_layouts", |b| {
        b.iter(|| black_box(ffs_mig::placement::enumerate_maximal_layouts().len()))
    });
}

fn bench_dag_partitioning(c: &mut Criterion) {
    let dag = App::ExpandedImageClassification.build_dag(Variant::Medium);
    c.bench_function("dag_linear_blocks_and_partitions", |b| {
        b.iter(|| {
            let blocks = linear_blocks(black_box(&dag));
            black_box(enumerate_partitions(&blocks).len())
        })
    });
}

fn bench_cv_ranking(c: &mut Criterion) {
    let profile = FunctionProfile::build(
        App::ExpandedImageClassification,
        Variant::Medium,
        &PerfModel::default(),
    );
    c.bench_function("profile_rank_partitions", |b| {
        b.iter(|| black_box(profile.ranked_partitions().len()))
    });
}

fn bench_planner(c: &mut Criterion) {
    let profile = FunctionProfile::build(
        App::ImageClassification,
        Variant::Large,
        &PerfModel::default(),
    );
    let fleet = Fleet::paper_default();
    let free = fleet.free_slices(None);
    c.bench_function("pipeline_plan_deployment", |b| {
        b.iter(|| black_box(plan_deployment(&profile, &free)))
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("trace_generate_300s_medium", |b| {
        b.iter(|| {
            let cfg = AzureTraceConfig::for_workload(WorkloadClass::Medium, 300.0, 42);
            black_box(cfg.generate().len())
        })
    });
}

fn bench_profile_build(c: &mut Criterion) {
    c.bench_function("profile_build_paper_suite", |b| {
        b.iter(|| black_box(FunctionProfile::paper_suite(&PerfModel::default()).len()))
    });
}

criterion_group!(
    substrate,
    bench_event_engine,
    bench_placement_enumeration,
    bench_dag_partitioning,
    bench_cv_ranking,
    bench_planner,
    bench_trace_generation,
    bench_profile_build,
);
criterion_main!(substrate);
