//! One Criterion benchmark per paper table / figure.
//!
//! Each benchmark executes the same experiment code as the corresponding
//! `exp_*` binary on a shortened trace, so `cargo bench` both regenerates
//! the artifacts and tracks the cost of producing them.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Shortened trace length for benchmarking (seconds).
const BENCH_SECS: f64 = 30.0;
const SEED: u64 = 1;

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_mig_profiles", |b| {
        b.iter(|| black_box(ffs_experiments::table2::rows()))
    });
}

fn bench_table5(c: &mut Criterion) {
    c.bench_function("table5_min_slices", |b| {
        b.iter(|| black_box(ffs_experiments::table5::rows()))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_esg_overallocation");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| black_box(ffs_experiments::fig3::run(BENCH_SECS, SEED)))
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_occupied_vs_active");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| black_box(ffs_experiments::fig5::run(BENCH_SECS, SEED)))
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_slo_hit_rates");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| black_box(ffs_experiments::fig9::run(BENCH_SECS, SEED)))
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_throughput");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| black_box(ffs_experiments::fig10::run(BENCH_SECS, SEED)))
    });
    g.finish();
}

fn bench_fig11_13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_13_latency_cdfs");
    g.sample_size(10);
    for wl in ffs_trace::WorkloadClass::ALL {
        g.bench_function(wl.name(), |b| {
            b.iter(|| black_box(ffs_experiments::latency::run(wl, BENCH_SECS, SEED)))
        });
    }
    g.finish();
}

fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14_breakdown");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| black_box(ffs_experiments::fig14::run(BENCH_SECS, SEED)))
    });
    g.finish();
}

fn bench_fig15(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_partitions");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| black_box(ffs_experiments::fig15::run(BENCH_SECS, SEED)))
    });
    g.finish();
}

fn bench_fig16(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_utilization");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| black_box(ffs_experiments::fig16::run(BENCH_SECS, SEED)))
    });
    g.finish();
}

fn bench_table6(c: &mut Criterion) {
    let mut g = c.benchmark_group("table6_resource_cost");
    g.sample_size(10);
    g.bench_function("run", |b| {
        b.iter(|| black_box(ffs_experiments::table6::run(BENCH_SECS, SEED)))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_table2,
    bench_table5,
    bench_fig3,
    bench_fig5,
    bench_fig9,
    bench_fig10,
    bench_fig11_13,
    bench_fig14,
    bench_fig15,
    bench_fig16,
    bench_table6,
);
criterion_main!(figures);
