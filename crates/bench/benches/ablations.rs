//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! CV-ranked partition selection, eviction-based time sharing, pipeline
//! migration, and transfer-cost sensitivity.
//!
//! Each arm reports both its wall-clock (Criterion) and, through the
//! experiment module, its SLO impact (see `exp_ablation`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ffs_experiments::runner::{run_system, SystemKind};
use ffs_mig::{Fleet, PartitionLayout, PartitionScheme};
use ffs_pipeline::{plan_deployment, plan_deployment_unranked};
use ffs_profile::{App, FunctionProfile, PerfModel, Variant};
use ffs_trace::{AzureTraceConfig, WorkloadClass};
use fluidfaas::FfsConfig;

const BENCH_SECS: f64 = 30.0;

fn bench_cv_vs_unranked_planning(c: &mut Criterion) {
    let profile = FunctionProfile::build(
        App::ImageClassification,
        Variant::Medium,
        &PerfModel::default(),
    );
    let fleet = Fleet::new(
        1,
        2,
        &PartitionScheme::Uniform(PartitionLayout::preset_seven_small()),
    )
    .unwrap();
    let free = fleet.free_slices(None);
    let mut g = c.benchmark_group("ablation_cv_ranking");
    g.bench_function("cv_ranked", |b| {
        b.iter(|| black_box(plan_deployment(&profile, &free)))
    });
    g.bench_function("unranked_first_fit", |b| {
        b.iter(|| black_box(plan_deployment_unranked(&profile, &free)))
    });
    g.finish();
}

fn run_arm(mutate: impl Fn(&mut FfsConfig)) -> f64 {
    let mut cfg = FfsConfig::paper_default(WorkloadClass::Heavy);
    mutate(&mut cfg);
    let trace = AzureTraceConfig::for_workload(WorkloadClass::Heavy, BENCH_SECS, 1).generate();
    let out = run_system(SystemKind::FluidFaaS, cfg, &trace);
    out.log.slo_hit_rate()
}

fn bench_feature_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_features_heavy");
    g.sample_size(10);
    g.bench_function("full", |b| b.iter(|| black_box(run_arm(|_| {}))));
    g.bench_function("no_time_sharing", |b| {
        b.iter(|| black_box(run_arm(|cfg| cfg.enable_time_sharing = false)))
    });
    g.bench_function("no_migration", |b| {
        b.iter(|| black_box(run_arm(|cfg| cfg.enable_migration = false)))
    });
    g.bench_function("no_cv_ranking", |b| {
        b.iter(|| black_box(run_arm(|cfg| cfg.enable_cv_ranking = false)))
    });
    g.finish();
}

fn bench_transfer_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_transfer_cost");
    g.sample_size(10);
    for mult in [1.0_f64, 2.0, 4.0, 8.0] {
        g.bench_function(format!("x{mult:.0}"), |b| {
            b.iter(|| {
                black_box(run_arm(|cfg| {
                    cfg.perf.boundary_base_ms *= mult;
                    cfg.perf.shm_gbps /= mult;
                }))
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_cv_vs_unranked_planning,
    bench_feature_ablations,
    bench_transfer_sensitivity,
);
criterion_main!(ablations);
