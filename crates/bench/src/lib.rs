//! # ffs-bench — Criterion benchmarks for the FluidFaaS reproduction
//!
//! Three bench suites:
//!
//! * `figures` — one benchmark per paper table/figure, running the same
//!   experiment code as the `exp_*` binaries on shortened traces.
//! * `substrate` — microbenchmarks of the building blocks (event loop,
//!   partition enumeration, planner, trace generation).
//! * `ablations` — design-choice ablations (CV ranking on/off, time sharing
//!   on/off, migration on/off, transfer-cost sensitivity).
//!
//! Run with `cargo bench --workspace`.
