//! Property tests for the launch-plan cache: under any sequence of slice
//! allocations and releases — with the system's invalidate-on-mutation
//! discipline — a cached plan is indistinguishable from a fresh run of the
//! planner.

use ffs_mig::{Fleet, NodeId};
use ffs_pipeline::{plan_deployment, plan_deployment_unranked};
use ffs_profile::{App, FunctionProfile, PerfModel, Variant};
use fluidfaas::plancache::PlanCache;
use proptest::prelude::*;

fn test_profiles() -> Vec<FunctionProfile> {
    let perf = PerfModel::default();
    vec![
        FunctionProfile::build(App::ImageClassification, Variant::Large, &perf),
        FunctionProfile::build(App::ExpandedImageClassification, Variant::Medium, &perf),
        FunctionProfile::build(App::DepthRecognition, Variant::Small, &perf),
    ]
}

/// Applies one encoded mutation to the fleet (allocate a free slice or
/// release an allocated one) and returns whether anything changed.
fn apply_op(fleet: &mut Fleet, allocated: &mut Vec<ffs_mig::SliceId>, op: u8) -> bool {
    if op.is_multiple_of(2) {
        let free = fleet.free_slices(None);
        if free.is_empty() {
            return false;
        }
        let id = free[op as usize % free.len()].id;
        fleet.allocate(id).expect("free slice allocates");
        allocated.push(id);
    } else {
        if allocated.is_empty() {
            return false;
        }
        let id = allocated.remove(op as usize % allocated.len());
        fleet.release(id).expect("allocated slice releases");
    }
    true
}

proptest! {
    /// After every mutation (followed by the mandatory invalidate), the
    /// cache's answer — on the miss *and* on the subsequent hit — equals a
    /// fresh `plan_deployment`/`plan_deployment_unranked` call, for both
    /// ranking modes and the monolithic migration probe.
    #[test]
    fn cache_matches_fresh_planner(ops in proptest::collection::vec(0u8..=255u8, 1..24)) {
        let profiles = test_profiles();
        let mut fleet = Fleet::paper_default();
        let mut cache = PlanCache::new();
        let mut allocated = Vec::new();
        for &op in &ops {
            if apply_op(&mut fleet, &mut allocated, op) {
                // The system discipline: every alloc/free invalidates.
                cache.invalidate();
                prop_assert!(cache.is_empty());
            }
            let node = NodeId(op as u16 % 2);
            let free = fleet.free_slices(Some(node));
            for (f, profile) in profiles.iter().enumerate() {
                let fresh = plan_deployment(profile, &free);
                let miss = cache.plan(f, node, true, profile, &free);
                let hit = cache.plan(f, node, true, profile, &free);
                prop_assert_eq!(&miss, &fresh);
                prop_assert_eq!(&hit, &fresh);

                let fresh_unranked = plan_deployment_unranked(profile, &free);
                let unranked = cache.plan(f, node, false, profile, &free);
                prop_assert_eq!(&unranked, &fresh_unranked);

                let mono = cache.monolithic_possible(f, node, profile, &free);
                let fresh_mono = fresh
                    .as_ref()
                    .map(|p| p.is_monolithic())
                    .unwrap_or(false);
                prop_assert_eq!(mono, fresh_mono);
            }
        }
        // The loop exercised both sides of the cache.
        prop_assert!(cache.hits() > 0);
        prop_assert!(cache.misses() > 0);
    }

    /// Invalidation after a mutation is not optional: a stale entry keyed
    /// by an unchanged signature could survive a mutation that swaps
    /// *which* slices are free. The signature only tracks the multiset, so
    /// the cache must start empty after every invalidate.
    #[test]
    fn invalidate_always_empties(ops in proptest::collection::vec(0u8..=255u8, 1..16)) {
        let profiles = test_profiles();
        let mut fleet = Fleet::paper_default();
        let mut cache = PlanCache::new();
        let mut allocated = Vec::new();
        for &op in &ops {
            let node = NodeId(0);
            let free = fleet.free_slices(Some(node));
            let _ = cache.plan(0, node, true, &profiles[0], &free);
            prop_assert!(!cache.is_empty());
            apply_op(&mut fleet, &mut allocated, op);
            cache.invalidate();
            prop_assert!(cache.is_empty());
        }
    }
}

#[test]
fn hit_returns_identical_plan_without_replanning() {
    let profiles = test_profiles();
    let fleet = Fleet::paper_default();
    let mut cache = PlanCache::new();
    let node = NodeId(0);
    let free = fleet.free_slices(Some(node));
    let first = cache.plan(0, node, true, &profiles[0], &free);
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), 0);
    let second = cache.plan(0, node, true, &profiles[0], &free);
    assert_eq!(cache.misses(), 1);
    assert_eq!(cache.hits(), 1);
    assert_eq!(first, second);
    assert_eq!(first, plan_deployment(&profiles[0], &free));
}
