//! The per-tick arrival counter saturates instead of wrapping.
//!
//! A pathological trace could deliver more than `u32::MAX` arrivals for one
//! function between two scale ticks; the counter must clamp (keeping the
//! demand estimate a lower bound) rather than wrap to a tiny value, and the
//! event must be surfaced once through `ffs-obs`.

use ffs_trace::{AzureTraceConfig, WorkloadClass};
use fluidfaas::{EngineCore, FfsConfig};

#[test]
fn arrival_counter_saturates_and_reports_once() {
    let trace = AzureTraceConfig::for_workload(WorkloadClass::Light, 1.0, 7).generate();
    let cfg = FfsConfig::paper_default(WorkloadClass::Light);
    let mut core = EngineCore::try_new(cfg, &trace).expect("engine builds");

    let before = ffs_obs::arrival_saturations();
    core.arrivals_in_tick[0] = u32::MAX - 1;

    // Normal bump: one below the ceiling still increments.
    core.note_arrival(0);
    assert_eq!(core.arrivals_in_tick[0], u32::MAX);
    assert!(!core.arrivals_saturated);

    // Overflowing bump: clamps, flags, and counts exactly once.
    core.note_arrival(0);
    assert_eq!(core.arrivals_in_tick[0], u32::MAX, "counter must clamp");
    assert!(core.arrivals_saturated, "saturation flag must latch");
    assert_eq!(ffs_obs::arrival_saturations(), before + 1);

    // Further overflow in the same run stays silent (one-shot per run).
    core.note_arrival(0);
    assert_eq!(core.arrivals_in_tick[0], u32::MAX);
    assert_eq!(ffs_obs::arrival_saturations(), before + 1);
}
