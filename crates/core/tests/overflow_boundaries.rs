//! Table-driven boundary tests for the §5.3 overflow-to-shared rule.
//!
//! The decision is pure — [`overflow_decision`] over an [`ExclusiveView`]
//! summary — so the boundary cases are enumerable without running a
//! simulation: zero remaining slack, a replacement instance already
//! launching, and a function with no exclusive capacity at all.

#![allow(clippy::unwrap_used)]

use fluidfaas::platform::policy::{overflow_decision, ExclusiveView};

/// One boundary case: a fleet view, a slack budget, and the expected
/// routing decision.
struct Case {
    name: &'static str,
    view: ExclusiveView,
    slack_budget_ms: f64,
    overflow: bool,
}

fn view(
    ready: usize,
    launching: usize,
    occupancy: usize,
    bottleneck_ms: f64,
    latency_ms: f64,
) -> ExclusiveView {
    ExclusiveView {
        ready,
        launching,
        occupancy,
        best_bottleneck_ms: bottleneck_ms,
        best_latency_ms: latency_ms,
    }
}

#[test]
fn overflow_boundary_table() {
    let cases = [
        Case {
            // No exclusive instance exists and none is coming: the shared
            // pool is the only way to serve at all.
            name: "no-exclusive-capacity-ever",
            view: view(0, 0, 0, f64::INFINITY, f64::INFINITY),
            slack_budget_ms: 1_000.0,
            overflow: true,
        },
        Case {
            // Nothing ready yet, but a replacement is cold-starting: a
            // short wait beats paying an eviction-reload on the shared
            // slice.
            name: "replacement-launching-soon",
            view: view(0, 2, 0, f64::INFINITY, f64::INFINITY),
            slack_budget_ms: 1_000.0,
            overflow: false,
        },
        Case {
            // Zero remaining slack: the budget exactly covers the best
            // instance's latency, so any queueing wait at all overflows.
            name: "zero-remaining-slack-with-queue",
            view: view(1, 0, 3, 50.0, 200.0),
            slack_budget_ms: 200.0,
            overflow: true,
        },
        Case {
            // Zero remaining slack but also zero wait: an idle instance
            // still catches the request (wait 0 > slack 0 is false).
            name: "zero-remaining-slack-idle-fleet",
            view: view(1, 0, 0, 50.0, 200.0),
            slack_budget_ms: 200.0,
            overflow: false,
        },
        Case {
            // Negative slack (deadline closer than the best latency):
            // even an idle exclusive fleet can't make it, overflow and
            // hope the shared slice is faster than queueing.
            name: "negative-slack",
            view: view(1, 0, 0, 50.0, 200.0),
            slack_budget_ms: 100.0,
            overflow: true,
        },
        Case {
            // Exactly at the tipping point: wait == slack keeps the
            // request exclusive (strict inequality).
            name: "wait-equals-slack",
            view: view(2, 0, 4, 50.0, 100.0),
            // wait = 4 * 50 / 2 = 100; slack = 200 - 100 = 100.
            slack_budget_ms: 200.0,
            overflow: false,
        },
        Case {
            // One more queued request pushes the wait over the slack.
            name: "wait-just-over-slack",
            view: view(2, 0, 5, 50.0, 100.0),
            // wait = 5 * 50 / 2 = 125 > slack = 100.
            slack_budget_ms: 200.0,
            overflow: true,
        },
        Case {
            // Plenty of slack, light queue: stay exclusive.
            name: "comfortable-slack",
            view: view(2, 1, 1, 50.0, 100.0),
            slack_budget_ms: 10_000.0,
            overflow: false,
        },
    ];
    for c in &cases {
        assert_eq!(
            overflow_decision(&c.view, c.slack_budget_ms),
            c.overflow,
            "case {}",
            c.name
        );
    }
}

/// The launching-soon guard only applies while nothing is ready: once an
/// instance is up, launching counts are irrelevant to the wait estimate.
#[test]
fn launching_instances_do_not_mask_overload() {
    let overloaded = view(1, 4, 100, 50.0, 100.0);
    assert!(overflow_decision(&overloaded, 200.0));
}
