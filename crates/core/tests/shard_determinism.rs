//! The sharded engine's determinism contract: `RunOutput` is a pure
//! function of `(trace, config, seed)` and the cell partition — never of
//! the lane (worker-thread) count — and a 1-cell sharded run reproduces
//! `run_platform` byte-for-byte.
//!
//! Digests come from [`fluidfaas::run_output_digest`], which folds every
//! request record (floats as raw bit patterns), the cost report, and all
//! three utilization curves, so even sub-ulp divergence fails.

use ffs_trace::{
    partition_trace, AzureTraceConfig, Invocation, ScaleTraceConfig, Trace, WorkloadClass,
};
use fluidfaas::platform::run_platform;
use fluidfaas::{run_output_digest, run_sharded_fluid, FfsConfig, FluidFaaSSystem, ShardSpec};

/// A 1-cell sharded run is the solo engine with extra steps — the epoch
/// loop must telescope into one `run_until` and reproduce `run_platform`
/// exactly.
#[test]
fn one_cell_run_matches_run_platform() {
    for workload in [WorkloadClass::Light, WorkloadClass::Medium] {
        let cfg = FfsConfig::paper_default(workload);
        let trace = AzureTraceConfig::for_workload(workload, 30.0, 7).generate();
        let mut system = FluidFaaSSystem::new(cfg.clone(), &trace);
        let solo = run_platform(&mut system, &trace);
        let (sharded, stats) =
            run_sharded_fluid(&cfg, partition_trace(&trace, 1), &ShardSpec::new(1, 1))
                .expect("1-cell run");
        assert_eq!(stats.cells, 1);
        assert!(stats.epochs >= 1);
        assert_eq!(
            run_output_digest(&solo),
            run_output_digest(&sharded),
            "{} 1-cell sharded output diverged from run_platform",
            workload.name()
        );
        assert_eq!(solo.log.len(), sharded.log.len());
    }
}

/// The core property: for a fixed cell partition, every lane count
/// produces the identical digest (lanes are physics, cells are policy).
#[test]
fn lane_count_never_changes_output() {
    let mut cfg = FfsConfig::paper_default(WorkloadClass::Medium);
    cfg.nodes = 4;
    cfg.gpus_per_node = 4;
    let trace = AzureTraceConfig::for_workload(WorkloadClass::Medium, 45.0, 11).generate();
    let digests: Vec<u64> = [1usize, 2, 4, 8]
        .iter()
        .map(|&lanes| {
            let (out, stats) =
                run_sharded_fluid(&cfg, partition_trace(&trace, 4), &ShardSpec::new(4, lanes))
                    .expect("4-cell run");
            assert_eq!(stats.lanes, lanes.min(4));
            assert_eq!(out.log.len(), trace.len(), "every request must be logged");
            run_output_digest(&out)
        })
        .collect();
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "lane counts diverged: {digests:x?}"
    );
}

/// Same property over randomized multi-tenant scale traces: several
/// seeds, 1/2/4/8 lanes each, one digest per seed.
#[test]
fn lane_count_never_changes_output_on_random_scale_traces() {
    let mut cfg = FfsConfig::paper_default(WorkloadClass::Medium);
    cfg.nodes = 4;
    cfg.gpus_per_node = 2;
    for seed in [1u64, 7, 42] {
        let tc = ScaleTraceConfig::new(96, 20.0, 40.0, seed);
        let cell_traces: Vec<_> = (0..4).map(|c| tc.cell_trace(c, 4)).collect();
        let total: usize = cell_traces.iter().map(|ct| ct.trace.len()).sum();
        assert!(total > 0, "seed {seed} generated an empty trace");
        let digests: Vec<u64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&lanes| {
                let (out, _) =
                    run_sharded_fluid(&cfg, cell_traces.clone(), &ShardSpec::new(4, lanes))
                        .expect("scale run");
                assert_eq!(out.log.len(), total);
                run_output_digest(&out)
            })
            .collect();
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "seed {seed} diverged across lane counts: {digests:x?}"
        );
    }
}

/// Repeating the identical sharded run must be bit-identical (no ambient
/// state leaks in via the arena, telemetry, or thread scheduling).
#[test]
fn repeated_sharded_runs_agree() {
    let mut cfg = FfsConfig::paper_default(WorkloadClass::Light);
    cfg.nodes = 4;
    cfg.gpus_per_node = 4;
    let trace = AzureTraceConfig::for_workload(WorkloadClass::Light, 30.0, 3).generate();
    let digest = |_: usize| {
        let (out, _) = run_sharded_fluid(&cfg, partition_trace(&trace, 2), &ShardSpec::new(2, 2))
            .expect("2-cell run");
        run_output_digest(&out)
    };
    assert_eq!(digest(0), digest(1));
}

/// Builds a two-cell scenario that actually forwards: cell 0 gets a
/// blast of every app at once on a single tiny node (not every function
/// can hold an instance, so some starve with queued work), while cell 1
/// idles with identical free capacity.
fn overload_traces(per_app: usize) -> (FfsConfig, Vec<ffs_trace::CellTrace>) {
    let mut cfg = FfsConfig::paper_default(WorkloadClass::Medium);
    cfg.nodes = 2;
    cfg.gpus_per_node = 1;
    // No time-sharing slot to fall back on: a backlogged function with no
    // exclusive instance is starving, which is what the exchange forwards.
    cfg.enable_time_sharing = false;
    let apps = WorkloadClass::Medium.apps();
    let duration = ffs_sim::SimDuration::from_secs(12);
    let mut invocations = Vec::new();
    for k in 0..per_app {
        for &app in &apps {
            invocations.push(Invocation {
                id: invocations.len() as u64,
                app,
                // One burst per second so later waves still find cell 0
                // saturated after the first epoch exchange.
                arrival: ffs_sim::SimTime::from_secs_f64(0.25 + (k % 8) as f64),
                tenant: app.index() as u32,
            });
        }
    }
    invocations.sort_by_key(|inv| (inv.arrival, inv.id));
    for (i, inv) in invocations.iter_mut().enumerate() {
        inv.id = i as u64;
    }
    let busy = Trace {
        invocations,
        duration,
    };
    let idle = Trace {
        invocations: Vec::new(),
        duration,
    };
    let cells = vec![
        ffs_trace::CellTrace {
            global_ids: (0..busy.len() as u64).collect(),
            trace: busy,
        },
        ffs_trace::CellTrace {
            global_ids: Vec::new(),
            trace: idle,
        },
    ];
    (cfg, cells)
}

/// Cross-cell forwarding fires under overload, conserves every request
/// (a moved request is logged exactly once, at its adopter), and stays
/// lane-invariant.
#[test]
fn forwarding_fires_and_conserves_requests() {
    let (cfg, cell_traces) = overload_traces(48);
    let total: usize = cell_traces.iter().map(|ct| ct.trace.len()).sum();
    let mut digests = Vec::new();
    for lanes in [1usize, 2] {
        let (out, stats) = run_sharded_fluid(&cfg, cell_traces.clone(), &ShardSpec::new(2, lanes))
            .expect("overload run");
        assert!(
            stats.forwards > 0,
            "the overloaded cell must forward starving work (lanes {lanes})"
        );
        assert_eq!(
            out.log.len(),
            total,
            "forwarding must conserve requests (lanes {lanes})"
        );
        // Global ids must stay unique after the moved requests re-log at
        // their adopting cell.
        let mut ids: Vec<u64> = out.log.records().iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), total, "duplicate ids after forwarding");
        digests.push(run_output_digest(&out));
    }
    assert_eq!(digests[0], digests[1], "forwarding broke lane invariance");
}
