//! Property test: the slab's incremental routing index is equivalent to a
//! full scan, under arbitrary interleavings of the five mutation sites
//! that maintain it (insert, remove, phase transitions, admissions,
//! departures).
//!
//! The test drives an [`InstanceSlab`] through random operation sequences
//! while keeping its own model of which instance belongs to which
//! function, then after *every* operation re-derives the admissible set
//! from the slab's public accessors and asserts:
//!
//! * `admissible_of(f)` holds exactly the live, `Ready`,
//!   below-admission-bound instances of `f`, in ascending id order;
//! * the argmin-latency winner over the index equals the winner of the
//!   full filter-scan it replaced (strict `<`, so the lowest id wins
//!   ties — the first-best-by-id contract routing relies on);
//! * `debug_assert_hot_consistent` passes (record and columns in
//!   lockstep).
//!
//! Latencies are drawn from a tiny set so ties are the common case, and
//! bottleneck times are chosen to give admission caps of 1–3 so
//! admissions actually saturate instances in and out of the index.

use proptest::prelude::*;

use ffs_dag::PipelinePartition;
use ffs_mig::{GpuId, NodeId, SliceId, SliceProfile};
use ffs_pipeline::plan::StagePlan;
use ffs_pipeline::{DeploymentPlan, InstanceEstimate};
use ffs_sim::SimTime;
use fluidfaas::instance::{Instance, Phase, StageTimings};
use fluidfaas::platform::events::InstanceId;
use fluidfaas::platform::slab::{InstanceSlab, PhaseTag};

/// Functions the test spreads instances across.
const FUNCS: usize = 3;
/// SLO handed to `insert`; with bottlenecks of 1.0/1.5/3.0 ms the
/// admission caps come out as 3, 2 and 1.
const SLO_MS: f64 = 3.0;

fn inst(id: u64, func: usize, latency_ms: f64, bottleneck_ms: f64) -> Instance {
    let nodes = vec![ffs_dag::NodeId(0)];
    let plan = DeploymentPlan {
        partition: PipelinePartition::new(vec![nodes.clone()]),
        stages: vec![StagePlan {
            nodes,
            slice: SliceId::new(GpuId(0), 0),
            profile: SliceProfile::G1_10,
            mem_gb: 1.0,
        }],
        cv: 0.0,
    };
    Instance::new(
        InstanceId(id),
        func,
        plan,
        InstanceEstimate {
            latency_ms,
            bottleneck_ms,
            throughput_rps: 1.0,
        },
        StageTimings::zero(1),
        NodeId(0),
        SimTime::ZERO,
        SimTime::ZERO,
    )
}

/// The full-scan reference: filter the model's instances of `f` by the
/// slab's own admissibility predicate, ascending by id.
fn derive_admissible(slab: &InstanceSlab, model: &[(u64, usize)], f: usize) -> Vec<u32> {
    let mut ids: Vec<u32> = model
        .iter()
        .filter(|&&(id, func)| func == f && slab.has_admission_capacity(InstanceId(id)))
        .map(|&(id, _)| id as u32)
        .collect();
    ids.sort_unstable();
    ids
}

/// Argmin latency with strict `<` over the index's candidate list.
fn argmin_index(slab: &InstanceSlab, ids: &[u32]) -> Option<u32> {
    let mut best: Option<(u32, f64)> = None;
    for &id in ids {
        let lat = slab.latency_ms_of(InstanceId(id as u64));
        if best.is_none_or(|(_, b)| lat < b) {
            best = Some((id, lat));
        }
    }
    best.map(|(id, _)| id)
}

/// The scan the index replaced: every instance of `f` ascending by id,
/// admissibility checked inline, argmin latency with strict `<`.
fn argmin_full_scan(slab: &InstanceSlab, model: &[(u64, usize)], f: usize) -> Option<u32> {
    let mut ids: Vec<u64> = model
        .iter()
        .filter(|&&(_, func)| func == f)
        .map(|&(id, _)| id)
        .collect();
    ids.sort_unstable();
    let mut best: Option<(u32, f64)> = None;
    for id in ids {
        if !slab.has_admission_capacity(InstanceId(id)) {
            continue;
        }
        let lat = slab.latency_ms_of(InstanceId(id));
        if best.is_none_or(|(_, b)| lat < b) {
            best = Some((id as u32, lat));
        }
    }
    best.map(|(id, _)| id)
}

proptest! {
    /// Index ≡ full scan after every mutation of a random operation
    /// sequence.
    #[test]
    fn index_matches_full_scan(
        ops in proptest::collection::vec((0u8..5, 0usize..64, 0u8..8), 1..96),
    ) {
        let mut slab = InstanceSlab::new();
        // (id, func) of every live instance — the test's own model.
        let mut model: Vec<(u64, usize)> = Vec::new();
        let mut next_id = 0u64;

        for (op, pick, salt) in ops {
            match op {
                // Insert a launching instance: never admissible yet.
                0 => {
                    let func = pick % FUNCS;
                    // Few distinct latencies → argmin ties are common.
                    let latency = 1.0 + f64::from(salt % 3);
                    let bottleneck = [1.0, 1.5, 3.0][(salt % 3) as usize];
                    slab.insert(InstanceId(next_id), inst(next_id, func, latency, bottleneck), SLO_MS);
                    model.push((next_id, func));
                    next_id += 1;
                }
                // Remove a live instance (admissible or not).
                1 if !model.is_empty() => {
                    let (id, _) = model.swap_remove(pick % model.len());
                    prop_assert!(slab.remove(&InstanceId(id)).is_some());
                }
                // Phase transition: launching/draining → Ready, or
                // Ready → Draining (the engine's migration path).
                2 if !model.is_empty() => {
                    let (id, _) = model[pick % model.len()];
                    let iid = InstanceId(id);
                    if slab.phase_tag(iid) == PhaseTag::Ready {
                        slab.set_phase(&iid, Phase::Draining);
                    } else {
                        slab.set_phase(&iid, Phase::Ready);
                    }
                }
                // Admission: routing only ever targets admissible
                // instances, so gate exactly as the router does. Mirror
                // the record mutation (queue at stage 0) like the engine.
                3 if !model.is_empty() => {
                    let (id, _) = model[pick % model.len()];
                    let iid = InstanceId(id);
                    if slab.has_admission_capacity(iid) {
                        slab.get_mut(&iid).unwrap().stage_queues[0].push_back(u64::from(salt));
                        slab.note_admitted(iid);
                    }
                }
                // Departure: a queued request leaves the instance.
                4 if !model.is_empty() => {
                    let (id, _) = model[pick % model.len()];
                    let iid = InstanceId(id);
                    if slab.occupancy_of(iid) > 0 {
                        slab.get_mut(&iid).unwrap().stage_queues[0].pop_front();
                        slab.note_stage_finished(iid, 0, true);
                    }
                }
                _ => {}
            }

            // The index must match the full scan after *every* op, not
            // just at the end — a transiently wrong list would route a
            // request before any later op repaired it.
            for f in 0..FUNCS {
                let expect = derive_admissible(&slab, &model, f);
                prop_assert_eq!(
                    slab.admissible_of(f),
                    expect.as_slice(),
                    "admissible list diverged for function {}",
                    f
                );
                prop_assert_eq!(
                    argmin_index(&slab, slab.admissible_of(f)),
                    argmin_full_scan(&slab, &model, f),
                    "argmin winner diverged for function {}",
                    f
                );
            }
            slab.debug_assert_hot_consistent();
        }
    }
}
