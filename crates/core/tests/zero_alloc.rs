//! The steady-state event loop performs zero heap allocations.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase that launches instances, grows every ring to its working size and
//! primes the scheduler's wheel slots, a measured window of pure event
//! traffic (arrivals, stage completions, request completions — no scale
//! tick, which is cadence work, not per-event work) must allocate nothing:
//! requests are prebuilt, the request log and utilization bins are
//! pre-sized, wheel slots and per-function rings recycle their capacity,
//! and plan/timing lookups hit precomputed tables.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use ffs_profile::App;
use ffs_sim::{run_until, Scheduler, SimTime};
use ffs_trace::{AzureTraceConfig, Trace, WorkloadClass};
use fluidfaas::platform::arena::{arena_stats, pooled_capacity};
use fluidfaas::platform::events::Event;
use fluidfaas::platform::run_platform;
use fluidfaas::{FfsConfig, FluidFaaSSystem};

/// Allocation events observed while the current thread is in a measured
/// window. Thread-scoped via the `COUNTING` flag so harness threads and
/// lazy runtime initialisation elsewhere never pollute the count.
static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

impl CountingAlloc {
    fn note() {
        // `try_with` so allocations during TLS teardown stay safe.
        let _ = COUNTING.try_with(|c| {
            if c.get() {
                ALLOCS.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::note();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::note();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::note();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs a measured window of `f` on this thread and returns how many
/// allocations it performed.
fn allocations_in<R>(f: impl FnOnce() -> R) -> (u64, R) {
    COUNTING.with(|c| c.set(true));
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    let after = ALLOCS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(false));
    (after - before, r)
}

#[test]
fn steady_state_events_do_not_allocate() {
    // A steady single-app load the small fleet can absorb: after the
    // autoscaler's first ticks the exclusive instances serve every arrival
    // without touching the shared pool or the planner.
    let trace = AzureTraceConfig::steady(vec![App::ImageClassification], 8.0, 40.0, 11).generate();
    let cfg = FfsConfig::test_small(WorkloadClass::Light);
    let mut sys = FluidFaaSSystem::new(cfg, &trace);

    let mut sched: Scheduler<Event> = Scheduler::new();
    sched.preload_sorted(
        trace
            .invocations
            .iter()
            .map(|inv| (inv.arrival, Event::Arrival(inv.id))),
    );
    sched.at(SimTime::ZERO, Event::ScaleTick);

    // Warm-up: launches, ring growth, wheel priming, first completions.
    run_until(&mut sys, &mut sched, SimTime::from_micros(5_200_000));

    // Measured window between two scale ticks (ticks land on whole
    // seconds; events at exactly the deadline stay queued): pure arrival /
    // stage / completion traffic.
    let executed_before = ffs_sim::process_executed_events();
    let (allocs, _) =
        allocations_in(|| run_until(&mut sys, &mut sched, SimTime::from_micros(5_900_000)));
    let executed = ffs_sim::process_executed_events() - executed_before;

    assert!(
        executed >= 20,
        "window must exercise real event traffic (got {executed} events)"
    );
    assert_eq!(
        allocs, 0,
        "steady-state event handling must not allocate ({executed} events executed)"
    );
}

/// After one warm-up run per thread, the run arena reaches a fixed point:
/// every later run on the thread takes all three container families
/// (scheduler, request buffer, instance slab) from the pool, and the
/// pooled capacity stops growing. This is the property that makes
/// `run_matrix` teardown O(1) amortised — repeat runs neither construct
/// nor grow the big per-run containers.
#[test]
fn arena_reaches_zero_growth_after_warmup() {
    let trace = AzureTraceConfig::steady(vec![App::ImageClassification], 8.0, 20.0, 17).generate();
    let one_run = |trace: &Trace| {
        let cfg = FfsConfig::test_small(WorkloadClass::Light);
        let mut sys = FluidFaaSSystem::new(cfg, trace);
        run_platform(&mut sys, trace)
    };

    // Warm-up: the first run constructs (or grows) the thread's containers
    // and parks them in the pool on teardown.
    let baseline = one_run(&trace).log.len();

    let stats_warm = arena_stats();
    let cap_warm = pooled_capacity();

    const REPEATS: u64 = 3;
    for _ in 0..REPEATS {
        assert_eq!(one_run(&trace).log.len(), baseline, "reuse must be inert");
    }

    let stats_end = arena_stats();
    let cap_end = pooled_capacity();
    assert_eq!(
        stats_end.fresh, stats_warm.fresh,
        "a warmed thread must construct no fresh containers"
    );
    assert_eq!(
        stats_end.reused,
        stats_warm.reused + 3 * REPEATS,
        "each run must recycle its scheduler, request buffer and slab"
    );
    assert_eq!(
        cap_end, cap_warm,
        "pooled capacity must be flat once the thread has seen its biggest run"
    );
}
