//! Keep-alive transitions as seen through `ffs-obs`.
//!
//! Table-driven coverage of every legal Figure 8 edge (and silence on every
//! undrawn one), plus a sim-driven check that eviction events carry the
//! correct [`ffs_obs::EvictionReason`].

use std::sync::{Arc, Mutex};

use ffs_obs::{EvictionReason, KaCause, ObsEvent, Recorder, Recording};
use ffs_sim::SimDuration;
use ffs_trace::{AzureTraceConfig, WorkloadClass};
use fluidfaas::platform::runner::run_platform;
use fluidfaas::KeepAliveState::{self, Cold, ExclusiveHot, TimeSharing, Warm};
use fluidfaas::Transition::{
    self, Evicted, IdleTimeout, RequestArrived, UtilizationHigh, UtilizationLow,
};
use fluidfaas::{FfsConfig, FluidFaaSSystem};

/// The global enable flag is process-wide state; serialize the tests.
static LOCK: Mutex<()> = Mutex::new(());

fn with_recorder<R>(f: impl FnOnce() -> R) -> (R, Recording) {
    ffs_obs::set_enabled(true);
    let prev = ffs_obs::install(Arc::new(Recorder::new()));
    assert!(prev.is_none(), "stale recorder from another test");
    let r = f();
    let rec = ffs_obs::uninstall().expect("recorder still installed");
    ffs_obs::set_enabled(false);
    (r, rec.drain())
}

/// Every edge Figure 8 draws: (from, input, to).
const LEGAL_EDGES: &[(KeepAliveState, Transition, KeepAliveState)] = &[
    (Cold, RequestArrived, TimeSharing),          // ①
    (Warm, RequestArrived, TimeSharing),          // warm reload
    (TimeSharing, UtilizationHigh, ExclusiveHot), // ②
    (ExclusiveHot, UtilizationLow, TimeSharing),  // ③
    (TimeSharing, Evicted, Warm),                 // ④
    (Warm, IdleTimeout, Cold),                    // ⑤
    (TimeSharing, IdleTimeout, Cold),             // ⑤ (idle on-slice data)
];

const ALL_STATES: [KeepAliveState; 4] = [Cold, TimeSharing, ExclusiveHot, Warm];
const ALL_TRANSITIONS: [Transition; 5] = [
    RequestArrived,
    UtilizationHigh,
    UtilizationLow,
    Evicted,
    IdleTimeout,
];

#[test]
fn every_legal_edge_emits_exactly_one_transition_event() {
    let _g = LOCK.lock().unwrap();
    for &(from, input, to) in LEGAL_EDGES {
        let (next, recording) = with_recorder(|| from.next_traced(input, 7));
        assert_eq!(next, to, "{from:?} --{input:?}--> expected {to:?}");
        assert_eq!(
            recording.events.len(),
            1,
            "{from:?} --{input:?}--> {to:?} must record one event"
        );
        match &recording.events[0].event {
            ObsEvent::KeepAliveTransition {
                func,
                from: ef,
                to: et,
                cause,
            } => {
                assert_eq!(*func, 7);
                assert_eq!(*ef, from.obs());
                assert_eq!(*et, to.obs());
                assert_eq!(*cause, input.obs());
            }
            other => panic!("expected a keep-alive transition, got {other:?}"),
        }
        assert_eq!(recording.counters.keepalive_transitions, 1);
    }
}

#[test]
fn every_undrawn_edge_stays_silent() {
    let _g = LOCK.lock().unwrap();
    for from in ALL_STATES {
        for input in ALL_TRANSITIONS {
            if LEGAL_EDGES.iter().any(|&(f, t, _)| f == from && t == input) {
                continue;
            }
            let (next, recording) = with_recorder(|| from.next_traced(input, 3));
            assert_eq!(next, from, "{from:?} --{input:?}--> must be a no-op");
            assert!(
                recording.events.is_empty(),
                "{from:?} --{input:?}--> must not record ({:?})",
                recording.events
            );
        }
    }
}

/// A run with scarce resources and a short keep-alive: slice-contention
/// evictions (④) and keep-alive expiries (⑤) both happen, and every
/// eviction event's reason matches the lineage's transition history.
#[test]
fn sim_evictions_carry_the_correct_reason() {
    let _g = LOCK.lock().unwrap();
    // One GPU, four apps, steady demand: the shared pool cannot give every
    // function its own slot, so LRU contention evictions are guaranteed.
    let mut cfg = FfsConfig::test_small(WorkloadClass::Light);
    cfg.gpus_per_node = 1;
    cfg.keep_alive = SimDuration::from_secs(20);
    let trace = AzureTraceConfig::steady(WorkloadClass::Light.apps(), 60.0, 10.0, 5).generate();
    let ((), recording) = with_recorder(|| {
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        let _ = run_platform(&mut sys, &trace);
    });

    let mut contention = 0u64;
    let mut expiry = 0u64;
    for stamped in &recording.events {
        match &stamped.event {
            ObsEvent::Eviction {
                func,
                reason: EvictionReason::SliceContention,
                ..
            } => {
                contention += 1;
                let _ = func;
            }
            ObsEvent::Eviction {
                func,
                reason: EvictionReason::KeepAliveExpired,
                ..
            } => {
                expiry += 1;
                // ⑤ fires at the same instant for the same function: the
                // expiry eviction only exists because the lineage was
                // TimeSharing, and TS --idle_timeout--> Cold is drawn.
                let matched = recording.events.iter().any(|s| {
                    s.t_us == stamped.t_us
                        && matches!(
                            &s.event,
                            ObsEvent::KeepAliveTransition { func: f, cause: KaCause::IdleTimeout, .. }
                                if f == func
                        )
                });
                assert!(matched, "expiry eviction of func {func} without ⑤");
            }
            // ④: a lineage only transitions TimeSharing -> Warm because its
            // resident was contention-evicted at that very instant.
            ObsEvent::KeepAliveTransition {
                func,
                cause: KaCause::Evicted,
                ..
            } => {
                let matched = recording.events.iter().any(|s| {
                    s.t_us == stamped.t_us
                        && matches!(
                            &s.event,
                            ObsEvent::Eviction { func: f, reason: EvictionReason::SliceContention, .. }
                                if f == func
                        )
                });
                assert!(matched, "④ of func {func} without its contention eviction");
            }
            _ => {}
        }
    }
    assert_eq!(
        recording.counters.evictions_contention, contention,
        "counters fold contention evictions"
    );
    assert_eq!(
        recording.counters.evictions_keepalive, expiry,
        "counters fold keep-alive evictions"
    );
    assert!(
        contention + expiry > 0,
        "the scarce-fleet run must evict at least once"
    );
}
