//! Property tests of the Figure 8 keep-alive state machine.

use proptest::prelude::*;

use fluidfaas::{KeepAliveState, Transition};

fn arb_transition() -> impl Strategy<Value = Transition> {
    prop_oneof![
        Just(Transition::RequestArrived),
        Just(Transition::UtilizationHigh),
        Just(Transition::UtilizationLow),
        Just(Transition::Evicted),
        Just(Transition::IdleTimeout),
    ]
}

proptest! {
    /// The state machine is closed over its four states and never evicts an
    /// exclusive-hot instance.
    #[test]
    fn closed_and_eviction_safe(ts in proptest::collection::vec(arb_transition(), 0..64)) {
        let mut s = KeepAliveState::Cold;
        for t in ts {
            let next = s.next(t);
            // Closure: next is one of the four states (type-level), and the
            // specific safety property: eviction never moves ExclusiveHot.
            if s == KeepAliveState::ExclusiveHot && t == Transition::Evicted {
                prop_assert_eq!(next, KeepAliveState::ExclusiveHot);
            }
            // GPU residency can only be (re)gained through a request or a
            // promotion, never through timeouts.
            if !s.on_gpu() && next.on_gpu() {
                prop_assert_eq!(t, Transition::RequestArrived);
            }
            s = next;
        }
    }

    /// Without requests, any trajectory eventually reaches (and stays) Cold.
    #[test]
    fn starvation_reaches_cold(ts in proptest::collection::vec(arb_transition(), 0..32)) {
        let mut s = KeepAliveState::TimeSharing;
        for t in ts {
            if t == Transition::RequestArrived || t == Transition::UtilizationHigh {
                continue; // starvation scenario: no demand signals
            }
            s = s.next(t);
        }
        // Apply the full decay sequence.
        s = s.next(Transition::UtilizationLow);
        s = s.next(Transition::Evicted);
        s = s.next(Transition::IdleTimeout);
        prop_assert_eq!(s, KeepAliveState::Cold);
        prop_assert_eq!(s.next(Transition::IdleTimeout), KeepAliveState::Cold);
    }
}
