//! Integration tests for `ffs-chaos` fault injection.
//!
//! Covers the PR's acceptance criteria: fault-free runs stay clamp-free
//! and report zero fault stats; faulted runs are a pure function of
//! `(run seed, FaultSpec)`; recovered slices re-enter placement only
//! after paying the real MIG reconfiguration latency; and the platform
//! degrades gracefully (still completes work) under an aggressive
//! failure regime.

use std::sync::{Arc, Mutex};

use ffs_mig::gpu::RECONFIGURE_SECS;
use ffs_obs::{ObsEvent, Recorder, Recording};
use ffs_sim::SimDuration;
use ffs_trace::{AzureTraceConfig, Trace, WorkloadClass};
use fluidfaas::platform::runner::{run_platform, FaultStats, RunOutput};
use fluidfaas::{FaultSpec, FfsConfig, FluidFaaSSystem};

/// The obs enable flag is process-wide; serialize the tests that use it
/// (and the fault-free clamp check, which reads a global counter).
static LOCK: Mutex<()> = Mutex::new(());

fn small_trace(secs: f64) -> Trace {
    AzureTraceConfig::for_workload(WorkloadClass::Light, secs, 7).generate()
}

fn run(cfg: FfsConfig, trace: &Trace) -> RunOutput {
    let mut sys = FluidFaaSSystem::new(cfg, trace);
    run_platform(&mut sys, trace)
}

fn with_recorder<R>(f: impl FnOnce() -> R) -> (R, Recording) {
    ffs_obs::set_enabled(true);
    let prev = ffs_obs::install(Arc::new(Recorder::with_capacity(1 << 16)));
    assert!(prev.is_none(), "stale recorder from another test");
    let r = f();
    let rec = ffs_obs::uninstall().expect("recorder still installed");
    ffs_obs::set_enabled(false);
    (r, rec.drain())
}

#[test]
fn fault_free_run_reports_zero_faults_and_zero_clamps() {
    let _g = LOCK.lock().unwrap();
    let before = ffs_obs::metric_clamps();
    let trace = small_trace(30.0);
    let out = run(FfsConfig::test_small(WorkloadClass::Light), &trace);
    assert_eq!(out.faults, FaultStats::default());
    assert_eq!(
        ffs_obs::metric_clamps() - before,
        0,
        "fault-free run must not clamp any metric interval"
    );
    assert!(!out.log.is_empty());
}

#[test]
fn faulted_run_is_a_pure_function_of_seed_and_spec() {
    let _g = LOCK.lock().unwrap();
    let trace = small_trace(60.0);
    let mut cfg = FfsConfig::test_small(WorkloadClass::Light);
    cfg.faults = FaultSpec::slice_faults(5, 20.0);
    let a = run(cfg.clone(), &trace);
    let b = run(cfg, &trace);
    assert!(
        a.faults.slice_failures > 0,
        "20 s MTBF over 2 min must fault"
    );
    assert_eq!(a.faults, b.faults);
    assert_eq!(
        a.log.slo_hit_rate().to_bits(),
        b.log.slo_hit_rate().to_bits(),
        "same (seed, spec) must reproduce bit-identically"
    );
    let la = a.latency_cdf().p99().unwrap_or(0.0);
    let lb = b.latency_cdf().p99().unwrap_or(0.0);
    assert_eq!(la.to_bits(), lb.to_bits());
}

/// Satellite regression: a recovered slice re-enters placement exactly
/// `recovery_secs + RECONFIGURE_SECS` after a fault fired — the MIG
/// reconfiguration latency is charged through the engine clock, not
/// skipped. (Recovery is GPU-granular, so a recovery's timestamp matches
/// *some* fault instant plus the full delay; see docs/RESILIENCE.md.)
#[test]
fn recovery_pays_the_reconfiguration_latency() {
    let _g = LOCK.lock().unwrap();
    let trace = small_trace(40.0);
    let mut cfg = FfsConfig::test_small(WorkloadClass::Light);
    // Long drain so `fault + recovery + 180 s` lands inside the horizon.
    cfg.drain = SimDuration::from_secs(400);
    cfg.faults = FaultSpec::slice_faults(3, 15.0);
    let recovery_us = (cfg.faults.recovery_secs * 1e6) as u64;
    let reconf_us = RECONFIGURE_SECS * 1_000_000;
    let (out, recording) = with_recorder(|| run(cfg, &trace));
    assert!(out.faults.slice_failures > 0);
    assert!(
        out.faults.recoveries > 0,
        "a 400 s drain must see at least one recovery"
    );
    let fault_times: Vec<u64> = recording
        .events
        .iter()
        .filter(|s| matches!(s.event, ObsEvent::SliceFailed { .. }))
        .map(|s| s.t_us)
        .collect();
    let recover_times: Vec<u64> = recording
        .events
        .iter()
        .filter(|s| matches!(s.event, ObsEvent::SliceRecovered { .. }))
        .map(|s| s.t_us)
        .collect();
    assert!(!recover_times.is_empty());
    for &t in &recover_times {
        assert!(
            fault_times.contains(&(t - recovery_us - reconf_us)),
            "recovery at {t} µs is not a fault instant + {} s + {} s",
            recovery_us / 1_000_000,
            RECONFIGURE_SECS
        );
    }
    // The reconfiguration itself went through the NVML mirror.
    assert!(
        recording
            .events
            .iter()
            .any(|s| matches!(s.event, ObsEvent::MigReconfig { .. })),
        "recovery must charge a MIG reconfiguration"
    );
}

#[test]
fn platform_degrades_gracefully_under_aggressive_faults() {
    let _g = LOCK.lock().unwrap();
    let trace = small_trace(60.0);
    let mut cfg = FfsConfig::test_small(WorkloadClass::Light);
    cfg.faults = FaultSpec {
        gpu_mtbf_secs: 60.0,
        ..FaultSpec::slice_faults(11, 10.0)
    };
    let out = run(cfg, &trace);
    assert!(out.faults.slice_failures > 0);
    assert!(out.faults.gpu_failures > 0);
    let completed = out
        .log
        .records()
        .iter()
        .filter(|r| r.latency_ms().is_some())
        .count();
    assert!(
        completed > 0,
        "the platform must keep serving through faults"
    );
    // Fault counters are self-consistent: every exhausted retry chain used
    // max_retries issued retries (plus the issued ones still pending).
    assert!(out.faults.retries >= out.faults.retries_exhausted);
}
