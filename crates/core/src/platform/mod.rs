//! Machinery shared between FluidFaaS and the baseline platforms:
//! the function catalog, request bookkeeping, the metrics hub, the trace
//! runner, and the policy-driven event-loop engine every platform runs on.

pub mod arena;
pub mod catalog;
pub mod engine;
pub mod events;
pub mod hub;
pub mod mqfq;
pub mod policy;
pub mod request;
pub mod runner;
pub mod sharded;
pub mod slab;

pub use catalog::{FuncId, FunctionCatalog};
pub use engine::{Engine, EngineCore, EngineError, SchedulerLog, MAX_LAUNCHES_PER_TICK};
pub use events::{Event, InstanceId};
pub use hub::MetricsHub;
pub use mqfq::{mqfq_policies, mqfq_policies_with, MqfqParams, MqfqState};
pub use policy::{
    Autoscaler, Migrator, NoMigrator, NoSharedPool, Placer, PolicyBundle, Router, SharedPoolPolicy,
};
pub use request::{RequestState, ServePath};
pub use runner::{run_platform, FaultStats, Platform, RunOutput};
pub use sharded::{
    run_output_digest, run_sharded, run_sharded_fluid, ShardMsg, ShardRunStats, ShardSpec,
    ShardView,
};
