//! Machinery shared between FluidFaaS and the baseline platforms:
//! the function catalog, request bookkeeping, the metrics hub and the
//! trace runner.

pub mod catalog;
pub mod events;
pub mod hub;
pub mod request;
pub mod runner;

pub use catalog::{FuncId, FunctionCatalog};
pub use events::{Event, InstanceId};
pub use hub::MetricsHub;
pub use request::{RequestState, ServePath};
pub use runner::{run_platform, Platform, RunOutput};
