//! Id-indexed instance storage: the engine's live-instance table as a
//! slab instead of an ordered map.
//!
//! Instance ids are handed out by a monotonic counter and never reused,
//! so `InstanceId(n)` can index a `Vec` directly: every lookup on the
//! per-event hot path (routing, stage completion, transfers) is one
//! bounds-checked array access instead of a `BTreeMap` descent. Iteration
//! walks the slots in index order, which is exactly the ascending-id
//! order the `BTreeMap` used to give — policy code that depends on
//! first-by-id tie-breaking (FIFO routing, global retire sweeps) is
//! unaffected by the swap.
//!
//! Slots of retired instances stay as `None` tombstones; the vector's
//! length is the highest id ever live, which stays small (hundreds) for
//! any realistic run because launches are rate-limited per scale tick.
//!
//! ## Hot columns (SoA)
//!
//! The scans the per-event hot path performs — admission checks, lowest-
//! latency routing, capacity/pressure estimates, per-tick busy-GPC sums —
//! read a handful of scalars per instance. Pulling a whole `Instance`
//! record (plans, queues, timing tables) through the cache for each is
//! most of the scan cost, so those scalars live in parallel
//! structure-of-arrays columns beside the slab:
//!
//! * `phase` — lifecycle tag ([`PhaseTag`]; `Empty` marks tombstones),
//! * `occupancy` — queued + executing + mid-transfer requests,
//! * `admit_cap` — the SLO admission bound (`floor(slo/bottleneck).max(1)`,
//!   constant per instance because both inputs are fixed at launch),
//! * `latency_ms` / `bottleneck_ms` / `throughput_rps` — the routing
//!   estimate, copied from `est` (immutable after launch),
//! * `busy_gpcs` — GPCs of the instance's currently executing stages.
//!
//! The engine keeps the mutable columns in sync at the few sites where the
//! underlying quantity changes (admission, stage start/finish, phase
//! transitions); `debug_assert_hot_consistent` re-derives every column
//! from the records in debug builds.
//!
//! ## Routing index
//!
//! On top of the columns the slab maintains the *routing index*: one
//! sorted vector of instance ids per function holding exactly the
//! *admissible* instances (`Ready` and below the SLO admission bound).
//! Routing reads the candidate list directly — O(candidates) instead of a
//! filter over every instance of the function — and the list's ascending
//! order preserves the first-best-by-id tie-breaking of the scan it
//! replaces. Membership can only change where the inputs change, so the
//! index is maintained at the same five sites that keep the columns in
//! sync: `insert`, `remove`, `set_phase`, `note_admitted` (a request
//! saturating the bound leaves the index) and `note_stage_finished` (a
//! departure from a saturated instance re-enters it).
//! `debug_assert_hot_consistent` re-derives the whole index in debug
//! builds, and `crates/core/tests/proptest_route_index.rs` pins
//! index-vs-scan equivalence on random mutation sequences.

use crate::instance::{Instance, Phase};
use crate::platform::catalog::FuncId;
use crate::platform::events::InstanceId;
use ffs_telemetry::{span, Phase as TelemetryPhase};

/// Sentinel in the `func` column for empty slots.
const NO_FUNC: usize = usize::MAX;

/// Lifecycle tag of a slab slot, including the empty (tombstone) state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseTag {
    /// No live instance in this slot.
    Empty,
    /// Cold-starting.
    Launching,
    /// Serving requests.
    Ready,
    /// Draining toward retirement.
    Draining,
}

impl PhaseTag {
    fn of(phase: &Phase) -> PhaseTag {
        match phase {
            Phase::Launching { .. } => PhaseTag::Launching,
            Phase::Ready => PhaseTag::Ready,
            Phase::Draining => PhaseTag::Draining,
        }
    }
}

/// The engine's live-instance table, indexed by [`InstanceId`].
#[derive(Default)]
pub struct InstanceSlab {
    slots: Vec<Option<Instance>>,
    live: usize,
    phase: Vec<PhaseTag>,
    occupancy: Vec<u32>,
    admit_cap: Vec<u32>,
    latency_ms: Vec<f64>,
    bottleneck_ms: Vec<f64>,
    throughput_rps: Vec<f64>,
    busy_gpcs: Vec<u32>,
    /// Function of each slot ([`NO_FUNC`] for tombstones) — what lets the
    /// mutators below index the right candidate list.
    func: Vec<usize>,
    /// The routing index: per-function ascending-id lists of admissible
    /// instances (see the module docs).
    admissible: Vec<Vec<u32>>,
}

impl InstanceSlab {
    /// An empty table.
    pub fn new() -> Self {
        InstanceSlab::default()
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no instance is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The live instance with id `id`, if any.
    #[inline]
    pub fn get(&self, id: &InstanceId) -> Option<&Instance> {
        self.slots.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Mutable access to the live instance with id `id`, if any.
    #[inline]
    pub fn get_mut(&mut self, id: &InstanceId) -> Option<&mut Instance> {
        self.slots.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    /// Inserts an instance under `id`, deriving its hot columns (the
    /// admission capacity needs the function's SLO, fixed per instance).
    /// Ids come from the engine's monotonic counter, so the slot is always
    /// fresh.
    pub fn insert(&mut self, id: InstanceId, inst: Instance, slo_ms: f64) {
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
            self.phase.resize(idx + 1, PhaseTag::Empty);
            self.occupancy.resize(idx + 1, 0);
            self.admit_cap.resize(idx + 1, 0);
            self.latency_ms.resize(idx + 1, 0.0);
            self.bottleneck_ms.resize(idx + 1, 0.0);
            self.throughput_rps.resize(idx + 1, 0.0);
            self.busy_gpcs.resize(idx + 1, 0);
            self.func.resize(idx + 1, NO_FUNC);
        }
        debug_assert!(self.slots[idx].is_none(), "instance id reused");
        self.phase[idx] = PhaseTag::of(&inst.phase);
        self.occupancy[idx] = inst.occupancy() as u32;
        self.admit_cap[idx] = inst.capacity(slo_ms).min(u32::MAX as usize) as u32;
        self.latency_ms[idx] = inst.est.latency_ms;
        self.bottleneck_ms[idx] = inst.est.bottleneck_ms;
        self.throughput_rps[idx] = inst.est.throughput_rps;
        self.busy_gpcs[idx] = inst
            .stage_busy
            .iter()
            .zip(&inst.plan.stages)
            .filter(|(b, _)| b.is_some())
            .map(|(_, s)| s.profile.gpcs())
            .sum();
        self.func[idx] = inst.func;
        if inst.func >= self.admissible.len() {
            self.admissible.resize_with(inst.func + 1, Vec::new);
        }
        self.slots[idx] = Some(inst);
        self.live += 1;
        self.index_update(idx, false);
    }

    /// Removes and returns the instance under `id`, if live.
    pub fn remove(&mut self, id: &InstanceId) -> Option<Instance> {
        let taken = self.slots.get_mut(id.0 as usize).and_then(Option::take);
        if taken.is_some() {
            let idx = id.0 as usize;
            let was =
                self.phase[idx] == PhaseTag::Ready && self.occupancy[idx] < self.admit_cap[idx];
            self.phase[idx] = PhaseTag::Empty;
            self.occupancy[idx] = 0;
            self.admit_cap[idx] = 0;
            self.latency_ms[idx] = 0.0;
            self.bottleneck_ms[idx] = 0.0;
            self.throughput_rps[idx] = 0.0;
            self.busy_gpcs[idx] = 0;
            self.index_update(idx, was);
            self.func[idx] = NO_FUNC;
            self.live -= 1;
        }
        taken
    }

    /// Sets the instance's lifecycle phase, keeping record and hot column
    /// in lockstep (the engine's only phase-mutation path).
    pub fn set_phase(&mut self, id: &InstanceId, phase: Phase) {
        let idx = id.0 as usize;
        let was = self.phase[idx] == PhaseTag::Ready && self.occupancy[idx] < self.admit_cap[idx];
        let inst = self.slots[idx].as_mut().expect("live instance");
        inst.phase = phase;
        self.phase[idx] = PhaseTag::of(&phase);
        self.index_update(idx, was);
    }

    /// Reconciles slot `idx`'s routing-index membership after a column
    /// mutation. `was` is the slot's admissibility *before* the mutation;
    /// the candidate list is only touched when membership actually flips,
    /// so steady traffic below the admission bound costs two column reads
    /// and a compare.
    #[inline]
    fn index_update(&mut self, idx: usize, was: bool) {
        let now = self.phase[idx] == PhaseTag::Ready && self.occupancy[idx] < self.admit_cap[idx];
        if was == now {
            return;
        }
        let _maint = span(TelemetryPhase::RouteIndexMaint);
        let f = self.func[idx];
        debug_assert_ne!(f, NO_FUNC, "index update on an empty slot");
        let list = &mut self.admissible[f];
        let id = idx as u32;
        match list.binary_search(&id) {
            Err(pos) if now => list.insert(pos, id),
            Ok(pos) if !now => {
                list.remove(pos);
            }
            _ => debug_assert!(false, "routing index membership out of sync"),
        }
    }

    /// The routing index for `f`: the admissible (ready, spare admission
    /// capacity) instances of `f` in ascending id order. Routing policies
    /// scan this instead of filtering every instance of the function; the
    /// full-scan equivalent is
    /// [`lowest_latency_full_scan`](super::policy::lowest_latency_full_scan).
    #[inline]
    pub fn admissible_of(&self, f: FuncId) -> &[u32] {
        self.admissible.get(f).map_or(&[], Vec::as_slice)
    }

    /// The lifecycle tag of slot `id` (`Empty` for tombstones / out of
    /// range).
    #[inline]
    pub fn phase_tag(&self, id: InstanceId) -> PhaseTag {
        self.phase
            .get(id.0 as usize)
            .copied()
            .unwrap_or(PhaseTag::Empty)
    }

    /// Requests inside instance `id` (queued + executing + mid-transfer).
    #[inline]
    pub fn occupancy_of(&self, id: InstanceId) -> u32 {
        self.occupancy[id.0 as usize]
    }

    /// The instance's fixed SLO admission bound.
    #[inline]
    pub fn admit_cap_of(&self, id: InstanceId) -> u32 {
        self.admit_cap[id.0 as usize]
    }

    /// The routing-estimate end-to-end latency of instance `id` (ms).
    #[inline]
    pub fn latency_ms_of(&self, id: InstanceId) -> f64 {
        self.latency_ms[id.0 as usize]
    }

    /// The routing-estimate bottleneck stage time of instance `id` (ms).
    #[inline]
    pub fn bottleneck_ms_of(&self, id: InstanceId) -> f64 {
        self.bottleneck_ms[id.0 as usize]
    }

    /// The routing-estimate throughput of instance `id` (rps).
    #[inline]
    pub fn throughput_rps_of(&self, id: InstanceId) -> f64 {
        self.throughput_rps[id.0 as usize]
    }

    /// True when `id` is ready and below its admission bound — the SoA
    /// equivalent of [`Instance::has_capacity`] with the function's SLO.
    #[inline]
    pub fn has_admission_capacity(&self, id: InstanceId) -> bool {
        let idx = id.0 as usize;
        self.phase[idx] == PhaseTag::Ready && self.occupancy[idx] < self.admit_cap[idx]
    }

    /// A request entered instance `id` (queued at stage 0).
    #[inline]
    pub fn note_admitted(&mut self, id: InstanceId) {
        let idx = id.0 as usize;
        let was = self.phase[idx] == PhaseTag::Ready && self.occupancy[idx] < self.admit_cap[idx];
        self.occupancy[idx] += 1;
        self.index_update(idx, was);
    }

    /// A stage of instance `id` started executing, occupying `gpcs` GPCs.
    #[inline]
    pub fn note_stage_started(&mut self, id: InstanceId, gpcs: u32) {
        self.busy_gpcs[id.0 as usize] += gpcs;
    }

    /// A stage of instance `id` finished; `departed` when the request left
    /// the instance (final stage).
    #[inline]
    pub fn note_stage_finished(&mut self, id: InstanceId, gpcs: u32, departed: bool) {
        let idx = id.0 as usize;
        self.busy_gpcs[idx] -= gpcs;
        if departed {
            let was =
                self.phase[idx] == PhaseTag::Ready && self.occupancy[idx] < self.admit_cap[idx];
            self.occupancy[idx] -= 1;
            self.index_update(idx, was);
        }
    }

    /// Sum of busy GPCs over every live instance — the per-tick
    /// utilization scan reduced to one integer-column pass.
    pub fn busy_gpcs_total(&self) -> u64 {
        self.busy_gpcs.iter().map(|&g| g as u64).sum()
    }

    /// Re-derives every hot column from the instance records and asserts
    /// they match; debug builds call this from the per-tick path so any
    /// missed update site fails fast.
    pub fn debug_assert_hot_consistent(&self) {
        if cfg!(debug_assertions) {
            for (idx, slot) in self.slots.iter().enumerate() {
                match slot {
                    None => debug_assert_eq!(self.phase[idx], PhaseTag::Empty),
                    Some(inst) => {
                        debug_assert_eq!(self.phase[idx], PhaseTag::of(&inst.phase));
                        debug_assert_eq!(self.occupancy[idx], inst.occupancy() as u32);
                        let busy: u32 = inst
                            .stage_busy
                            .iter()
                            .zip(&inst.plan.stages)
                            .filter(|(b, _)| b.is_some())
                            .map(|(_, s)| s.profile.gpcs())
                            .sum();
                        debug_assert_eq!(self.busy_gpcs[idx], busy);
                        debug_assert_eq!(self.func[idx], inst.func);
                    }
                }
            }
            // Re-derive the routing index: each function's candidate list
            // must hold exactly its admissible slots, ascending.
            for (f, list) in self.admissible.iter().enumerate() {
                let expect: Vec<u32> = self
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(idx, s)| {
                        s.is_some()
                            && self.func[*idx] == f
                            && self.has_admission_capacity(InstanceId(*idx as u64))
                    })
                    .map(|(idx, _)| idx as u32)
                    .collect();
                debug_assert_eq!(list, &expect, "routing index diverged for function {f}");
            }
        }
    }

    /// Drops every instance but keeps all backing capacity, returning the
    /// slab to its empty state for arena reuse.
    pub fn clear_for_reuse(&mut self) {
        self.slots.clear();
        self.phase.clear();
        self.occupancy.clear();
        self.admit_cap.clear();
        self.latency_ms.clear();
        self.bottleneck_ms.clear();
        self.throughput_rps.clear();
        self.busy_gpcs.clear();
        self.func.clear();
        // Keep the outer per-function vector (and each inner list's
        // capacity): the next run refills them without allocating.
        for list in &mut self.admissible {
            list.clear();
        }
        self.live = 0;
    }

    /// Total retained slot capacity across the spine and hot columns (the
    /// arena-growth test asserts this stays flat after warm-up).
    pub fn retained_capacity(&self) -> usize {
        self.slots.capacity()
            + self.phase.capacity()
            + self.occupancy.capacity()
            + self.admit_cap.capacity()
            + self.latency_ms.capacity()
            + self.bottleneck_ms.capacity()
            + self.throughput_rps.capacity()
            + self.busy_gpcs.capacity()
            + self.func.capacity()
            + self.admissible.capacity()
            + self.admissible.iter().map(Vec::capacity).sum::<usize>()
    }

    /// Live instance ids, ascending.
    pub fn keys(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| InstanceId(i as u64))
    }

    /// Live instances in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &Instance> {
        self.slots.iter().filter_map(Option::as_ref)
    }
}

impl std::ops::Index<&InstanceId> for InstanceSlab {
    type Output = Instance;

    #[inline]
    fn index(&self, id: &InstanceId) -> &Instance {
        self.get(id).expect("live instance")
    }
}

impl std::ops::Index<InstanceId> for InstanceSlab {
    type Output = Instance;

    #[inline]
    fn index(&self, id: InstanceId) -> &Instance {
        self.get(&id).expect("live instance")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::instance::{Instance, StageTimings};
    use ffs_dag::PipelinePartition;
    use ffs_mig::{GpuId, NodeId, SliceId, SliceProfile};
    use ffs_pipeline::plan::StagePlan;
    use ffs_pipeline::{DeploymentPlan, InstanceEstimate};
    use ffs_sim::SimTime;

    fn inst(id: u64) -> Instance {
        let nodes = vec![ffs_dag::NodeId(0)];
        let plan = DeploymentPlan {
            partition: PipelinePartition::new(vec![nodes.clone()]),
            stages: vec![StagePlan {
                nodes,
                slice: SliceId::new(GpuId(0), 0),
                profile: SliceProfile::G1_10,
                mem_gb: 1.0,
            }],
            cv: 0.0,
        };
        Instance::new(
            InstanceId(id),
            0,
            plan,
            InstanceEstimate {
                latency_ms: 1.0,
                bottleneck_ms: 1.0,
                throughput_rps: 1.0,
            },
            StageTimings::zero(1),
            NodeId(0),
            SimTime::ZERO,
            SimTime::ZERO,
        )
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = InstanceSlab::new();
        assert!(slab.is_empty());
        slab.insert(InstanceId(3), inst(3), 100.0);
        slab.insert(InstanceId(1), inst(1), 100.0);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(&InstanceId(3)).unwrap().id, InstanceId(3));
        assert!(slab.get(&InstanceId(2)).is_none());
        assert_eq!(slab.remove(&InstanceId(3)).unwrap().id, InstanceId(3));
        assert!(slab.remove(&InstanceId(3)).is_none(), "double remove");
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn iteration_is_ascending_by_id() {
        let mut slab = InstanceSlab::new();
        for id in [5u64, 2, 9, 1] {
            slab.insert(InstanceId(id), inst(id), 100.0);
        }
        slab.remove(&InstanceId(2));
        let ids: Vec<u64> = slab.keys().map(|i| i.0).collect();
        assert_eq!(ids, vec![1, 5, 9]);
        let vals: Vec<u64> = slab.values().map(|i| i.id.0).collect();
        assert_eq!(vals, vec![1, 5, 9]);
    }

    #[test]
    fn hot_columns_track_lifecycle_and_load() {
        let mut slab = InstanceSlab::new();
        let id = InstanceId(2);
        slab.insert(id, inst(2), 100.0);
        // inst() launches with bottleneck 1.0ms → cap floor(100/1) = 100.
        assert_eq!(slab.phase_tag(id), PhaseTag::Launching);
        assert_eq!(slab.admit_cap_of(id), 100);
        assert_eq!(slab.occupancy_of(id), 0);
        assert!(!slab.has_admission_capacity(id), "not ready yet");

        slab.set_phase(&id, Phase::Ready);
        assert_eq!(slab.phase_tag(id), PhaseTag::Ready);
        assert!(slab.get(&id).unwrap().is_ready(), "record stays in sync");
        assert!(slab.has_admission_capacity(id));

        slab.note_admitted(id);
        slab.get_mut(&id).unwrap().stage_queues[0].push_back(7);
        assert_eq!(slab.occupancy_of(id), 1);
        slab.get_mut(&id).unwrap().stage_queues[0].pop_front();
        slab.get_mut(&id).unwrap().stage_busy[0] = Some(7);
        slab.note_stage_started(id, 1);
        assert_eq!(slab.busy_gpcs_total(), 1);
        slab.debug_assert_hot_consistent();
        slab.get_mut(&id).unwrap().stage_busy[0] = None;
        slab.note_stage_finished(id, 1, true);
        assert_eq!(slab.occupancy_of(id), 0);
        assert_eq!(slab.busy_gpcs_total(), 0);
        slab.debug_assert_hot_consistent();

        slab.remove(&id);
        assert_eq!(slab.phase_tag(id), PhaseTag::Empty);
        assert_eq!(slab.phase_tag(InstanceId(99)), PhaseTag::Empty);
    }

    #[test]
    fn clear_for_reuse_keeps_capacity() {
        let mut slab = InstanceSlab::new();
        for id in 0..16u64 {
            slab.insert(InstanceId(id), inst(id), 100.0);
        }
        let cap = slab.retained_capacity();
        assert!(cap > 0);
        slab.clear_for_reuse();
        assert!(slab.is_empty());
        assert_eq!(slab.retained_capacity(), cap);
        // Reusable: fresh inserts behave normally.
        slab.insert(InstanceId(0), inst(0), 100.0);
        assert_eq!(slab.len(), 1);
        slab.debug_assert_hot_consistent();
    }
}
