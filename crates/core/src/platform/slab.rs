//! Id-indexed instance storage: the engine's live-instance table as a
//! slab instead of an ordered map.
//!
//! Instance ids are handed out by a monotonic counter and never reused,
//! so `InstanceId(n)` can index a `Vec` directly: every lookup on the
//! per-event hot path (routing, stage completion, transfers) is one
//! bounds-checked array access instead of a `BTreeMap` descent. Iteration
//! walks the slots in index order, which is exactly the ascending-id
//! order the `BTreeMap` used to give — policy code that depends on
//! first-by-id tie-breaking (FIFO routing, global retire sweeps) is
//! unaffected by the swap.
//!
//! Slots of retired instances stay as `None` tombstones; the vector's
//! length is the highest id ever live, which stays small (hundreds) for
//! any realistic run because launches are rate-limited per scale tick.

use crate::instance::Instance;
use crate::platform::events::InstanceId;

/// The engine's live-instance table, indexed by [`InstanceId`].
#[derive(Default)]
pub struct InstanceSlab {
    slots: Vec<Option<Instance>>,
    live: usize,
}

impl InstanceSlab {
    /// An empty table.
    pub fn new() -> Self {
        InstanceSlab::default()
    }

    /// Number of live instances.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no instance is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The live instance with id `id`, if any.
    #[inline]
    pub fn get(&self, id: &InstanceId) -> Option<&Instance> {
        self.slots.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// Mutable access to the live instance with id `id`, if any.
    #[inline]
    pub fn get_mut(&mut self, id: &InstanceId) -> Option<&mut Instance> {
        self.slots.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    /// Inserts an instance under `id`. Ids come from the engine's
    /// monotonic counter, so the slot is always fresh.
    pub fn insert(&mut self, id: InstanceId, inst: Instance) {
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        debug_assert!(self.slots[idx].is_none(), "instance id reused");
        self.slots[idx] = Some(inst);
        self.live += 1;
    }

    /// Removes and returns the instance under `id`, if live.
    pub fn remove(&mut self, id: &InstanceId) -> Option<Instance> {
        let taken = self.slots.get_mut(id.0 as usize).and_then(Option::take);
        if taken.is_some() {
            self.live -= 1;
        }
        taken
    }

    /// Live instance ids, ascending.
    pub fn keys(&self) -> impl Iterator<Item = InstanceId> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_some())
            .map(|(i, _)| InstanceId(i as u64))
    }

    /// Live instances in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &Instance> {
        self.slots.iter().filter_map(Option::as_ref)
    }
}

impl std::ops::Index<&InstanceId> for InstanceSlab {
    type Output = Instance;

    #[inline]
    fn index(&self, id: &InstanceId) -> &Instance {
        self.get(id).expect("live instance")
    }
}

impl std::ops::Index<InstanceId> for InstanceSlab {
    type Output = Instance;

    #[inline]
    fn index(&self, id: InstanceId) -> &Instance {
        self.get(&id).expect("live instance")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::instance::{Instance, StageTimings};
    use ffs_dag::PipelinePartition;
    use ffs_mig::{GpuId, NodeId, SliceId, SliceProfile};
    use ffs_pipeline::plan::StagePlan;
    use ffs_pipeline::{DeploymentPlan, InstanceEstimate};
    use ffs_sim::SimTime;

    fn inst(id: u64) -> Instance {
        let nodes = vec![ffs_dag::NodeId(0)];
        let plan = DeploymentPlan {
            partition: PipelinePartition::new(vec![nodes.clone()]),
            stages: vec![StagePlan {
                nodes,
                slice: SliceId::new(GpuId(0), 0),
                profile: SliceProfile::G1_10,
                mem_gb: 1.0,
            }],
            cv: 0.0,
        };
        Instance::new(
            InstanceId(id),
            0,
            plan,
            InstanceEstimate {
                latency_ms: 1.0,
                bottleneck_ms: 1.0,
                throughput_rps: 1.0,
            },
            StageTimings::zero(1),
            NodeId(0),
            SimTime::ZERO,
            SimTime::ZERO,
        )
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut slab = InstanceSlab::new();
        assert!(slab.is_empty());
        slab.insert(InstanceId(3), inst(3));
        slab.insert(InstanceId(1), inst(1));
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(&InstanceId(3)).unwrap().id, InstanceId(3));
        assert!(slab.get(&InstanceId(2)).is_none());
        assert_eq!(slab.remove(&InstanceId(3)).unwrap().id, InstanceId(3));
        assert!(slab.remove(&InstanceId(3)).is_none(), "double remove");
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn iteration_is_ascending_by_id() {
        let mut slab = InstanceSlab::new();
        for id in [5u64, 2, 9, 1] {
            slab.insert(InstanceId(id), inst(id));
        }
        slab.remove(&InstanceId(2));
        let ids: Vec<u64> = slab.keys().map(|i| i.0).collect();
        assert_eq!(ids, vec![1, 5, 9]);
        let vals: Vec<u64> = slab.values().map(|i| i.id.0).collect();
        assert_eq!(vals, vec![1, 5, 9]);
    }
}
