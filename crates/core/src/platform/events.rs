//! The event alphabet shared by all simulated platforms.

use crate::chaos::FaultTarget;

/// Identifier of a launched instance (monotone counter).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u64);

/// Events driving a serverless platform simulation. Systems ignore the
/// variants they do not use (e.g. the baselines never see shared-slice
/// events).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// Request `id` (index into the run's request table) arrives at the
    /// controller.
    Arrival(u64),
    /// A launching instance finished its cold start and is ready.
    InstanceReady(InstanceId),
    /// Stage `stage` of an instance finished executing request `req`.
    StageDone {
        /// The instance.
        inst: InstanceId,
        /// The stage index.
        stage: usize,
        /// The request.
        req: u64,
    },
    /// Request `req` finished crossing the boundary into `stage` of an
    /// instance (host-shared-memory transfer done).
    TransferDone {
        /// The instance.
        inst: InstanceId,
        /// The destination stage.
        stage: usize,
        /// The request.
        req: u64,
    },
    /// A shared (time-sharing) slice finished evicting/reloading and can
    /// start executing request `req`.
    SharedLoadDone {
        /// Index into the shared-slice pool.
        slot: usize,
        /// The request.
        req: u64,
    },
    /// A shared slice finished executing request `req`.
    SharedDone {
        /// Index into the shared-slice pool.
        slot: usize,
        /// The request.
        req: u64,
    },
    /// Periodic autoscale / migration / state-transition check.
    ScaleTick,
    /// Keep-alive expiry check for function `f`'s time-sharing lineage.
    KeepAlive(usize),
    /// A fault fires against the target (chaos timeline).
    Fault(FaultTarget),
    /// Repair begins for a previously-failed target (reconfiguration
    /// starts; the target is still out of service).
    Repair(FaultTarget),
    /// A repaired target's slices re-enter placement.
    Recover(FaultTarget),
    /// Request `req` re-enters the controller after a fault-driven backoff.
    Retry(u64),
}

impl Event {
    /// Stable snake_case tag for trace/diagnostic output.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Arrival(_) => "arrival",
            Event::InstanceReady(_) => "instance_ready",
            Event::StageDone { .. } => "stage_done",
            Event::TransferDone { .. } => "transfer_done",
            Event::SharedLoadDone { .. } => "shared_load_done",
            Event::SharedDone { .. } => "shared_done",
            Event::ScaleTick => "scale_tick",
            Event::KeepAlive(_) => "keep_alive",
            Event::Fault(_) => "fault",
            Event::Repair(_) => "repair",
            Event::Recover(_) => "recover",
            Event::Retry(_) => "retry",
        }
    }
}
