//! The event alphabet shared by all simulated platforms.

use crate::chaos::FaultTarget;

/// Identifier of a launched instance (monotone counter).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u64);

/// Events driving a serverless platform simulation. Systems ignore the
/// variants they do not use (e.g. the baselines never see shared-slice
/// events).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// Request `id` (index into the run's request table) arrives at the
    /// controller.
    Arrival(u64),
    /// A launching instance finished its cold start and is ready.
    InstanceReady(InstanceId),
    /// Stage `stage` of an instance finished executing request `req`.
    StageDone {
        /// The instance.
        inst: InstanceId,
        /// The stage index.
        stage: usize,
        /// The request.
        req: u64,
    },
    /// Request `req` finished crossing the boundary into `stage` of an
    /// instance (host-shared-memory transfer done).
    TransferDone {
        /// The instance.
        inst: InstanceId,
        /// The destination stage.
        stage: usize,
        /// The request.
        req: u64,
    },
    /// A shared (time-sharing) slice finished evicting/reloading and can
    /// start executing request `req`.
    SharedLoadDone {
        /// Index into the shared-slice pool.
        slot: usize,
        /// The request.
        req: u64,
    },
    /// A shared slice finished executing request `req`.
    SharedDone {
        /// Index into the shared-slice pool.
        slot: usize,
        /// The request.
        req: u64,
    },
    /// Periodic autoscale / migration / state-transition check.
    ScaleTick,
    /// Keep-alive expiry check for function `f`'s time-sharing lineage.
    KeepAlive(usize),
    /// A fault fires against the target (chaos timeline).
    Fault(FaultTarget),
    /// Repair begins for a previously-failed target (reconfiguration
    /// starts; the target is still out of service).
    Repair(FaultTarget),
    /// A repaired target's slices re-enter placement.
    Recover(FaultTarget),
    /// Request `req` re-enters the controller after a fault-driven backoff.
    Retry(u64),
}

impl Event {
    /// [`Event::kind_index`] of `Arrival`.
    pub const KIND_ARRIVAL: u16 = 0;
    /// [`Event::kind_index`] of `InstanceReady`.
    pub const KIND_INSTANCE_READY: u16 = 1;
    /// [`Event::kind_index`] of `StageDone`.
    pub const KIND_STAGE_DONE: u16 = 2;
    /// [`Event::kind_index`] of `TransferDone`.
    pub const KIND_TRANSFER_DONE: u16 = 3;
    /// [`Event::kind_index`] of `SharedLoadDone`.
    pub const KIND_SHARED_LOAD_DONE: u16 = 4;
    /// [`Event::kind_index`] of `SharedDone`.
    pub const KIND_SHARED_DONE: u16 = 5;
    /// [`Event::kind_index`] of every cold control variant (`ScaleTick`,
    /// `KeepAlive`, faults, `Retry`). They share one kind: grouping only
    /// has to keep the *hot* run loops homogeneous, and lumping the rare
    /// variants together avoids splitting a batch over distinctions the
    /// dispatcher's fallback arm ignores anyway.
    pub const KIND_CONTROL: u16 = 6;

    /// Dense discriminant for the engine's kind-homogeneous batch
    /// dispatch: `run_until` groups same-timestamp events by this value
    /// and the engine's `handle_run` matches on it once per run.
    #[inline]
    pub fn kind_index(&self) -> u16 {
        match self {
            Event::Arrival(_) => Self::KIND_ARRIVAL,
            Event::InstanceReady(_) => Self::KIND_INSTANCE_READY,
            Event::StageDone { .. } => Self::KIND_STAGE_DONE,
            Event::TransferDone { .. } => Self::KIND_TRANSFER_DONE,
            Event::SharedLoadDone { .. } => Self::KIND_SHARED_LOAD_DONE,
            Event::SharedDone { .. } => Self::KIND_SHARED_DONE,
            Event::ScaleTick
            | Event::KeepAlive(_)
            | Event::Fault(_)
            | Event::Repair(_)
            | Event::Recover(_)
            | Event::Retry(_) => Self::KIND_CONTROL,
        }
    }

    /// Stable snake_case tag for trace/diagnostic output.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Arrival(_) => "arrival",
            Event::InstanceReady(_) => "instance_ready",
            Event::StageDone { .. } => "stage_done",
            Event::TransferDone { .. } => "transfer_done",
            Event::SharedLoadDone { .. } => "shared_load_done",
            Event::SharedDone { .. } => "shared_done",
            Event::ScaleTick => "scale_tick",
            Event::KeepAlive(_) => "keep_alive",
            Event::Fault(_) => "fault",
            Event::Repair(_) => "repair",
            Event::Recover(_) => "recover",
            Event::Retry(_) => "retry",
        }
    }
}
