//! MQFQ-Sticky fair queueing: the third policy family, after FluidFaaS
//! and the monolithic baselines.
//!
//! Per-function *flows* carry virtual start/finish tags; a global virtual
//! clock advances to the minimum start tag among backlogged flows, and
//! each dispatch charges the flow `service / weight` of virtual time, so
//! backlogged flows receive GPU service proportional to their weights
//! regardless of arrival burstiness. Two serverless-specific refinements
//! (after *MQFQ-Sticky: Fair Queueing For Serverless GPU Functions*):
//!
//! * **Sticky affinity** — a flow remembers the GPU it last executed on
//!   and is preferred there (where its model is still resident) as long
//!   as its start tag stays within a configurable *stickiness window* of
//!   the fairest choice, trading a bounded amount of short-term fairness
//!   for fewer eviction/reload cycles.
//! * **Throttling** — a flow whose start tag has run more than a
//!   *throttle window* ahead of the virtual clock is ineligible until the
//!   clock catches up, preventing a single hot function from monopolising
//!   slots between scale ticks.
//!
//! The bundle reuses the FluidFaaS autoscaler, placer and migrator: MQFQ
//! changes *who is served next*, not how instances are provisioned.

use std::sync::{Arc, Mutex};

use ffs_sim::{Scheduler, SimDuration, SimTime};
use ffs_telemetry::{span, Phase as TelemetryPhase};

use crate::config::FfsConfig;
use crate::keepalive::Transition;
use crate::platform::catalog::FuncId;
use crate::platform::engine::{sref, EngineCore};
use crate::platform::events::{Event, InstanceId};
use crate::platform::policy::{
    route_to_instance, should_overflow_to_shared, PolicyBundle, Router, SharedPoolPolicy,
};
use crate::system::{grow_pool, FluidAutoscaler, FluidMigrator, FluidPlacer};

/// Tuning knobs of the MQFQ-Sticky policy. The defaults reproduce the
/// fairness experiments; they are constructor parameters rather than
/// `FfsConfig` fields so the existing three systems' configs (and their
/// goldens) are untouched.
#[derive(Clone, Copy, Debug)]
pub struct MqfqParams {
    /// How far (virtual ms) a sticky/resident flow's start tag may exceed
    /// the minimum backlogged start tag and still be preferred on its
    /// sticky device.
    pub stickiness_window_ms: f64,
    /// How far (virtual ms) a flow's start tag may run ahead of the
    /// global virtual clock before the flow is throttled.
    pub throttle_window_ms: f64,
}

impl Default for MqfqParams {
    fn default() -> Self {
        MqfqParams {
            // One typical inference service time of locality headroom, and
            // a generous burst budget before throttling kicks in.
            stickiness_window_ms: 250.0,
            throttle_window_ms: 2_000.0,
        }
    }
}

/// Per-function flow bookkeeping.
#[derive(Clone, Copy, Debug)]
struct FlowState {
    /// Virtual finish tag of the flow's last dispatched request.
    finish_tag: f64,
    /// Service share weight (default 1.0 — equal shares).
    weight: f64,
    /// The GPU the flow last executed on, if any.
    sticky_gpu: Option<u16>,
}

impl Default for FlowState {
    fn default() -> Self {
        FlowState {
            finish_tag: 0.0,
            weight: 1.0,
            sticky_gpu: None,
        }
    }
}

/// The fair-queueing state shared by the MQFQ router and shared-pool
/// policy: flow tags plus the global virtual clock.
///
/// All tag arithmetic lives here, engine-free, so the virtual-time
/// invariants are table-testable without running a simulation.
#[derive(Debug)]
pub struct MqfqState {
    params: MqfqParams,
    vt: f64,
    flows: Vec<FlowState>,
}

impl MqfqState {
    /// Fresh state at virtual time zero.
    pub fn new(params: MqfqParams) -> Self {
        MqfqState {
            params,
            vt: 0.0,
            flows: Vec::new(),
        }
    }

    /// The global virtual clock.
    pub fn virtual_time(&self) -> f64 {
        self.vt
    }

    fn flow(&self, f: FuncId) -> FlowState {
        self.flows.get(f).copied().unwrap_or_default()
    }

    fn flow_mut(&mut self, f: FuncId) -> &mut FlowState {
        if f >= self.flows.len() {
            self.flows.resize_with(f + 1, FlowState::default);
        }
        &mut self.flows[f]
    }

    /// Sets a flow's service-share weight (must be positive).
    pub fn set_weight(&mut self, f: FuncId, weight: f64) {
        debug_assert!(weight > 0.0, "flow weight must be positive");
        self.flow_mut(f).weight = weight.max(f64::MIN_POSITIVE);
    }

    /// The virtual start tag the flow's next request would be served at:
    /// `max(VT, finish_tag)`. Clamping to the clock is what keeps idle
    /// flows from banking credit — a lapsed finish tag is forgotten the
    /// moment the clock passes it.
    pub fn start_tag(&self, f: FuncId) -> f64 {
        self.flow(f).finish_tag.max(self.vt)
    }

    /// True when the flow may be served now: its start tag has not run
    /// more than the throttle window ahead of the virtual clock.
    pub fn eligible(&self, f: FuncId) -> bool {
        self.start_tag(f) <= self.vt + self.params.throttle_window_ms
    }

    /// Advances the virtual clock to the minimum start tag among the
    /// `backlogged` flows (never backwards). With no backlog the clock
    /// holds — virtual time only moves when there is work to meter.
    pub fn advance_vt<I: IntoIterator<Item = FuncId>>(&mut self, backlogged: I) {
        let mut min_start: Option<f64> = None;
        for f in backlogged {
            let s = self.start_tag(f);
            min_start = Some(match min_start {
                None => s,
                Some(m) => m.min(s),
            });
        }
        if let Some(m) = min_start {
            self.vt = self.vt.max(m);
        }
    }

    /// Charges one dispatch of `service_ms` to flow `f`: the request is
    /// stamped `start = max(VT, finish)` and the flow's finish tag moves
    /// to `start + service/weight`. Returns the start tag used.
    pub fn charge(&mut self, f: FuncId, service_ms: f64) -> f64 {
        let start = self.start_tag(f);
        let flow = self.flow_mut(f);
        flow.finish_tag = start + service_ms.max(0.0) / flow.weight;
        start
    }

    /// The flow's sticky GPU, if it has executed before.
    pub fn sticky_gpu(&self, f: FuncId) -> Option<u16> {
        self.flow(f).sticky_gpu
    }

    /// Records that `f` just executed on `gpu`.
    pub fn set_sticky_gpu(&mut self, f: FuncId, gpu: u16) {
        self.flow_mut(f).sticky_gpu = Some(gpu);
    }

    /// Picks the next flow to serve from `candidates` (`(flow, sticky)`
    /// pairs, where `sticky` marks flows that would avoid a model reload
    /// on the device being scheduled — resident there or sticky-affine to
    /// it). Throttled flows are skipped. The fairest pick is the minimum
    /// start tag (ties to the lower flow id, keeping the choice
    /// deterministic); a sticky candidate within the stickiness window of
    /// that minimum is preferred over it.
    pub fn pick_flow<I>(&self, candidates: I) -> Option<FuncId>
    where
        I: IntoIterator<Item = (FuncId, bool)>,
    {
        let mut fairest: Option<(f64, FuncId)> = None;
        let mut sticky_best: Option<(f64, FuncId)> = None;
        for (f, sticky) in candidates {
            if !self.eligible(f) {
                continue;
            }
            let s = self.start_tag(f);
            if fairest.is_none_or(|(bs, bf)| (s, f) < (bs, bf)) {
                fairest = Some((s, f));
            }
            if sticky && sticky_best.is_none_or(|(bs, bf)| (s, f) < (bs, bf)) {
                sticky_best = Some((s, f));
            }
        }
        let (min_start, min_flow) = fairest?;
        if let Some((s, f)) = sticky_best {
            if s <= min_start + self.params.stickiness_window_ms {
                return Some(f);
            }
        }
        Some(min_flow)
    }
}

/// Shared handle to the fair-queueing state. The engine is
/// single-threaded per run, so the mutex is uncontended; it exists only
/// because `Router`/`SharedPoolPolicy` implementations must be `Send`.
type SharedState = Arc<Mutex<MqfqState>>;

fn lock(state: &SharedState) -> std::sync::MutexGuard<'_, MqfqState> {
    // Poisoning requires a panic while holding the lock; the critical
    // sections below are pure tag arithmetic.
    state.lock().expect("mqfq state lock poisoned")
}

/// Advances the virtual clock from the engine's current backlog, under
/// the `vt_update` telemetry phase.
fn advance_clock(state: &mut MqfqState, core: &EngineCore) {
    let _vt = span(TelemetryPhase::VtUpdate);
    state.advance_vt(
        core.active_funcs
            .iter()
            .copied()
            .filter(|&f| !core.pending[f].is_empty()),
    );
}

/// The GPU hosting an instance's first stage (monolithic instances have
/// exactly one stage; for pipelines the first stage anchors affinity).
fn gpu_of_instance(core: &EngineCore, id: InstanceId) -> Option<u16> {
    core.instances
        .get(&id)
        .and_then(|i| i.plan.stages.first().map(|s| s.slice.gpu.0))
}

/// MQFQ routing: exclusive instances first (sticky GPU preferred), with
/// throttling against the virtual clock; overflow to the shared pool only
/// when waiting for exclusive capacity would blow the deadline, exactly
/// like the FluidFaaS router.
pub struct MqfqRouter {
    state: SharedState,
}

impl Router for MqfqRouter {
    fn dispatch(
        &self,
        core: &mut EngineCore,
        shared: &dyn SharedPoolPolicy,
        f: FuncId,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) {
        {
            let mut st = lock(&self.state);
            advance_clock(&mut st, core);
        }
        while let Some(&req) = core.pending[f].front() {
            if !lock(&self.state).eligible(f) {
                // Throttled: the flow ran ahead of the clock. The backlog
                // is retried on the next event for `f` and at every scale
                // tick, by which point dispatches elsewhere (or the tag
                // lapse) have let the clock catch up.
                break;
            }
            if self.route_to_exclusive(core, f, req, now, sched) {
                core.pending[f].pop_front();
                continue;
            }
            if should_overflow_to_shared(core, f, req, now) && shared.admit(core, f, now, sched) {
                continue;
            }
            break;
        }
    }
}

impl MqfqRouter {
    /// Routes to an admissible exclusive instance, preferring the flow's
    /// sticky GPU (where activations/weights are warmest) and falling
    /// back to the lowest-latency instance. Charges the flow's virtual
    /// tags with the chosen instance's service estimate.
    fn route_to_exclusive(
        &self,
        core: &mut EngineCore,
        f: FuncId,
        req: u64,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) -> bool {
        let sticky = lock(&self.state).sticky_gpu(f);
        let mut best: Option<(InstanceId, f64)> = None;
        let mut best_sticky: Option<(InstanceId, f64)> = None;
        for &idx in core.instances.admissible_of(f) {
            let id = InstanceId(idx as u64);
            let lat = core.instances.latency_ms_of(id);
            if best.is_none_or(|(_, b)| lat < b) {
                best = Some((id, lat));
            }
            if sticky.is_some()
                && gpu_of_instance(core, id) == sticky
                && best_sticky.is_none_or(|(_, b)| lat < b)
            {
                best_sticky = Some((id, lat));
            }
        }
        let Some((id, lat)) = best_sticky.or(best) else {
            return false;
        };
        {
            let mut st = lock(&self.state);
            st.charge(f, lat);
            if let Some(gpu) = gpu_of_instance(core, id) {
                st.set_sticky_gpu(f, gpu);
            }
        }
        route_to_instance(core, id, req, now, sched);
        let _ = req;
        true
    }
}

/// The MQFQ shared pool: slot mechanics (binding, growth, eviction,
/// reload) are FluidFaaS's; the *flow choice* at each idle slot is the
/// fair-queueing pick — minimum virtual start tag, sticky/resident flows
/// preferred within the stickiness window, throttled flows skipped.
pub struct MqfqSharedPool {
    state: SharedState,
}

impl SharedPoolPolicy for MqfqSharedPool {
    fn admit(
        &self,
        core: &mut EngineCore,
        f: FuncId,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) -> bool {
        let mem = core.catalog.profile(f).total_mem_gb();
        let slot_idx = match core.pool.slot_of(f) {
            Some(i) => i,
            None => {
                if core.pool.empty_fitting(mem).is_none() {
                    let _ = grow_pool(core, f, mem, now);
                }
                match core.pool.bind(f, mem) {
                    Some(i) => i,
                    None => return false,
                }
            }
        };
        core.ka[f] = core.ka[f].next_traced(Transition::RequestArrived, f as u32);
        self.dispatch_slot(core, slot_idx, now, sched)
    }

    fn dispatch_slot(
        &self,
        core: &mut EngineCore,
        slot_idx: usize,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) -> bool {
        if !core.pool.slot(slot_idx).is_free() {
            return false;
        }
        let slice_profile = core.pool.slot(slot_idx).slice.profile;
        let slice_id = core.pool.slot(slot_idx).slice.id;
        let slot_gpu = slice_id.gpu.0;
        let resident = core.pool.slot(slot_idx).resident;
        let picked = {
            let mut st = lock(&self.state);
            advance_clock(&mut st, core);
            // Candidates: bound flows with an overflow-eligible pending
            // head. `sticky` marks flows that avoid a reload on this
            // slice (resident here, or sticky-affine to this GPU).
            let mut candidates: Vec<(FuncId, bool)> = Vec::new();
            for i in 0..core.pool.slot(slot_idx).bound.len() {
                let f = core.pool.slot(slot_idx).bound[i];
                let Some(&req) = core.pending[f].front() else {
                    continue;
                };
                if !should_overflow_to_shared(core, f, req, now) {
                    continue;
                }
                let sticky = resident == Some(f) || st.sticky_gpu(f) == Some(slot_gpu);
                candidates.push((f, sticky));
            }
            let picked = st.pick_flow(candidates);
            if let Some(f) = picked {
                let load = if resident == Some(f) {
                    0.0
                } else {
                    core.load_all_ms[f]
                };
                // Charge the full slot occupancy (reload + execution):
                // virtual time meters the device time the flow consumes.
                let service = core.shared_exec_of(f, slice_profile) + load;
                st.charge(f, service);
                st.set_sticky_gpu(f, slot_gpu);
            }
            picked
        };
        let Some(f) = picked else {
            return false;
        };
        let Some(req) = core.pending[f].pop_front() else {
            // Unreachable: candidates were built from non-empty heads.
            debug_assert!(false, "picked flow lost its pending head");
            return false;
        };
        if resident == Some(f) {
            core.start_shared_exec(slot_idx, req, now, sched);
        } else {
            // Evict the resident (→ Warm) and reload `f` from CPU memory,
            // exactly as the FluidFaaS pool does.
            let evicted = core.pool.slot_mut(slot_idx).resident.take();
            let mut load_ms = core.load_all_ms[f];
            if let Some(g) = evicted {
                load_ms += core.load_all_ms[g];
                core.ka[g] = core.ka[g].next_traced(Transition::Evicted, g as u32);
                core.sched_log.evictions += 1;
                ffs_obs::record(|| ffs_obs::ObsEvent::Eviction {
                    func: g as u32,
                    reason: ffs_obs::EvictionReason::SliceContention,
                    slice: sref(slice_id),
                });
            }
            core.sched_log.reloads += 1;
            let slot = core.pool.slot_mut(slot_idx);
            slot.loading = Some((f, req));
            core.requests[req as usize].load_ms += load_ms;
            sched.after(
                SimDuration::from_millis_f64(load_ms),
                Event::SharedLoadDone {
                    slot: slot_idx,
                    req,
                },
            );
        }
        true
    }

    fn maintain(&self, core: &mut EngineCore, now: SimTime) {
        // Pool growth/shrink is fairness-neutral; reuse the FluidFaaS
        // maintenance verbatim.
        crate::system::FluidSharedPool.maintain(core, now);
    }
}

/// The MQFQ-Sticky policy bundle with default parameters.
pub fn mqfq_policies(cfg: &FfsConfig) -> PolicyBundle {
    mqfq_policies_with(cfg, MqfqParams::default())
}

/// The MQFQ-Sticky policy bundle with explicit parameters. The router and
/// shared pool share one fair-queueing state; provisioning (autoscaler,
/// placer, migrator) is FluidFaaS's.
pub fn mqfq_policies_with(cfg: &FfsConfig, params: MqfqParams) -> PolicyBundle {
    let state: SharedState = Arc::new(Mutex::new(MqfqState::new(params)));
    PolicyBundle {
        router: Box::new(MqfqRouter {
            state: Arc::clone(&state),
        }),
        shared: Box::new(MqfqSharedPool { state }),
        autoscaler: Box::new(FluidAutoscaler {
            policy: cfg.scaling_policy,
        }),
        migrator: Box::new(FluidMigrator),
        placer: Box::new(FluidPlacer {
            ranked: cfg.enable_cv_ranking,
        }),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn state(stickiness: f64, throttle: f64) -> MqfqState {
        MqfqState::new(MqfqParams {
            stickiness_window_ms: stickiness,
            throttle_window_ms: throttle,
        })
    }

    /// Drives `rounds` dispatches of `service_ms` each over permanently
    /// backlogged flows, returning per-flow dispatch counts.
    fn serve_backlogged(st: &mut MqfqState, flows: &[FuncId], rounds: usize) -> Vec<usize> {
        let mut counts = vec![0usize; flows.iter().copied().max().unwrap_or(0) + 1];
        for _ in 0..rounds {
            st.advance_vt(flows.iter().copied());
            let f = st
                .pick_flow(flows.iter().map(|&f| (f, false)))
                .expect("backlogged flows always yield a pick");
            st.charge(f, 100.0);
            counts[f] += 1;
        }
        counts
    }

    #[test]
    fn backlogged_flows_share_service_equally_by_default() {
        let mut st = state(0.0, f64::INFINITY);
        let counts = serve_backlogged(&mut st, &[0, 1, 2], 300);
        for (f, &count) in counts.iter().enumerate().take(3) {
            assert!(
                (99..=101).contains(&count),
                "flow {f} got {count} of 300 dispatches"
            );
        }
    }

    #[test]
    fn service_is_proportional_to_weights() {
        // Table: (weights, rounds, expected shares ±1 dispatch per flow).
        let table: &[(&[f64], usize)] = &[
            (&[1.0, 2.0], 300),
            (&[1.0, 3.0], 400),
            (&[2.0, 3.0, 5.0], 500),
        ];
        for &(weights, rounds) in table {
            let mut st = state(0.0, f64::INFINITY);
            let flows: Vec<FuncId> = (0..weights.len()).collect();
            for (f, &w) in weights.iter().enumerate() {
                st.set_weight(f, w);
            }
            let counts = serve_backlogged(&mut st, &flows, rounds);
            let total_w: f64 = weights.iter().sum();
            for (f, &w) in weights.iter().enumerate() {
                let expected = rounds as f64 * w / total_w;
                let got = counts[f] as f64;
                assert!(
                    (got - expected).abs() <= 2.0,
                    "weights {weights:?}: flow {f} got {got}, expected ~{expected}"
                );
            }
        }
    }

    #[test]
    fn idle_flows_do_not_accumulate_credit() {
        let mut st = state(0.0, f64::INFINITY);
        // Flow 1 is idle while flow 0 receives lots of service.
        for _ in 0..50 {
            st.advance_vt([0]);
            st.charge(0, 100.0);
        }
        st.advance_vt([0]);
        let vt = st.virtual_time();
        // When flow 1 wakes up its start tag is the *current* clock, not
        // its ancient finish tag: no banked credit, no burst of back-to-
        // back wins. It gets exactly one "free" win (its tag equals the
        // clock, flow 0's is one service ahead) and then alternates.
        assert_eq!(st.start_tag(1), vt);
        let counts = serve_backlogged(&mut st, &[0, 1], 100);
        assert!(
            counts[1] <= counts[0] + 2,
            "idle flow burst ahead: {counts:?}"
        );
        assert!((49..=51).contains(&counts[1]), "{counts:?}");
    }

    #[test]
    fn sticky_candidate_preferred_within_window() {
        let table: &[(f64, f64, FuncId)] = &[
            // (sticky flow's head start offset, window, expected pick)
            (100.0, 250.0, 1), // within the window: sticky wins
            (251.0, 250.0, 0), // outside: fairest (min tag) wins
            (0.0, 0.0, 1),     // zero window: only an equal tag stays sticky
        ];
        for &(offset, window, expected) in table {
            let mut st = state(window, f64::INFINITY);
            st.advance_vt([0]);
            // Flow 1 is `offset` ahead of flow 0 in virtual time.
            st.charge(1, offset);
            let picked = st.pick_flow([(0, false), (1, true)]).unwrap();
            assert_eq!(
                picked, expected,
                "offset {offset}, window {window}: picked {picked}"
            );
        }
    }

    #[test]
    fn throttled_flows_are_skipped_until_clock_catches_up() {
        let mut st = state(0.0, 500.0);
        // Flow 0 burns far ahead of the clock (nothing else backlogged,
        // clock pinned at 0 until advance).
        for _ in 0..10 {
            st.charge(0, 100.0);
        }
        assert!(!st.eligible(0), "1000ms ahead with a 500ms window");
        assert_eq!(st.pick_flow([(0, false)]), None);
        // Flow 1 is eligible and picked despite flow 0's earlier arrival.
        assert_eq!(st.pick_flow([(0, false), (1, false)]), Some(1));
        // Once only flow 0 is backlogged, the clock advances to its tag
        // and it becomes eligible again.
        st.advance_vt([0]);
        assert!(st.eligible(0));
        assert_eq!(st.pick_flow([(0, false)]), Some(0));
    }

    #[test]
    fn vt_never_moves_backwards_and_holds_without_backlog() {
        let mut st = state(0.0, f64::INFINITY);
        st.charge(0, 100.0);
        st.advance_vt([0]);
        let vt = st.virtual_time();
        assert!(vt >= 100.0);
        st.advance_vt(std::iter::empty());
        assert_eq!(st.virtual_time(), vt, "no backlog: clock holds");
        st.advance_vt([1]); // fresh flow at the clock
        assert_eq!(st.virtual_time(), vt, "clock never re-reads below itself");
    }

    #[test]
    fn pick_breaks_ties_by_flow_id() {
        let st = state(0.0, f64::INFINITY);
        assert_eq!(st.pick_flow([(2, false), (1, false), (3, false)]), Some(1));
    }
}
