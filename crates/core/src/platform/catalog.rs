//! The function catalog: one registered FluidFaaS function per application,
//! profiled offline.

use ffs_profile::{App, FunctionProfile, PerfModel};
use ffs_trace::WorkloadClass;

/// Index of a function in the catalog.
pub type FuncId = usize;

/// The set of functions a platform run serves, with their profiles and SLO
/// budgets.
#[derive(Clone, Debug)]
pub struct FunctionCatalog {
    profiles: Vec<FunctionProfile>,
    slo_ms: Vec<f64>,
}

impl FunctionCatalog {
    /// Builds the catalog for a workload class: every participating app at
    /// the class's variant, with SLO = `slo_scale` x reference latency.
    pub fn for_workload(workload: WorkloadClass, slo_scale: f64, perf: &PerfModel) -> Self {
        let variant = workload.variant();
        let profiles: Vec<FunctionProfile> = workload
            .apps()
            .into_iter()
            .map(|app| FunctionProfile::build(app, variant, perf))
            .collect();
        let slo_ms = profiles
            .iter()
            .map(|p| slo_scale * p.reference_latency_ms())
            .collect();
        FunctionCatalog { profiles, slo_ms }
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The profile of a function.
    pub fn profile(&self, f: FuncId) -> &FunctionProfile {
        &self.profiles[f]
    }

    /// All function ids.
    pub fn ids(&self) -> impl Iterator<Item = FuncId> {
        0..self.profiles.len()
    }

    /// The SLO latency budget (ms) of a function.
    pub fn slo_ms(&self, f: FuncId) -> f64 {
        self.slo_ms[f]
    }

    /// Finds the function serving an app.
    pub fn func_of(&self, app: App) -> Option<FuncId> {
        self.profiles.iter().position(|p| p.app == app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffs_trace::WorkloadClass;

    #[test]
    fn medium_catalog_has_all_four_apps() {
        let cat = FunctionCatalog::for_workload(WorkloadClass::Medium, 1.5, &PerfModel::default());
        assert_eq!(cat.len(), 4);
        for f in cat.ids() {
            assert!(cat.slo_ms(f) > 0.0);
            assert!((cat.slo_ms(f) - 1.5 * cat.profile(f).reference_latency_ms()).abs() < 1e-9);
        }
    }

    #[test]
    fn heavy_catalog_excludes_null_row() {
        let cat = FunctionCatalog::for_workload(WorkloadClass::Heavy, 1.5, &PerfModel::default());
        assert_eq!(cat.len(), 3);
        assert!(cat.func_of(App::ExpandedImageClassification).is_none());
        assert!(cat.func_of(App::ImageClassification).is_some());
    }
}
