//! Per-run state recycling: thread-local pools of the big per-run
//! containers, so `run_matrix` workers pay construction and teardown once
//! per thread instead of once per run.
//!
//! A simulation run allocates three container families whose capacity is
//! expensive to build and trivial to recycle:
//!
//! * the event scheduler (8192 pre-allocated wheel slots plus the far
//!   heap / preload stream),
//! * the request table (one record per trace invocation),
//! * the instance slab (spine plus seven SoA hot columns).
//!
//! `RunArena` keeps drained-and-reset instances of each in a
//! thread-local pool. `run_platform` borrows a scheduler for the run's
//! duration; `EngineCore` borrows its request buffer and slab at
//! construction and hands both back on drop. Teardown of a run is thereby
//! O(1) amortised — containers are cleared (retaining capacity), not
//! freed — and the next run on the same worker thread starts with
//! warm capacity.
//!
//! Reuse is bit-neutral by construction: a reset scheduler is
//! indistinguishable from a fresh one (`Scheduler::reset` restores
//! seq/cursor/clock state exactly; see its unit test), a cleared `Vec`
//! refilled from the trace holds identical records, and a cleared slab is
//! empty. The experiments crate pins this down with a byte-identical
//! `run_matrix` comparison across 1/2/4 workers (different worker counts
//! exercise different reuse interleavings).
//!
//! The pools also publish [`ArenaStats`] so the allocation tests can
//! assert the steady state: after one warm-up run per thread, further runs
//! take every container from the pool (`fresh` stays flat) and capacity
//! stops growing.

use std::cell::RefCell;

use ffs_sim::Scheduler;

use super::events::Event;
use super::request::RequestState;
use super::slab::InstanceSlab;

/// Pool size cap per container family. One run holds at most one of each,
/// so the cap only matters when many engines coexist on a thread (tests);
/// beyond it, returned containers are simply dropped.
const MAX_POOLED: usize = 8;

/// Counters describing the calling thread's arena behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Containers constructed because the pool was empty.
    pub fresh: u64,
    /// Containers recycled from the pool.
    pub reused: u64,
}

#[derive(Default)]
struct RunArena {
    schedulers: Vec<Scheduler<Event>>,
    request_bufs: Vec<Vec<RequestState>>,
    slabs: Vec<InstanceSlab>,
    stats: ArenaStats,
}

thread_local! {
    static ARENA: RefCell<RunArena> = RefCell::new(RunArena::default());
}

fn with<R>(f: impl FnOnce(&mut RunArena) -> R) -> R {
    ARENA.with(|a| f(&mut a.borrow_mut()))
}

/// This thread's arena counters so far.
pub fn arena_stats() -> ArenaStats {
    with(|a| a.stats)
}

/// Total element capacity currently parked in this thread's pools.
/// Meaningful between runs (while the containers are stored); the
/// zero-growth test asserts it stays flat once a worker has seen its
/// biggest run.
pub fn pooled_capacity() -> usize {
    with(|a| {
        let sched: usize = a.schedulers.iter().map(Scheduler::retained_capacity).sum();
        let reqs: usize = a.request_bufs.iter().map(Vec::capacity).sum();
        let slabs: usize = a.slabs.iter().map(InstanceSlab::retained_capacity).sum();
        sched + reqs + slabs
    })
}

/// Borrows a scheduler: reset from the pool, or fresh with far-heap
/// capacity for `cap` pending events.
pub fn take_scheduler(cap: usize) -> Scheduler<Event> {
    with(|a| match a.schedulers.pop() {
        Some(s) => {
            a.stats.reused += 1;
            s
        }
        None => {
            a.stats.fresh += 1;
            Scheduler::with_capacity(cap)
        }
    })
}

/// Returns a scheduler to the pool (reset, capacity retained).
pub fn store_scheduler(mut s: Scheduler<Event>) {
    s.reset();
    with(|a| {
        if a.schedulers.len() < MAX_POOLED {
            a.schedulers.push(s);
        }
    });
}

/// Borrows an empty request buffer with warm capacity.
pub fn take_request_buffer() -> Vec<RequestState> {
    with(|a| match a.request_bufs.pop() {
        Some(v) => {
            a.stats.reused += 1;
            debug_assert!(v.is_empty());
            v
        }
        None => {
            a.stats.fresh += 1;
            Vec::new()
        }
    })
}

/// Returns a request buffer to the pool (cleared, capacity retained).
pub fn store_request_buffer(mut v: Vec<RequestState>) {
    v.clear();
    with(|a| {
        if a.request_bufs.len() < MAX_POOLED {
            a.request_bufs.push(v);
        }
    });
}

/// Borrows an empty instance slab with warm spine/column capacity.
pub fn take_slab() -> InstanceSlab {
    with(|a| match a.slabs.pop() {
        Some(s) => {
            a.stats.reused += 1;
            debug_assert!(s.is_empty());
            s
        }
        None => {
            a.stats.fresh += 1;
            InstanceSlab::new()
        }
    })
}

/// Returns an instance slab to the pool (cleared, capacity retained).
pub fn store_slab(mut s: InstanceSlab) {
    s.clear_for_reuse();
    with(|a| {
        if a.slabs.len() < MAX_POOLED {
            a.slabs.push(s);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn containers_recycle_through_the_pool() {
        // Drain whatever earlier engine constructions on this test thread
        // left behind so the take/store pairing below is deterministic.
        with(|a| {
            a.schedulers.clear();
            a.request_bufs.clear();
            a.slabs.clear();
        });
        let before = arena_stats();
        let s = take_scheduler(16);
        store_scheduler(s);
        let s = take_scheduler(16);
        store_scheduler(s);
        let after = arena_stats();
        assert_eq!(after.fresh, before.fresh + 1, "second take must reuse");
        assert_eq!(after.reused, before.reused + 1);

        let mut v = take_request_buffer();
        v.reserve(100);
        let cap = v.capacity();
        store_request_buffer(v);
        let v = take_request_buffer();
        assert!(v.is_empty());
        assert!(v.capacity() >= cap, "capacity must survive the pool");
        store_request_buffer(v);
    }
}
