//! The trace runner: drives any platform through a trace and collects the
//! run's metrics.

use ffs_metrics::{CostReport, LatencyCdf, RequestLog};
use ffs_sim::{run_until, Scheduler, SimDuration, SimTime, World};
use ffs_trace::Trace;

use super::events::Event;
use super::hub::MetricsHub;

/// A simulated serverless platform: an event-driven [`World`] that can
/// finalise and surrender its metrics.
pub trait Platform: World<Event = Event> {
    /// How long after the last arrival the run drains before finalising.
    fn drain(&self) -> SimDuration;

    /// Called once at the end of the run: record still-unfinished requests
    /// as SLO misses and close any open accounting intervals that are not
    /// handled by the cost tracker's own finalisation.
    fn finalize(&mut self, end: SimTime);

    /// Surrenders the metrics hub (the platform is done after this).
    fn take_hub(&mut self) -> MetricsHub;

    /// Number of GPUs in the fleet (for per-GPU reports).
    fn num_gpus(&self) -> usize;

    /// Slices per GPU (for Figure 5 percentages).
    fn slices_per_gpu(&self) -> usize;

    /// Fault-injection counters for the run (zero when chaos is disabled
    /// or the platform does not support it).
    fn fault_stats(&self) -> FaultStats {
        FaultStats::default()
    }
}

/// Counters summarising a run's injected faults and recovery actions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Slices failed (each failed slice counts once per fault event).
    pub slice_failures: u64,
    /// Whole-GPU (XID-style) failures reported.
    pub gpu_failures: u64,
    /// Requests re-scheduled after their worker died.
    pub retries: u64,
    /// Requests dropped after exhausting the retry budget.
    pub retries_exhausted: u64,
    /// Pipelined/monolithic instances rebuilt after a fault.
    pub rebuilds: u64,
    /// Slices restored to service.
    pub recoveries: u64,
}

/// Everything a run produces.
#[derive(Debug)]
pub struct RunOutput {
    /// Per-request log.
    pub log: RequestLog,
    /// Cost report (GPU time / MIG time / occupied / active).
    pub cost: CostReport,
    /// Busy-GPC utilization curve `(t_secs, gpcs)`.
    pub busy_gpcs: Vec<(f64, f64)>,
    /// Allocated-GPC curve.
    pub allocated_gpcs: Vec<(f64, f64)>,
    /// Required (ideal) GPC curve.
    pub required_gpcs: Vec<(f64, f64)>,
    /// The simulated duration (trace + drain).
    pub duration: SimDuration,
    /// Slices per GPU (for occupancy percentages).
    pub slices_per_gpu: usize,
    /// Fault-injection counters (all zero on a fault-free run).
    pub faults: FaultStats,
}

impl RunOutput {
    /// The end-to-end latency CDF across all apps.
    pub fn latency_cdf(&self) -> LatencyCdf {
        LatencyCdf::new(self.log.latencies_ms())
    }

    /// The latency CDF for one app index.
    pub fn latency_cdf_for(&self, app_index: usize) -> LatencyCdf {
        LatencyCdf::new(self.log.latencies_ms_for(app_index))
    }

    /// Completed-request throughput (req/s) over the run.
    pub fn throughput_rps(&self) -> f64 {
        self.log.throughput_rps(self.duration)
    }
}

/// Runs a platform through a trace: schedules all arrivals plus the first
/// scale tick, runs to completion (trace end + drain), finalises metrics.
pub fn run_platform<P: Platform>(platform: &mut P, trace: &Trace) -> RunOutput {
    // All arrivals go in up front via the sorted bulk path (traces are
    // sorted by arrival), which keeps them out of the scheduler's overflow
    // heap; only dynamically scheduled far-future events pay heap ops.
    // The scheduler itself comes from the thread's run arena: 8192 wheel
    // slots are expensive to construct per run and trivial to reset.
    let setup = ffs_telemetry::span(ffs_telemetry::Phase::EngineSetup);
    let mut sched: Scheduler<Event> = super::arena::take_scheduler(trace.invocations.len());
    sched.preload_sorted(
        trace
            .invocations
            .iter()
            .map(|inv| (inv.arrival, Event::Arrival(inv.id))),
    );
    sched.at(SimTime::ZERO, Event::ScaleTick);
    let end = SimTime::ZERO + trace.duration + platform.drain();
    ffs_obs::record_at(0, || ffs_obs::ObsEvent::RunStart {
        invocations: trace.invocations.len() as u64,
        gpus: platform.num_gpus() as u32,
    });
    drop(setup);
    run_until(platform, &mut sched, end);
    // Everything after the event loop is metrics folding: finalization,
    // hub surrender, report assembly.
    let _fold = ffs_telemetry::span(ffs_telemetry::Phase::ObsFold);
    platform.finalize(end);
    ffs_obs::record_at(end.as_micros(), || ffs_obs::ObsEvent::RunEnd {
        sim_secs: end.saturating_since(SimTime::ZERO).as_secs_f64(),
    });
    let slices_per_gpu = platform.slices_per_gpu();
    let faults = platform.fault_stats();
    let hub = platform.take_hub();
    super::arena::store_scheduler(sched);
    RunOutput {
        log: hub.log,
        cost: hub.cost.finalize(end),
        busy_gpcs: hub.busy_gpcs.curve(),
        allocated_gpcs: hub.allocated_gpcs.curve(),
        required_gpcs: hub.required_gpcs.curve(),
        duration: end.saturating_since(SimTime::ZERO),
        slices_per_gpu,
        faults,
    }
}
