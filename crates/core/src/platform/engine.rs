//! The shared event-loop engine every platform runs on.
//!
//! [`EngineCore`] owns the *mechanisms* — the scheduler-facing state
//! (request table, instance map, MIG fleet, shared pool, metrics hub,
//! keep-alive lineages, plan cache) and the mechanics that mutate it
//! (stage execution, instance launch/retire, utilization accounting).
//! [`Engine`] pairs that state with a [`PolicyBundle`](super::policy) and
//! implements the [`World`] event loop plus the [`Platform`] run driver:
//! every event is handled once here, and each *decision* (routing,
//! overflow, scaling, eviction, migration) is delegated to the bundle.
//!
//! `FluidFaaSSystem` and the ESG / INFless baselines are thin wrappers
//! that pick a bundle; they contain no event handling of their own.

use std::collections::VecDeque;

use ffs_mig::gpu::RECONFIGURE_SECS;
use ffs_mig::{Fleet, GpuId, MigError, NodeId, SliceId, SliceProfile};
use ffs_pipeline::{estimate, DeploymentPlan};
use ffs_sim::{Scheduler, SimDuration, SimTime, World};
use ffs_telemetry::{span, Phase as TelemetryPhase};
use ffs_trace::Trace;

use crate::chaos::{ChaosState, FaultTarget, FleetShape};
use crate::config::FfsConfig;
use crate::instance::{Instance, Phase, StageTimings};
use crate::keepalive::{KeepAliveState, Transition};
use crate::plancache::PlanCache;
use crate::shared::SharedPool;

use super::catalog::{FuncId, FunctionCatalog};
use super::events::{Event, InstanceId};
use super::hub::MetricsHub;
use super::policy::PolicyBundle;
use super::request::RequestState;
use super::runner::{FaultStats, Platform};
use super::sharded::ShardView;
use super::slab::{InstanceSlab, PhaseTag};

/// Maximum instance launches per function per scale tick (burst ramp
/// limit shared by every autoscaler policy).
pub const MAX_LAUNCHES_PER_TICK: usize = 4;

/// Counters of the scheduler's decisions over a run — the observable trace
/// of §5's mechanisms, used by tests, ablations and examples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerLog {
    /// Exclusive instances launched (monolithic or pipelined).
    pub launches: u64,
    /// Pipelined launches among them.
    pub pipeline_launches: u64,
    /// Exclusive instances retired (demotion, drain or scale-down).
    pub retirements: u64,
    /// Evictions of a time-sharing resident to CPU memory (→ Warm).
    pub evictions: u64,
    /// Warm reloads onto a shared slice.
    pub reloads: u64,
    /// Pipeline→monolithic migrations started.
    pub migrations: u64,
    /// Shared-pool slices added.
    pub pool_grows: u64,
    /// Shared-pool slices released.
    pub pool_shrinks: u64,
    /// Keep-alive expirations to cold (⑤).
    pub cold_terminations: u64,
}

/// Construction-time failures of the engine: the fallible inputs are the
/// fleet partition scheme and the trace/catalog pairing.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The configured MIG partition scheme is invalid.
    Fleet(MigError),
    /// The trace invokes an application the catalog does not serve.
    UnknownApp(ffs_profile::App),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Fleet(e) => write!(f, "invalid fleet partition scheme: {e}"),
            EngineError::UnknownApp(app) => {
                write!(f, "trace invokes {app:?}, which is not in the catalog")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Fleet(e) => Some(e),
            EngineError::UnknownApp(_) => None,
        }
    }
}

impl From<MigError> for EngineError {
    fn from(e: MigError) -> Self {
        EngineError::Fleet(e)
    }
}

/// The scheduler-facing state record. Fields are public on purpose: policy
/// implementations (in this crate and in `ffs-baselines`) read and mutate
/// the engine state directly, exactly as the former monolithic systems
/// did with their own fields.
pub struct EngineCore {
    /// Run configuration.
    pub cfg: FfsConfig,
    /// The function catalog the trace is served from.
    pub catalog: FunctionCatalog,
    /// The MIG fleet.
    pub fleet: Fleet,
    /// Metrics collection.
    pub hub: MetricsHub,
    /// One state record per trace invocation, indexed by request id.
    pub requests: Vec<RequestState>,
    /// Live exclusive instances.
    pub instances: InstanceSlab,
    /// Next instance id to assign.
    pub next_instance: u64,
    /// The time-sharing slice pool.
    pub pool: SharedPool,
    /// Keep-alive state of each function's time-sharing lineage (Fig. 8).
    pub ka: Vec<KeepAliveState>,
    /// Per-function backlog of requests not yet admitted anywhere
    /// (deadline order == arrival order within a function).
    pub pending: Vec<VecDeque<u64>>,
    /// Arrivals per function since the last scale tick.
    pub arrivals_in_tick: Vec<u32>,
    /// EWMA demand estimate per function (req/s).
    pub demand_rps: Vec<f64>,
    /// When the last scale tick ran.
    pub last_tick: SimTime,
    /// Last time each function saw an arrival or completion.
    pub last_use: Vec<SimTime>,
    /// End of the simulation (trace end + drain).
    pub horizon: SimTime,
    /// Largest number of concurrent exclusive instances seen.
    pub peak_instances: usize,
    /// Largest number of concurrent pipelined instances seen.
    pub peak_pipelines: usize,
    /// Decision counters for this run.
    pub sched_log: SchedulerLog,
    /// Memoized launch plans, invalidated on any slice alloc/free.
    pub plan_cache: PlanCache,
    /// Live exclusive instances of each function, in ascending instance-id
    /// order (ids are assigned monotonically, so a push keeps the order).
    /// The per-function index mirrors `instances` exactly; routing and
    /// scaling iterate it instead of filtering the whole map.
    pub instances_of: Vec<Vec<InstanceId>>,
    /// Live pipelined (non-monolithic) instance count.
    pub pipeline_count: usize,
    /// Functions the per-tick loops must visit, ascending. A function
    /// activates on its first arrival and deactivates only when every
    /// per-function datum is at its cold rest state (see
    /// [`EngineCore::sweep_inactive`]), so skipping inactive functions is
    /// provably a no-op for every tick computation.
    pub active_funcs: Vec<FuncId>,
    /// Membership mask for `active_funcs`.
    pub is_active: Vec<bool>,
    /// One-shot flag: the per-tick arrival counter saturated at least once
    /// this run (pathological trace; the count is a lower bound).
    pub arrivals_saturated: bool,
    /// Precomputed monolithic (exec, handoff) split per function per slice
    /// profile (`SliceProfile::ALL` order) — the time-sharing hot path.
    pub mono_split_ms: Vec<[(f64, f64); SliceProfile::ALL.len()]>,
    /// Precomputed monolithic execution estimate per function per slice
    /// profile (`SliceProfile::ALL` order).
    pub shared_exec_ms: Vec<[f64; SliceProfile::ALL.len()]>,
    /// Precomputed model-load time of each function's full DAG (ms).
    pub load_all_ms: Vec<f64>,
    /// Fault-injection state (`ffs-chaos`); inert when faults are disabled.
    pub chaos: ChaosState,
    /// This core's place in a sharded run (`ShardView::solo()` outside
    /// one). Policy code may read it to learn about peer shards without
    /// ever holding a reference to them.
    pub shard: ShardView,
}

/// Position of `p` in `SliceProfile::ALL` (the per-profile table order).
#[inline]
pub(crate) fn profile_index(p: SliceProfile) -> usize {
    p.index()
}

impl EngineCore {
    /// Builds the engine state for a config and the trace it will serve.
    pub fn try_new(cfg: FfsConfig, trace: &Trace) -> Result<Self, EngineError> {
        let _setup = span(TelemetryPhase::EngineSetup);
        let catalog = FunctionCatalog::for_workload(cfg.workload, cfg.slo_scale, &cfg.perf);
        let fleet = Fleet::new(cfg.nodes, cfg.gpus_per_node, &cfg.scheme)?;
        let mut hub = MetricsHub::new(&catalog, fleet.gpu_count(), SimDuration::from_secs(1));
        // Every invocation produces exactly one log record (completed or
        // abandoned); sizing the log up front keeps the completion path
        // allocation-free.
        hub.log.reserve(trace.invocations.len());
        // Request table and instance slab come from the thread's run arena
        // (warm capacity after the first run); both go back on drop.
        let mut requests = super::arena::take_request_buffer();
        if let Err(e) = build_requests_into(&catalog, trace, &mut requests) {
            super::arena::store_request_buffer(requests);
            return Err(e);
        }
        let n = catalog.len();
        let horizon = SimTime::ZERO + trace.duration + cfg.drain;
        // Utilization samples land once per tick through the whole run;
        // pre-sizing the bins keeps the tick path reallocation-free too.
        hub.busy_gpcs.reserve_until(horizon);
        hub.allocated_gpcs.reserve_until(horizon);
        hub.required_gpcs.reserve_until(horizon);
        // Per-(function, profile) timing tables: pure functions of the
        // catalog, computed once so the execution hot paths are lookups.
        let mono_split_ms = (0..n)
            .map(|f| {
                let mut row = [(0.0, 0.0); SliceProfile::ALL.len()];
                for (i, &p) in SliceProfile::ALL.iter().enumerate() {
                    row[i] = mono_split(&catalog, f, p);
                }
                row
            })
            .collect();
        let shared_exec_ms = (0..n)
            .map(|f| {
                let mut row = [0.0; SliceProfile::ALL.len()];
                for (i, &p) in SliceProfile::ALL.iter().enumerate() {
                    row[i] = catalog.profile(f).mono_exec_ms(p);
                }
                row
            })
            .collect();
        let load_all_ms = (0..n)
            .map(|f| {
                let profile = catalog.profile(f);
                profile.load_ms(&all_nodes(&catalog, f))
            })
            .collect();
        // The chaos timeline draws victims from the smallest per-GPU slice
        // count, so every drawn index exists under per-GPU layouts too.
        let slices_per_gpu = fleet
            .gpus()
            .map(|(_, g)| g.slices().len())
            .min()
            .unwrap_or(0);
        let chaos = ChaosState::build(
            cfg.faults.clone(),
            FleetShape {
                nodes: cfg.nodes,
                gpus_per_node: cfg.gpus_per_node,
                slices_per_gpu,
            },
            horizon.as_micros(),
        );
        Ok(EngineCore {
            cfg,
            fleet,
            hub,
            requests,
            instances: super::arena::take_slab(),
            next_instance: 1,
            pool: SharedPool::new(),
            ka: vec![KeepAliveState::Cold; n],
            pending: vec![VecDeque::new(); n],
            arrivals_in_tick: vec![0; n],
            demand_rps: vec![0.0; n],
            last_tick: SimTime::ZERO,
            last_use: vec![SimTime::ZERO; n],
            catalog,
            horizon,
            peak_instances: 0,
            peak_pipelines: 0,
            sched_log: SchedulerLog::default(),
            plan_cache: PlanCache::new(),
            instances_of: vec![Vec::new(); n],
            pipeline_count: 0,
            active_funcs: Vec::with_capacity(n),
            is_active: vec![false; n],
            arrivals_saturated: false,
            mono_split_ms,
            shared_exec_ms,
            load_all_ms,
            chaos,
            shard: ShardView::solo(),
        })
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Number of live exclusive instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of live pipelined instances.
    pub fn pipeline_instance_count(&self) -> usize {
        self.pipeline_count
    }

    /// Precomputed monolithic (exec, handoff) split for `f` on `slice`.
    #[inline]
    pub fn mono_split_of(&self, f: FuncId, slice: SliceProfile) -> (f64, f64) {
        self.mono_split_ms[f][profile_index(slice)]
    }

    /// Precomputed monolithic execution estimate for `f` on `slice`.
    #[inline]
    pub fn shared_exec_of(&self, f: FuncId, slice: SliceProfile) -> f64 {
        self.shared_exec_ms[f][profile_index(slice)]
    }

    /// Books one arrival for `f`: bumps the per-tick counter (saturating —
    /// a pathological trace can overflow a `u32` within one tick; the
    /// saturation is counted once per run and surfaced through `ffs-obs`)
    /// and activates the function for the per-tick loops.
    pub fn note_arrival(&mut self, f: FuncId) {
        match self.arrivals_in_tick[f].checked_add(1) {
            Some(v) => self.arrivals_in_tick[f] = v,
            None => {
                if !self.arrivals_saturated {
                    self.arrivals_saturated = true;
                    ffs_obs::note_arrival_saturation();
                }
            }
        }
        if !self.is_active[f] {
            self.is_active[f] = true;
            // Keep `active_funcs` ascending: per-tick iteration order must
            // match the `0..catalog.len()` order it replaces exactly.
            let pos = self
                .active_funcs
                .binary_search(&f)
                .expect_err("is_active[f] was false, so f is not in active_funcs");
            self.active_funcs.insert(pos, f);
        }
    }

    /// Retires functions whose every per-function datum is back at its
    /// cold rest state from the active set. For such a function each
    /// per-tick computation is a provable no-op: the demand EWMA folds
    /// zero arrivals into an exactly-zero estimate (`0.3*0.0 + 0.7*0.0`),
    /// the required-GPC sum's term is an exact `+0.0`, no autoscaler
    /// policy fires without demand/pending/instances, the keep-alive sweep
    /// ignores Cold lineages, and routing an empty backlog returns
    /// immediately — so skipping it cannot move a single output bit.
    pub fn sweep_inactive(&mut self) {
        let (is_active, pending, instances_of, ka, demand, pool) = (
            &mut self.is_active,
            &self.pending,
            &self.instances_of,
            &self.ka,
            &self.demand_rps,
            &self.pool,
        );
        self.active_funcs.retain(|&f| {
            let resting = demand[f] == 0.0
                && pending[f].is_empty()
                && instances_of[f].is_empty()
                && matches!(ka[f], KeepAliveState::Cold)
                && pool.slot_of(f).is_none();
            if resting {
                is_active[f] = false;
            }
            !resting
        });
    }

    /// How completed requests were served:
    /// `(monolithic, pipelined, time_shared)` counts.
    pub fn serve_mix(&self) -> (usize, usize, usize) {
        use super::request::ServePath::*;
        let mut mix = (0, 0, 0);
        for r in &self.requests {
            if r.completed.is_none() {
                continue;
            }
            match r.served {
                Some(Monolithic) => mix.0 += 1,
                Some(Pipelined) => mix.1 += 1,
                Some(TimeShared) => mix.2 += 1,
                None => {}
            }
        }
        mix
    }

    // ------------------------------------------------------------------
    // Exclusive instance execution
    // ------------------------------------------------------------------

    /// Starts the next queued request on `stage` of instance `id` if the
    /// stage is idle and the instance is serving.
    pub fn try_start_stage(
        &mut self,
        id: InstanceId,
        stage: usize,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) {
        let Some(inst) = self.instances.get_mut(&id) else {
            return;
        };
        if !inst.is_ready() && !matches!(inst.phase, Phase::Draining) {
            return;
        }
        if inst.stage_busy[stage].is_some() {
            return;
        }
        let Some(req) = inst.stage_queues[stage].pop_front() else {
            return;
        };
        inst.stage_busy[stage] = Some(req);
        inst.mark_busy(now);
        if stage == 0 {
            let path = if inst.plan.is_monolithic() {
                super::request::ServePath::Monolithic
            } else {
                super::request::ServePath::Pipelined
            };
            self.requests[req as usize].served = Some(path);
        }
        let f = inst.func;
        let slice = inst.plan.stages[stage].slice;
        let gpcs = inst.plan.stages[stage].profile.gpcs();
        let mono = inst.plan.is_monolithic();
        // Stage timing constants were computed once at launch; the
        // per-request path copies two floats instead of cloning the stage's
        // node list and re-walking the profile tables.
        let exec_ms = inst.timings.exec_ms[stage];
        let handoff_ms = inst.timings.handoff_ms[stage];
        self.instances.note_stage_started(id, gpcs);
        self.requests[req as usize].exec_ms += exec_ms;
        self.requests[req as usize].transfer_ms += handoff_ms;
        self.hub.slice_active(now, slice);
        if ffs_obs::enabled() {
            if stage == 0 {
                let path = if mono {
                    ffs_obs::ServePathKind::Monolithic
                } else {
                    ffs_obs::ServePathKind::Pipelined
                };
                ffs_obs::record(|| ffs_obs::ObsEvent::RequestDispatched {
                    req,
                    func: f as u32,
                    path,
                    target: id.0,
                });
            }
            ffs_obs::record(|| ffs_obs::ObsEvent::SliceActive {
                slice: sref(slice),
                func: f as u32,
                req,
            });
        }
        sched.after(
            SimDuration::from_millis_f64(exec_ms + handoff_ms),
            Event::StageDone {
                inst: id,
                stage,
                req,
            },
        );
    }

    /// Completes one stage execution: frees the slice, finishes or forwards
    /// the request, refeeds the stage, and retires a drained instance.
    /// Returns the function to re-dispatch (the caller routes its backlog),
    /// or `None` if the instance no longer exists.
    pub fn on_stage_done(
        &mut self,
        id: InstanceId,
        stage: usize,
        req: u64,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) -> Option<FuncId> {
        let inst = self.instances.get_mut(&id)?;
        debug_assert_eq!(inst.stage_busy[stage], Some(req));
        inst.stage_busy[stage] = None;
        inst.last_used = now;
        let slice = inst.plan.stages[stage].slice;
        let gpcs = inst.plan.stages[stage].profile.gpcs();
        let last = stage + 1 == inst.plan.num_stages();
        let f = inst.func;
        // Boundary-transfer time was precomputed at launch (unused when
        // this is the final stage).
        let transfer_ms = inst.timings.transfer_ms[stage];
        self.hub.slice_idle(now, slice);
        ffs_obs::record(|| ffs_obs::ObsEvent::SliceIdle { slice: sref(slice) });
        if last {
            // Split borrow: the request record mutates (finish) and is then
            // read by the hub — disjoint fields, no clone needed.
            let EngineCore { requests, hub, .. } = self;
            let state = &mut requests[req as usize];
            let breakdown = state.finish(now);
            hub.complete(state, breakdown);
        } else {
            // Boundary transfer through host shared memory.
            self.requests[req as usize].transfer_ms += transfer_ms;
            if let Some(inst) = self.instances.get_mut(&id) {
                inst.in_transfer += 1;
            }
            sched.after(
                SimDuration::from_millis_f64(transfer_ms),
                Event::TransferDone {
                    inst: id,
                    stage: stage + 1,
                    req,
                },
            );
        }
        // Hot columns: the stage's GPCs freed; on the final stage the
        // request left the instance (a mid-pipeline request moves from
        // stage-busy to in-transfer, leaving occupancy unchanged).
        self.instances.note_stage_finished(id, gpcs, last);
        // Keep the stage fed, then refill from the function backlog.
        self.try_start_stage(id, stage, now, sched);
        if let Some(inst) = self.instances.get_mut(&id) {
            if inst.is_empty() {
                inst.mark_idle(now);
            }
            if inst.phase == Phase::Draining && inst.is_empty() {
                self.retire_instance(id, now);
            }
        }
        Some(f)
    }

    // ------------------------------------------------------------------
    // Time-sharing execution
    // ------------------------------------------------------------------

    /// Runs `req` on shared slot `slot_idx` (the resident model must be the
    /// request's function).
    pub fn start_shared_exec(
        &mut self,
        slot_idx: usize,
        req: u64,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) {
        let f = self.requests[req as usize].func;
        let slot = self.pool.slot_mut(slot_idx);
        debug_assert_eq!(slot.resident, Some(f));
        slot.touch_resident(f);
        slot.busy_with = Some(req);
        slot.mark_busy(now);
        self.requests[req as usize].served = Some(super::request::ServePath::TimeShared);
        let slice = slot.slice.id;
        let profile = slot.slice.profile;
        let (exec_ms, handoff_ms) = self.mono_split_ms[f][profile_index(profile)];
        self.requests[req as usize].exec_ms += exec_ms;
        self.requests[req as usize].transfer_ms += handoff_ms;
        self.hub.slice_active(now, slice);
        if ffs_obs::enabled() {
            ffs_obs::record(|| ffs_obs::ObsEvent::RequestDispatched {
                req,
                func: f as u32,
                path: ffs_obs::ServePathKind::TimeShared,
                target: slot_idx as u64,
            });
            ffs_obs::record(|| ffs_obs::ObsEvent::SliceActive {
                slice: sref(slice),
                func: f as u32,
                req,
            });
        }
        sched.after(
            SimDuration::from_millis_f64(exec_ms + handoff_ms),
            Event::SharedDone {
                slot: slot_idx,
                req,
            },
        );
    }

    // ------------------------------------------------------------------
    // Instance lifecycle
    // ------------------------------------------------------------------

    /// Launches one exclusive instance of `f` with a placement-decided
    /// `plan` on `node`: allocates the planned slices, books the metrics,
    /// and schedules readiness after the cold start.
    pub fn launch(
        &mut self,
        f: FuncId,
        plan: DeploymentPlan,
        node: NodeId,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) -> InstanceId {
        for s in &plan.stages {
            // Infallible: the plan was computed against the current free
            // set and the cache is invalidated on every fleet mutation, so
            // every planned slice is still free (and not failed) here.
            self.fleet.allocate(s.slice).expect("planned slice is free");
            self.hub.slice_allocated(now, s.slice, s.profile.gpcs());
        }
        self.plan_cache.invalidate();
        let profile = self.catalog.profile(f);
        let est = estimate(profile, &plan);
        let timings = StageTimings::compute(profile, &plan);
        self.peak_instances = self.peak_instances.max(self.instances.len() + 1);
        if !plan.is_monolithic() {
            self.pipeline_count += 1;
            self.peak_pipelines = self.peak_pipelines.max(self.pipeline_count);
        }
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        let cold_ms = profile.cold_start_ms();
        let ready_at = now + SimDuration::from_millis_f64(cold_ms);
        self.sched_log.launches += 1;
        if !plan.is_monolithic() {
            self.sched_log.pipeline_launches += 1;
        }
        let stages = plan.num_stages() as u32;
        let pipelined = !plan.is_monolithic();
        ffs_obs::record(|| ffs_obs::ObsEvent::InstanceLaunched {
            inst: id.0,
            func: f as u32,
            node: node.0,
            stages,
            pipelined,
            cold_ms,
        });
        self.instances.insert(
            id,
            Instance::new(id, f, plan, est, timings, node, now, ready_at),
            self.catalog.slo_ms(f),
        );
        // Ids are assigned monotonically, so pushing keeps the
        // per-function index in ascending-id (== BTreeMap) order.
        self.instances_of[f].push(id);
        sched.at(ready_at, Event::InstanceReady(id));
        id
    }

    /// Removes an (empty) instance and releases its slices. If it was the
    /// function's last exclusive instance the keep-alive lineage drops to
    /// time sharing (③) — a no-op for lineages that never left Cold.
    pub fn retire_instance(&mut self, id: InstanceId, now: SimTime) {
        let Some(inst) = self.instances.remove(&id) else {
            return;
        };
        self.sched_log.retirements += 1;
        ffs_obs::record(|| ffs_obs::ObsEvent::InstanceRetired {
            inst: id.0,
            func: inst.func as u32,
        });
        debug_assert!(inst.is_empty(), "retiring a non-empty instance");
        for s in &inst.plan.stages {
            // Infallible: the instance held these slices since launch and
            // nothing else can release an instance-owned slice.
            self.fleet.release(s.slice).expect("allocated slice");
            self.hub.slice_released(now, s.slice);
        }
        self.plan_cache.invalidate();
        let f = inst.func;
        if !inst.plan.is_monolithic() {
            debug_assert!(self.pipeline_count > 0);
            self.pipeline_count -= 1;
        }
        let ids = &mut self.instances_of[f];
        // Infallible: the per-function index mirrors the slab exactly, and
        // the slab remove above proved the instance was live.
        let pos = ids.iter().position(|&x| x == id).expect("indexed instance");
        ids.remove(pos);
        if ids.is_empty() {
            self.ka[f] = self.ka[f].next_traced(Transition::UtilizationLow, f as u32);
        }
    }

    // ------------------------------------------------------------------
    // Fault injection (ffs-chaos)
    // ------------------------------------------------------------------

    /// Kills an instance whose slice failed: releases all of its slices
    /// (intervals close at `now`), updates every index `retire_instance`
    /// maintains, and returns the requests that were queued, executing,
    /// or mid-transfer inside it — in (busy stages ascending, then queued
    /// stages ascending) order — for the caller to retry. Unlike
    /// retirement, the instance may be non-empty.
    pub fn fail_instance(&mut self, id: InstanceId, now: SimTime) -> Vec<u64> {
        let Some(inst) = self.instances.remove(&id) else {
            return Vec::new();
        };
        ffs_obs::record(|| ffs_obs::ObsEvent::InstanceRetired {
            inst: id.0,
            func: inst.func as u32,
        });
        for s in &inst.plan.stages {
            if self.fleet.release(s.slice).is_ok() {
                self.hub.slice_released(now, s.slice);
            }
        }
        self.plan_cache.invalidate();
        let f = inst.func;
        if !inst.plan.is_monolithic() {
            debug_assert!(self.pipeline_count > 0);
            self.pipeline_count -= 1;
        }
        if let Some(pos) = self.instances_of[f].iter().position(|&x| x == id) {
            self.instances_of[f].remove(pos);
        }
        if self.instances_of[f].is_empty() {
            self.ka[f] = self.ka[f].next_traced(Transition::UtilizationLow, f as u32);
        }
        // Stale StageDone/TransferDone events for this instance are
        // classified against this list.
        self.chaos.killed.push(id.0);
        let mut reqs = Vec::new();
        for b in &inst.stage_busy {
            if let Some(r) = *b {
                reqs.push(r);
            }
        }
        for q in &inst.stage_queues {
            reqs.extend(q.iter().copied());
        }
        // Mid-transfer requests are recovered when their `TransferDone`
        // arrives (the transfer itself survives in host memory).
        reqs
    }

    /// Kills a shared slot whose slice failed: drains its queue and
    /// in-flight work, unbinds every function (the resident is evicted to
    /// Warm), releases the slice, and tombstones the slot. The slot is
    /// never removed from the pool vector — `Vec::remove` would shift the
    /// indices referenced by pending `SharedDone`/`SharedLoadDone` events.
    /// Returns the requests to retry.
    pub fn fail_shared_slot(&mut self, idx: usize, now: SimTime) -> Vec<u64> {
        let slot = self.pool.slot_mut(idx);
        let mut reqs = Vec::new();
        if let Some(r) = slot.busy_with.take() {
            reqs.push(r);
        }
        if let Some((_, r)) = slot.loading.take() {
            reqs.push(r);
        }
        while let Some(r) = slot.pop() {
            reqs.push(r);
        }
        slot.mark_idle(now);
        slot.dead = true;
        let resident = slot.resident;
        let bound = slot.bound.clone();
        let slice = slot.slice;
        for f in bound {
            self.pool.unbind(f);
        }
        if let Some(g) = resident {
            // The resident model's GPU state is lost with the slice; its
            // lineage falls back to Warm (CPU copy), as on an eviction.
            self.ka[g] = self.ka[g].next_traced(Transition::Evicted, g as u32);
        }
        if self.fleet.release(slice.id).is_ok() {
            self.hub.slice_released(now, slice.id);
        }
        self.plan_cache.invalidate();
        reqs
    }

    /// The slices a fault target expands to, ascending; slices already
    /// failed are skipped (a second fault on a downed GPU is a no-op).
    pub fn fault_slices(&self, target: FaultTarget) -> Vec<SliceId> {
        let mut gpus: Vec<GpuId> = Vec::new();
        match target {
            FaultTarget::Slice(id) => {
                return match self.fleet.gpu(id.gpu).and_then(|g| g.slice(id)) {
                    Ok(s) if !s.is_failed() => vec![id],
                    _ => Vec::new(),
                };
            }
            FaultTarget::Gpu(g) => gpus.push(g),
            FaultTarget::Node(n) => {
                if let Some(node) = self.fleet.nodes().iter().find(|x| x.id == n) {
                    gpus.extend(node.gpus().iter().map(|g| g.id));
                }
            }
        }
        let mut out = Vec::new();
        for gid in gpus {
            if let Ok(gpu) = self.fleet.gpu(gid) {
                out.extend(gpu.slices().iter().filter(|s| !s.is_failed()).map(|s| s.id));
            }
        }
        out
    }

    /// The GPUs a fault target spans (for XID-style reporting and the
    /// per-GPU reconfiguration charge on recovery).
    pub fn fault_gpus(&self, target: FaultTarget) -> Vec<GpuId> {
        match target {
            FaultTarget::Slice(id) => vec![id.gpu],
            FaultTarget::Gpu(g) => vec![g],
            FaultTarget::Node(n) => self
                .fleet
                .nodes()
                .iter()
                .find(|x| x.id == n)
                .map(|node| node.gpus().iter().map(|g| g.id).collect())
                .unwrap_or_default(),
        }
    }

    /// Schedules a capped-exponential-backoff retry for a request whose
    /// worker died, or drops it (→ abandoned at finalize) once the retry
    /// budget is exhausted.
    pub fn schedule_retry(&mut self, req: u64, sched: &mut Scheduler<Event>) {
        let attempt = self.chaos.bump_retry(req);
        if attempt > self.chaos.spec.max_retries {
            self.chaos.retries_exhausted += 1;
            return;
        }
        let delay_ms = self.chaos.spec.backoff_ms(attempt);
        self.chaos.request_retries += 1;
        ffs_obs::record(|| ffs_obs::ObsEvent::RequestRetried {
            req,
            attempt,
            delay_ms,
        });
        sched.after(SimDuration::from_millis(delay_ms), Event::Retry(req));
    }

    // ------------------------------------------------------------------
    // Scale-tick bookkeeping
    // ------------------------------------------------------------------

    /// Tick prologue: fold the arrival window into the demand EWMA and
    /// record the utilization/cost series.
    pub fn begin_tick(&mut self, now: SimTime) {
        let window = now.saturating_since(self.last_tick);
        self.last_tick = now;
        let window_secs = window.as_secs_f64().max(1e-9);
        // Dirty-set iteration (ascending, matching the full-catalog order):
        // an inactive function has zero arrivals and an exactly-zero EWMA,
        // for which this fold is a bit-exact no-op.
        for i in 0..self.active_funcs.len() {
            let f = self.active_funcs[i];
            let inst_rate = self.arrivals_in_tick[f] as f64 / window_secs;
            self.arrivals_in_tick[f] = 0;
            self.demand_rps[f] = if now == SimTime::ZERO {
                inst_rate
            } else {
                0.3 * self.demand_rps[f] + 0.7 * inst_rate
            };
        }
        self.record_utilization(now);
    }

    /// Tick epilogue: schedule the next tick while inside the horizon.
    pub fn schedule_next_tick(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        let next = now + self.cfg.scale_tick;
        if next < self.horizon {
            sched.at(next, Event::ScaleTick);
        }
    }

    fn record_utilization(&mut self, now: SimTime) {
        // The exclusive-instance side is an incremental column sum: stage
        // start/finish keep `busy_gpcs` current, so the per-tick cost is one
        // integer pass instead of walking every instance's stage arrays.
        self.instances.debug_assert_hot_consistent();
        let mut busy_gpcs = self.instances.busy_gpcs_total() as u32;
        for slot in self.pool.slots() {
            if slot.busy_with.is_some() || slot.loading.is_some() {
                busy_gpcs += slot.slice.profile.gpcs();
            }
        }
        self.hub.busy_gpcs.record(now, busy_gpcs as f64);
        self.hub
            .allocated_gpcs
            .record(now, self.fleet.allocated_gpcs() as f64);
        // Inactive functions contribute an exact `+0.0` term, which cannot
        // move any partial sum's bits; active functions are visited in the
        // same ascending order the full scan used.
        let required: f64 = self
            .active_funcs
            .iter()
            .map(|&f| self.demand_rps[f] * self.catalog.profile(f).dag.total_work() / 1_000.0)
            .sum();
        self.hub.required_gpcs.record(now, required);
    }

    /// Aggregate serving capacity (req/s) of `f`'s non-draining instances.
    pub fn capacity_rps(&self, f: FuncId) -> f64 {
        self.instances_of[f]
            .iter()
            .filter(|&&id| self.instances.phase_tag(id) != PhaseTag::Draining)
            .map(|&id| self.instances.throughput_rps_of(id))
            .sum()
    }

    /// Functions with pending demand and no way to serve it: no exclusive
    /// instance (live or launching), and no time-sharing binding. Only
    /// active functions can have a non-empty backlog, so the active set
    /// suffices (and preserves the ascending scan order).
    pub fn starving_funcs(&self) -> Vec<FuncId> {
        self.active_funcs
            .iter()
            .copied()
            .filter(|&f| {
                !self.pending[f].is_empty()
                    && self.instances_of[f].is_empty()
                    && self.pool.slot_of(f).is_none()
            })
            .collect()
    }

    /// Erlang-C pressure test: true while the live fleet for `f` is
    /// smaller than the M/M/c size keeping the mean queueing wait below
    /// `target_wait_frac` of the SLO budget.
    pub fn erlang_pressure(&self, f: FuncId, target_wait_frac: f64) -> bool {
        let demand = self.demand_rps[f];
        if demand < 1e-6 {
            return !self.pending[f].is_empty();
        }
        // Per-server rate: the mean of live instances' throughput, or the
        // profile's min-baseline estimate before anything is live. One
        // indexed pass (same ascending-id order the map scan used) — no
        // scratch vector.
        let mut live_sum = 0.0;
        let mut live_count = 0u32;
        for &id in &self.instances_of[f] {
            if self.instances.phase_tag(id) != PhaseTag::Draining {
                live_sum += self.instances.throughput_rps_of(id);
                live_count += 1;
            }
        }
        let mu = if live_count == 0 {
            let p = self.catalog.profile(f);
            match p.min_baseline_slice() {
                Some(s) => 1_000.0 / p.mono_exec_ms(s),
                None => return false,
            }
        } else {
            live_sum / live_count as f64
        };
        let slo_secs = self.catalog.slo_ms(f) / 1_000.0;
        let target_wait = (target_wait_frac * slo_secs).max(1e-3);
        let needed = ffs_sim::queueing::servers_for_mean_wait(demand, mu, target_wait);
        live_count < needed
    }
}

/// Trace-facing reference to a MIG slice.
pub(crate) fn sref(id: ffs_mig::SliceId) -> ffs_obs::SliceRef {
    ffs_obs::SliceRef::new(id.gpu.0, id.index)
}

/// All DAG node ids of a function (helper for load-time computation).
pub(crate) fn all_nodes(catalog: &FunctionCatalog, f: FuncId) -> Vec<ffs_dag::NodeId> {
    catalog.profile(f).dag.nodes().collect()
}

/// Splits the monolithic execution time into (compute, in-process
/// handoff) parts.
pub(crate) fn mono_split(
    catalog: &FunctionCatalog,
    f: FuncId,
    slice: ffs_mig::SliceProfile,
) -> (f64, f64) {
    let p = catalog.profile(f);
    let exec: f64 = p.dag.nodes().map(|n| p.node_exec_ms(n, slice)).sum();
    let handoff = (p.dag.len().saturating_sub(1)) as f64 * p.perf.inprocess_handoff_ms;
    (exec, handoff)
}

/// Fills `out` (a recycled arena buffer) with one request record per
/// invocation — identical contents to a freshly collected table.
fn build_requests_into(
    catalog: &FunctionCatalog,
    trace: &Trace,
    out: &mut Vec<RequestState>,
) -> Result<(), EngineError> {
    debug_assert!(out.is_empty());
    out.reserve(trace.invocations.len());
    for inv in &trace.invocations {
        let f = catalog
            .func_of(inv.app)
            .ok_or(EngineError::UnknownApp(inv.app))?;
        let mut state = RequestState::new(inv.id, f, inv.arrival, catalog.slo_ms(f));
        state.tenant = inv.tenant;
        out.push(state);
    }
    Ok(())
}

impl Drop for EngineCore {
    /// Returns the arena-borrowed containers to the thread's pool so the
    /// next run starts with warm capacity (O(1) teardown: the containers
    /// are cleared, not freed).
    fn drop(&mut self) {
        super::arena::store_request_buffer(std::mem::take(&mut self.requests));
        super::arena::store_slab(std::mem::take(&mut self.instances));
    }
}

/// The event loop: engine state plus the policy bundle that steers it.
pub struct Engine {
    /// The shared scheduler state and mechanics.
    pub core: EngineCore,
    /// The decision policies of the platform being simulated.
    pub policies: PolicyBundle,
}

impl Engine {
    /// Builds an engine for a config, policy bundle, and trace.
    pub fn new(cfg: FfsConfig, policies: PolicyBundle, trace: &Trace) -> Result<Self, EngineError> {
        Ok(Engine {
            core: EngineCore::try_new(cfg, trace)?,
            policies,
        })
    }

    // ------------------------------------------------------------------
    // Hot event handlers. One inherent method per hot variant so the
    // `World::handle` match and the kind-homogeneous `handle_run` loops
    // share one body. Routing is skipped (no span, no virtual call) when
    // the function's backlog is empty: every router's dispatch loop is
    // headed by `while pending[f].front()`, so an empty backlog makes the
    // call side-effect-free — the skip cannot move an output bit, it only
    // removes no-op RoutingScan spans from the profile.
    // ------------------------------------------------------------------

    #[inline]
    fn on_arrival(&mut self, now: SimTime, id: u64, sched: &mut Scheduler<Event>) {
        let Engine { core, policies } = self;
        let f = core.requests[id as usize].func;
        ffs_obs::record(|| ffs_obs::ObsEvent::RequestArrived {
            req: id,
            func: f as u32,
        });
        core.note_arrival(f);
        core.last_use[f] = now;
        policies.autoscaler.on_arrival(core, f);
        // The push makes the backlog non-empty, so dispatch always runs.
        core.pending[f].push_back(id);
        let _rt = span(TelemetryPhase::RoutingScan);
        policies
            .router
            .dispatch(core, &*policies.shared, f, now, sched);
    }

    #[inline]
    fn on_instance_ready(&mut self, now: SimTime, id: InstanceId, sched: &mut Scheduler<Event>) {
        let Engine { core, policies } = self;
        let f = match core.instances.get(&id) {
            Some(inst) => inst.func,
            None => return,
        };
        core.instances.set_phase(&id, Phase::Ready);
        if !core.pending[f].is_empty() {
            let _rt = span(TelemetryPhase::RoutingScan);
            policies
                .router
                .dispatch(core, &*policies.shared, f, now, sched);
        }
        // Kick any queued work (requests routed while launching).
        core.try_start_stage(id, 0, now, sched);
    }

    #[inline]
    fn on_stage_done_event(
        &mut self,
        now: SimTime,
        inst: InstanceId,
        stage: usize,
        req: u64,
        sched: &mut Scheduler<Event>,
    ) {
        let Engine { core, policies } = self;
        if let Some(f) = core.on_stage_done(inst, stage, req, now, sched) {
            if !core.pending[f].is_empty() {
                let _rt = span(TelemetryPhase::RoutingScan);
                policies
                    .router
                    .dispatch(core, &*policies.shared, f, now, sched);
            }
        }
    }

    #[inline]
    fn on_transfer_done(
        &mut self,
        now: SimTime,
        inst: InstanceId,
        stage: usize,
        req: u64,
        sched: &mut Scheduler<Event>,
    ) {
        let core = &mut self.core;
        if let Some(instance) = core.instances.get_mut(&inst) {
            debug_assert!(instance.in_transfer > 0);
            instance.in_transfer -= 1;
            instance.stage_queues[stage].push_back(req);
            core.try_start_stage(inst, stage, now, sched);
        } else if core.chaos.was_killed(inst.0) {
            // The instance died mid-transfer (fault injection).
            // In-transfer requests are tracked only as a count, so
            // this arrival is the recovery point: retry the request.
            core.schedule_retry(req, sched);
        } else {
            debug_assert!(false, "transfer completed on a retired instance");
        }
    }

    #[inline]
    fn on_shared_load_done(
        &mut self,
        now: SimTime,
        slot: usize,
        req: u64,
        sched: &mut Scheduler<Event>,
    ) {
        let core = &mut self.core;
        let (f, expected) = match core.pool.slot(slot).loading {
            Some((f, r)) => (f, r),
            None => return,
        };
        if expected != req {
            // Stale load-done: the slot was killed and rebound
            // between scheduling and delivery (fault injection).
            debug_assert!(core.chaos.fired, "mismatched load on fault-free run");
            return;
        }
        let s = core.pool.slot_mut(slot);
        s.loading = None;
        s.resident = Some(f);
        core.start_shared_exec(slot, req, now, sched);
    }

    #[inline]
    fn on_shared_done(
        &mut self,
        now: SimTime,
        slot: usize,
        req: u64,
        sched: &mut Scheduler<Event>,
    ) {
        let Engine { core, policies } = self;
        let s = core.pool.slot_mut(slot);
        if s.busy_with != Some(req) {
            // Stale completion for a request already drained off a
            // failed slot (fault injection): the retry path owns it.
            debug_assert!(core.chaos.fired, "mismatched completion on fault-free run");
            return;
        }
        s.busy_with = None;
        s.mark_idle(now);
        let slice = s.slice.id;
        core.hub.slice_idle(now, slice);
        ffs_obs::record(|| ffs_obs::ObsEvent::SliceIdle { slice: sref(slice) });
        let f = {
            // Split borrow (request mutates, hub reads) — no clone.
            let EngineCore { requests, hub, .. } = &mut *core;
            let state = &mut requests[req as usize];
            let breakdown = state.finish(now);
            hub.complete(state, breakdown);
            state.func
        };
        core.last_use[f] = now;
        if !core.pending[f].is_empty() {
            let _rt = span(TelemetryPhase::RoutingScan);
            policies
                .router
                .dispatch(core, &*policies.shared, f, now, sched);
        }
        let _ = policies.shared.dispatch_slot(core, slot, now, sched);
    }
}

impl World for Engine {
    type Event = Event;

    fn handle(&mut self, now: SimTime, ev: Event, sched: &mut Scheduler<Event>) {
        match ev {
            Event::Arrival(id) => self.on_arrival(now, id, sched),
            Event::InstanceReady(id) => self.on_instance_ready(now, id, sched),
            Event::StageDone { inst, stage, req } => {
                self.on_stage_done_event(now, inst, stage, req, sched)
            }
            Event::TransferDone { inst, stage, req } => {
                self.on_transfer_done(now, inst, stage, req, sched)
            }
            Event::SharedLoadDone { slot, req } => self.on_shared_load_done(now, slot, req, sched),
            Event::SharedDone { slot, req } => self.on_shared_done(now, slot, req, sched),
            ev => self.handle_control(now, ev, sched),
        }
    }

    #[inline]
    fn kind_of(&self, ev: &Event) -> u16 {
        ev.kind_index()
    }

    /// Kind-specialized dispatch: the variant match runs once per run and
    /// each hot arm is a tight loop over one already-known variant —
    /// same-timestamp bursts (a pipeline's stage completions, an arrival
    /// wave) no longer pay the 12-way dispatch per event. The cold control
    /// variants share one kind and fall back to the per-event reference
    /// path; every arm's per-event semantics are exactly [`World::handle`]'s
    /// (pinned by the batch-equivalence property tests).
    fn handle_run(
        &mut self,
        now: SimTime,
        kind: u16,
        run: std::vec::Drain<'_, Event>,
        sched: &mut Scheduler<Event>,
    ) {
        match kind {
            Event::KIND_ARRIVAL => {
                for ev in run {
                    let Event::Arrival(id) = ev else {
                        unreachable!("kind-homogeneous run mixed variants")
                    };
                    self.on_arrival(now, id, sched);
                }
            }
            Event::KIND_INSTANCE_READY => {
                for ev in run {
                    let Event::InstanceReady(id) = ev else {
                        unreachable!("kind-homogeneous run mixed variants")
                    };
                    self.on_instance_ready(now, id, sched);
                }
            }
            Event::KIND_STAGE_DONE => {
                for ev in run {
                    let Event::StageDone { inst, stage, req } = ev else {
                        unreachable!("kind-homogeneous run mixed variants")
                    };
                    self.on_stage_done_event(now, inst, stage, req, sched);
                }
            }
            Event::KIND_TRANSFER_DONE => {
                for ev in run {
                    let Event::TransferDone { inst, stage, req } = ev else {
                        unreachable!("kind-homogeneous run mixed variants")
                    };
                    self.on_transfer_done(now, inst, stage, req, sched);
                }
            }
            Event::KIND_SHARED_LOAD_DONE => {
                for ev in run {
                    let Event::SharedLoadDone { slot, req } = ev else {
                        unreachable!("kind-homogeneous run mixed variants")
                    };
                    self.on_shared_load_done(now, slot, req, sched);
                }
            }
            Event::KIND_SHARED_DONE => {
                for ev in run {
                    let Event::SharedDone { slot, req } = ev else {
                        unreachable!("kind-homogeneous run mixed variants")
                    };
                    self.on_shared_done(now, slot, req, sched);
                }
            }
            _ => {
                for ev in run {
                    self.handle(now, ev, sched);
                }
            }
        }
    }
}

impl Engine {
    /// The cold control variants (ticks, keep-alive sweeps, faults,
    /// retries): rare enough that they share one dispatch kind and stay on
    /// the per-event path.
    fn handle_control(&mut self, now: SimTime, ev: Event, sched: &mut Scheduler<Event>) {
        let Engine { core, policies } = self;
        match ev {
            Event::ScaleTick => {
                let _tick = span(TelemetryPhase::AutoscalerTick);
                // Arm the chaos timeline on the first tick (one branch per
                // tick thereafter; a disabled spec starts armed, so
                // fault-free runs never enter this block).
                if !core.chaos.armed {
                    core.chaos.armed = true;
                    for i in 0..core.chaos.timeline.len() {
                        let (t_us, target) = core.chaos.timeline[i];
                        sched.at(SimTime::from_micros(t_us), Event::Fault(target));
                    }
                }
                core.begin_tick(now);
                {
                    let _policy = span(TelemetryPhase::PolicyCall);
                    policies
                        .autoscaler
                        .scale(core, &*policies.placer, now, sched);
                    policies.shared.maintain(core, now);
                    policies.autoscaler.keep_alive(core, now);
                    policies
                        .migrator
                        .migrate(core, &*policies.placer, now, sched);
                }
                // Retry anything stuck in the backlog. Only active
                // functions can have one (ascending order, as before);
                // dispatching an empty backlog would be a no-op, so those
                // functions are skipped outright.
                {
                    let _rt = span(TelemetryPhase::RoutingScan);
                    for i in 0..core.active_funcs.len() {
                        let f = core.active_funcs[i];
                        if core.pending[f].is_empty() {
                            continue;
                        }
                        policies
                            .router
                            .dispatch(core, &*policies.shared, f, now, sched);
                    }
                }
                // Functions whose state fully decayed leave the active set.
                core.sweep_inactive();
                core.schedule_next_tick(now, sched);
            }
            Event::KeepAlive(_) => { /* handled by the tick sweep */ }
            Event::Fault(target) => {
                core.chaos.fired = true;
                let slices = core.fault_slices(target);
                if slices.is_empty() {
                    // Everything in range is already down (overlapping
                    // fault) — and the matching Repair will be a no-op too.
                    return;
                }
                let mut orphans: Vec<u64> = Vec::new();
                let mut killed_funcs: Vec<FuncId> = Vec::new();
                for sid in slices {
                    // Whoever holds the slice dies with it: an exclusive
                    // (possibly pipelined) instance loses all its stages, a
                    // shared slot is drained and tombstoned. An earlier
                    // iteration may have already killed a pipelined
                    // instance spanning this slice; then only the fleet
                    // state is updated.
                    let owner = core.instances.keys().find(|id| {
                        core.instances[id]
                            .plan
                            .stages
                            .iter()
                            .any(|s| s.slice == sid)
                    });
                    if let Some(id) = owner {
                        killed_funcs.push(core.instances[&id].func);
                        orphans.extend(core.fail_instance(id, now));
                    } else if let Some(slot) = core
                        .pool
                        .slots()
                        .iter()
                        .position(|s| !s.dead && s.slice.id == sid)
                    {
                        orphans.extend(core.fail_shared_slot(slot, now));
                    }
                    if core.fleet.fail_slice(sid).is_ok() {
                        core.chaos.slice_failures += 1;
                        ffs_obs::record(|| ffs_obs::ObsEvent::SliceFailed { slice: sref(sid) });
                    }
                }
                if !matches!(target, FaultTarget::Slice(_)) {
                    for g in core.fault_gpus(target) {
                        core.chaos.gpu_failures += 1;
                        ffs_obs::record(|| ffs_obs::ObsEvent::GpuFailed { gpu: g.0 });
                    }
                }
                // Free slices that failed also change the placement
                // signature (fail_instance/fail_shared_slot already
                // invalidate, but not this case).
                core.plan_cache.invalidate();
                sched.after(
                    SimDuration::from_secs_f64(core.chaos.spec.recovery_secs),
                    Event::Repair(target),
                );
                // Rebuild: each function that lost an instance replans
                // against the surviving free slices (best-ranked partition
                // that still fits — the §5.2 planner, via the signature-
                // keyed plan cache).
                killed_funcs.sort_unstable();
                killed_funcs.dedup();
                for f in killed_funcs {
                    if let Some((plan, node)) = policies.placer.place(core, f) {
                        let stages = plan.stages.len() as u32;
                        let id = core.launch(f, plan, node, now, sched);
                        core.ka[f] = core.ka[f].next_traced(Transition::UtilizationHigh, f as u32);
                        core.chaos.pipeline_rebuilds += 1;
                        ffs_obs::record(|| ffs_obs::ObsEvent::PipelineRebuilt {
                            func: f as u32,
                            inst: id.0,
                            stages,
                        });
                    }
                }
                for req in orphans {
                    core.schedule_retry(req, sched);
                }
            }
            Event::Repair(target) => {
                // Repair is GPU-granular, like real MIG reconfiguration:
                // every GPU of the target with at least one still-failed
                // slice is repartitioned through the NVML mirror (charging
                // the real RECONFIGURE_SECS), then its slices re-enter
                // placement at Recover time. A repair that finds nothing
                // failed (an overlapping fault's earlier recovery already
                // handled it) charges nothing.
                let mut any = false;
                for g in core.fault_gpus(target) {
                    let has_failed = core
                        .fleet
                        .gpu(g)
                        .map(|gpu| gpu.slices().iter().any(|s| s.is_failed()))
                        .unwrap_or(false);
                    if !has_failed {
                        continue;
                    }
                    any = true;
                    if let Some(nvml) = core.chaos.nvml.as_mut() {
                        let local = g.0 as usize % core.cfg.gpus_per_node;
                        let layout = core.cfg.scheme.layout_for(local).clone();
                        match nvml.repartition(g.0, layout) {
                            Ok(secs) => debug_assert_eq!(secs, RECONFIGURE_SECS),
                            Err(e) => debug_assert!(false, "chaos repartition failed: {e:?}"),
                        }
                    }
                }
                if any {
                    sched.after(
                        SimDuration::from_secs(RECONFIGURE_SECS),
                        Event::Recover(target),
                    );
                }
            }
            Event::Recover(target) => {
                // GPU-granular, matching Repair: repartitioning recreated
                // every slice on the GPU, so all of its failed slices come
                // back together (recovery coalescing across overlapping
                // faults — see docs/RESILIENCE.md).
                let mut any = false;
                for g in core.fault_gpus(target) {
                    let failed: Vec<SliceId> = match core.fleet.gpu(g) {
                        Ok(gpu) => gpu
                            .slices()
                            .iter()
                            .filter(|s| s.is_failed())
                            .map(|s| s.id)
                            .collect(),
                        Err(_) => continue,
                    };
                    for sid in failed {
                        if core.fleet.recover_slice(sid).is_ok() {
                            core.chaos.slice_recoveries += 1;
                            any = true;
                            ffs_obs::record(|| ffs_obs::ObsEvent::SliceRecovered {
                                slice: sref(sid),
                            });
                        }
                    }
                }
                if any {
                    core.plan_cache.invalidate();
                }
            }
            Event::Retry(req) => {
                // The request re-enters the controller from stage 0; work
                // it completed on the dead worker is lost (its exec/load
                // accumulators keep the wasted time, so latency reflects
                // the failure).
                let f = core.requests[req as usize].func;
                core.note_arrival(f);
                core.last_use[f] = now;
                core.pending[f].push_back(req);
                let _rt = span(TelemetryPhase::RoutingScan);
                policies
                    .router
                    .dispatch(core, &*policies.shared, f, now, sched);
            }
            // Hot variants go through `handle`/`handle_run` and never
            // reach the control path.
            _ => unreachable!("handle_control received a hot event"),
        }
    }
}

impl Platform for Engine {
    fn drain(&self) -> SimDuration {
        self.core.cfg.drain
    }

    fn finalize(&mut self, _end: SimTime) {
        let unfinished: Vec<RequestState> = self
            .core
            .requests
            .iter()
            .filter(|r| r.completed.is_none() && !r.moved)
            .cloned()
            .collect();
        for r in unfinished {
            self.core.hub.abandon(&r);
        }
        // Satellite: interval-clamp regression guard. A fault-free run has
        // no out-of-order interval closes, so every `saturating_since`
        // clamp the cost tracker counted indicates a bookkeeping bug.
        debug_assert!(
            self.core.chaos.enabled || self.core.hub.cost.clamps() == 0,
            "fault-free run clamped {} cost intervals",
            self.core.hub.cost.clamps()
        );
    }

    fn take_hub(&mut self) -> MetricsHub {
        crate::plancache::note_run_stats(
            self.core.plan_cache.hits(),
            self.core.plan_cache.misses(),
        );
        std::mem::replace(&mut self.core.hub, MetricsHub::detached())
    }

    fn num_gpus(&self) -> usize {
        self.core.fleet.gpu_count()
    }

    fn slices_per_gpu(&self) -> usize {
        self.core
            .fleet
            .gpus()
            .next()
            .map(|(_, g)| g.slices().len())
            .unwrap_or(0)
    }

    fn fault_stats(&self) -> FaultStats {
        let c = &self.core.chaos;
        FaultStats {
            slice_failures: c.slice_failures,
            gpu_failures: c.gpu_failures,
            retries: c.request_retries,
            retries_exhausted: c.retries_exhausted,
            rebuilds: c.pipeline_rebuilds,
            recoveries: c.slice_recoveries,
        }
    }
}
