//! The sharded fleet engine: lock-stepped multi-cell simulation.
//!
//! One [`EngineCore`](super::engine::EngineCore) owning the whole fleet is
//! the scale wall for thousand-GPU runs: the timer wheel, instance slab,
//! and per-function tables all grow with fleet size, and a single event
//! loop leaves every other core idle. This module partitions the fleet
//! into `cells` — each a full engine with its own wheel, slab, arena
//! containers, and metrics hub over a contiguous slice of the fleet — and
//! advances all of them in lock-stepped time *epochs*, exchanging
//! cross-cell traffic only at epoch boundaries through the deterministic
//! [`Sequencer`].
//!
//! # Cells vs lanes
//!
//! Two different numbers are in play, and keeping them separate is what
//! makes the output reproducible:
//!
//! * **Cells** are *logical* shards, fixed by the run configuration
//!   ([`ShardSpec::cells`]). The fleet partition, the per-cell traces, and
//!   every cross-cell forwarding decision depend only on cells.
//! * **Lanes** are *physical* worker threads ([`ShardSpec::lanes`]). A
//!   lane advances the cells `c ≡ lane (mod lanes)` each epoch. Lanes
//!   decide only *who executes* a cell's epoch, never *what happens* in
//!   it.
//!
//! # Determinism argument
//!
//! The run is a pure function of `(traces, config, seed)` and is
//! byte-identical for any lane count:
//!
//! 1. *Within an epoch* each cell is advanced by exactly one
//!    `run_until(t)` call on its own scheduler and world; cells share no
//!    mutable state, so the epoch's outcome per cell is independent of
//!    which lane ran it or in what wall-clock order.
//! 2. *At a boundary* all lanes rendezvous at a barrier; then one lane
//!    performs the whole exchange serially, scanning cells in index order
//!    and emitting messages through the [`Sequencer`], whose canonical
//!    `(dst, src, seq)` order is derived from simulation state only.
//! 3. *Epoch boundaries* are computed identically by every lane as
//!    `min(k·epoch, end)` in integer microseconds, so all lanes agree on
//!    the schedule without communicating.
//!
//! With one cell the loop degenerates to chained `run_until` calls on one
//! engine, which the deadline-exclusive scheduler semantics make
//! bit-equal to the single `run_until(end)` of
//! [`run_platform`](super::runner::run_platform) — pinned by the
//! `shard_determinism` golden tests.

use std::sync::{Barrier, Mutex};

use ffs_sim::{run_until, Scheduler, Sequencer, SimDuration, SimTime};
use ffs_telemetry::{span, Phase as TelemetryPhase};
use ffs_trace::CellTrace;

use crate::config::FfsConfig;

use super::catalog::FuncId;
use super::engine::{Engine, EngineError};
use super::events::Event;
use super::hub::MetricsHub;
use super::policy::PolicyBundle;
use super::request::RequestState;
use super::runner::{FaultStats, Platform, RunOutput};

/// What a cell's engine may know about the rest of a sharded run. Policy
/// code reads this instead of holding references to peer cells, so the
/// same policies run unchanged inside and outside a sharded engine.
#[derive(Clone, Debug)]
pub struct ShardView {
    /// This cell's index.
    pub cell: usize,
    /// Total number of cells in the run.
    pub cells: usize,
    /// Pending-request backlog of every cell as of the last epoch
    /// boundary (including this one; zeros before the first boundary).
    pub peer_backlog: Vec<u64>,
}

impl ShardView {
    /// The view of an engine running outside a sharded run (one cell,
    /// which is itself).
    pub fn solo() -> Self {
        ShardView {
            cell: 0,
            cells: 1,
            peer_backlog: vec![0],
        }
    }
}

/// Shape of a sharded run.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// Logical cells the fleet is partitioned into (`cfg.nodes` must be
    /// divisible by this).
    pub cells: usize,
    /// Worker threads advancing the cells (clamped to `cells`; purely
    /// physical — any value produces byte-identical output).
    pub lanes: usize,
    /// Epoch length: how often cells rendezvous to exchange traffic.
    pub epoch: SimDuration,
    /// Cap on requests forwarded per starving function per boundary.
    pub max_forwards_per_func: usize,
}

impl ShardSpec {
    /// `cells` cells on `lanes` lanes with the default 1 s epoch.
    pub fn new(cells: usize, lanes: usize) -> Self {
        ShardSpec {
            cells,
            lanes,
            epoch: SimDuration::from_secs(1),
            max_forwards_per_func: 32,
        }
    }

    /// The degenerate single-cell, single-lane spec.
    pub fn solo() -> Self {
        ShardSpec::new(1, 1)
    }
}

/// A cross-cell message. Only starving-function overflow is forwarded
/// today; the envelope leaves room for migration and autoscaler
/// directives to ride the same sequenced channel.
#[derive(Clone, Debug)]
pub enum ShardMsg {
    /// Hand a queued request to a less-loaded peer: it re-enters the
    /// destination engine's controller as a retry at the boundary time,
    /// keeping its original arrival (so end-to-end latency still counts
    /// the time spent starving on the source cell).
    Forward {
        /// Trace-global invocation id.
        global_id: u64,
        /// The function (catalogs are identical across cells).
        func: FuncId,
        /// Original arrival time.
        arrival: SimTime,
        /// Owning tenant (rides along so per-tenant metrics survive
        /// the handoff).
        tenant: u32,
    },
}

/// One cell of a sharded run: an engine over its slice of the fleet, its
/// scheduler, and the map from cell-local request ids back to trace-global
/// ids (grown when requests are adopted from peers).
struct CellState {
    engine: Engine,
    sched: Scheduler<Event>,
    global_ids: Vec<u64>,
}

impl CellState {
    /// Sum of this cell's pending (un-admitted) requests.
    fn backlog(&self) -> u64 {
        self.engine
            .core
            .pending
            .iter()
            .map(|q| q.len() as u64)
            .sum()
    }

    /// Adopts a forwarded request at boundary time `now`: appends a fresh
    /// request record and re-enters it through the engine's existing
    /// retry path, which re-queues and re-dispatches it.
    fn adopt(&mut self, msg: ShardMsg, now: SimTime) {
        let ShardMsg::Forward {
            global_id,
            func,
            arrival,
            tenant,
        } = msg;
        let core = &mut self.engine.core;
        let local = core.requests.len() as u64;
        let slo_ms = core.catalog.slo_ms(func);
        let mut state = RequestState::new(local, func, arrival, slo_ms);
        state.tenant = tenant;
        core.requests.push(state);
        self.global_ids.push(global_id);
        self.sched.at(now, Event::Retry(local));
    }
}

/// Counters describing how a sharded run went (not part of the
/// deterministic output — purely observational, except that `forwards`
/// and `events_per_cell` are themselves deterministic).
#[derive(Clone, Debug)]
pub struct ShardRunStats {
    /// Cells in the run.
    pub cells: usize,
    /// Lanes that executed it.
    pub lanes: usize,
    /// Epoch boundaries crossed.
    pub epochs: u64,
    /// Requests forwarded between cells.
    pub forwards: u64,
    /// Events executed by each cell's scheduler.
    pub events_per_cell: Vec<u64>,
}

impl ShardRunStats {
    /// Total events across all cells.
    pub fn events_total(&self) -> u64 {
        self.events_per_cell.iter().sum()
    }

    /// Load imbalance: max over mean of per-cell executed events (1.0 =
    /// perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.events_per_cell.is_empty() {
            return 1.0;
        }
        let max = *self.events_per_cell.iter().max().unwrap_or(&0) as f64;
        let mean = self.events_total() as f64 / self.events_per_cell.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// Runs a fleet split into `spec.cells` cells over the per-cell traces,
/// advancing cells on `spec.lanes` worker lanes, and merges the per-cell
/// results into one fleet-wide [`RunOutput`].
///
/// `cfg` describes the *whole* fleet; each cell gets `cfg.nodes /
/// spec.cells` nodes and its own policy bundle from `make_policies`. The
/// output is byte-identical for any `spec.lanes`, and with one cell it is
/// byte-identical to `run_platform` on the undivided config.
pub fn run_sharded<F>(
    cfg: &FfsConfig,
    cell_traces: Vec<CellTrace>,
    make_policies: F,
    spec: &ShardSpec,
) -> Result<(RunOutput, ShardRunStats), EngineError>
where
    F: Fn(&FfsConfig) -> PolicyBundle,
{
    let cells = spec.cells;
    assert!(cells >= 1, "need at least one cell");
    assert_eq!(
        cell_traces.len(),
        cells,
        "one trace per cell ({} traces for {cells} cells)",
        cell_traces.len()
    );
    assert!(
        cfg.nodes >= cells && cfg.nodes.is_multiple_of(cells),
        "{} nodes do not divide into {cells} cells",
        cfg.nodes
    );
    let lanes = spec.lanes.clamp(1, cells);
    let mut cell_cfg = cfg.clone();
    cell_cfg.nodes = cfg.nodes / cells;

    // ---- Setup: build every cell serially (cell order, lane-free). ----
    let setup = span(TelemetryPhase::EngineSetup);
    let duration = cell_traces
        .first()
        .map(|ct| ct.trace.duration)
        .unwrap_or(SimDuration::from_secs(0));
    let total_invocations: usize = cell_traces.iter().map(|ct| ct.trace.len()).sum();
    let end = SimTime::ZERO + duration + cell_cfg.drain;
    let end_us = end.as_micros();
    let epoch_us = spec.epoch.as_micros().max(1);
    let mut states: Vec<Mutex<CellState>> = Vec::with_capacity(cells);
    for (i, ct) in cell_traces.into_iter().enumerate() {
        debug_assert_eq!(ct.trace.duration, duration, "cells share one horizon");
        let mut sched: Scheduler<Event> = super::arena::take_scheduler(ct.trace.len());
        sched.preload_sorted(
            ct.trace
                .invocations
                .iter()
                .map(|inv| (inv.arrival, Event::Arrival(inv.id))),
        );
        sched.at(SimTime::ZERO, Event::ScaleTick);
        let mut engine = Engine::new(cell_cfg.clone(), make_policies(&cell_cfg), &ct.trace)?;
        engine.core.shard = ShardView {
            cell: i,
            cells,
            peer_backlog: vec![0; cells],
        };
        states.push(Mutex::new(CellState {
            engine,
            sched,
            global_ids: ct.global_ids,
        }));
    }
    ffs_obs::record_at(0, || ffs_obs::ObsEvent::RunStart {
        invocations: total_invocations as u64,
        gpus: (cfg.nodes * cfg.gpus_per_node) as u32,
    });
    drop(setup);

    // ---- The lock-stepped epoch loop. ----
    // Lane 0 runs inline on the calling thread (so `lanes == 1` spawns no
    // threads and accumulates telemetry exactly like `run_platform`);
    // lanes 1.. are scoped workers. Every lane computes the identical
    // boundary schedule, so the only coordination is the barrier itself.
    let barrier = Barrier::new(lanes);
    let states_ref = &states;
    let barrier_ref = &barrier;
    let mut epochs = 0u64;
    let mut forwards = 0u64;
    std::thread::scope(|s| {
        for lane in 1..lanes {
            s.spawn(move || {
                let mut k = 1u64;
                loop {
                    let t_us = end_us.min(epoch_us.saturating_mul(k));
                    let t = SimTime::from_micros(t_us);
                    for c in (lane..cells).step_by(lanes) {
                        let mut cell = states_ref[c].lock().expect("cell lock");
                        let CellState { engine, sched, .. } = &mut *cell;
                        run_until(engine, sched, t);
                    }
                    {
                        let _b = span(TelemetryPhase::EpochBarrier);
                        barrier_ref.wait();
                    }
                    if t_us >= end_us {
                        break;
                    }
                    // Lane 0 performs the exchange between the barriers.
                    {
                        let _b = span(TelemetryPhase::EpochBarrier);
                        barrier_ref.wait();
                    }
                    k += 1;
                }
                ffs_telemetry::flush_thread();
            });
        }
        // Lane 0, inline.
        let mut seq: Sequencer<ShardMsg> = Sequencer::new(cells);
        let mut k = 1u64;
        loop {
            let t_us = end_us.min(epoch_us.saturating_mul(k));
            let t = SimTime::from_micros(t_us);
            for c in (0..cells).step_by(lanes) {
                let mut cell = states_ref[c].lock().expect("cell lock");
                let CellState { engine, sched, .. } = &mut *cell;
                run_until(engine, sched, t);
            }
            if lanes > 1 {
                let _b = span(TelemetryPhase::EpochBarrier);
                barrier_ref.wait();
            }
            epochs += 1;
            if t_us >= end_us {
                break;
            }
            // Exchange at the boundary — but never at `end`: a request
            // forwarded there could not be adopted into any further
            // simulation, and its record would be lost.
            if cells > 1 {
                forwards += exchange_epoch(states_ref, &mut seq, spec, t);
            }
            if lanes > 1 {
                let _b = span(TelemetryPhase::EpochBarrier);
                barrier_ref.wait();
            }
            k += 1;
        }
    });

    // ---- Merge per-cell results (cell order, lane-invariant). ----
    let _fold = span(TelemetryPhase::ObsFold);
    let mut states: Vec<CellState> = states
        .into_iter()
        .map(|m| m.into_inner().expect("cell lock"))
        .collect();
    let events_per_cell: Vec<u64> = states.iter().map(|st| st.sched.executed()).collect();
    for st in &mut states {
        st.engine.finalize(end);
    }
    ffs_obs::record_at(end_us, || ffs_obs::ObsEvent::RunEnd {
        sim_secs: end.saturating_since(SimTime::ZERO).as_secs_f64(),
    });
    let slices_per_gpu = states
        .first()
        .map(|st| st.engine.slices_per_gpu())
        .unwrap_or(0);
    let mut faults = FaultStats::default();
    let mut log = ffs_metrics::RequestLog::new();
    log.reserve(total_invocations);
    let mut cost = ffs_metrics::CostReport {
        gpu_time_secs: Vec::new(),
        occupied_secs: Vec::new(),
        occupied_gpc_secs: Vec::new(),
        active_secs: Vec::new(),
        window_secs: 0.0,
    };
    let mut busy_gpcs: Vec<(f64, f64)> = Vec::new();
    let mut allocated_gpcs: Vec<(f64, f64)> = Vec::new();
    let mut required_gpcs: Vec<(f64, f64)> = Vec::new();
    for st in &mut states {
        let f = st.engine.fault_stats();
        faults.slice_failures += f.slice_failures;
        faults.gpu_failures += f.gpu_failures;
        faults.retries += f.retries;
        faults.retries_exhausted += f.retries_exhausted;
        faults.rebuilds += f.rebuilds;
        faults.recoveries += f.recoveries;
        let hub: MetricsHub = st.engine.take_hub();
        for &rec in hub.log.records() {
            let mut rec = rec;
            rec.id = st.global_ids[rec.id as usize];
            log.push(rec);
        }
        let c = hub.cost.finalize(end);
        cost.gpu_time_secs.extend(c.gpu_time_secs);
        cost.occupied_secs.extend(c.occupied_secs);
        cost.occupied_gpc_secs.extend(c.occupied_gpc_secs);
        cost.active_secs.extend(c.active_secs);
        cost.window_secs = c.window_secs;
        merge_curve(&mut busy_gpcs, &hub.busy_gpcs.curve());
        merge_curve(&mut allocated_gpcs, &hub.allocated_gpcs.curve());
        merge_curve(&mut required_gpcs, &hub.required_gpcs.curve());
    }
    for st in states {
        super::arena::store_scheduler(st.sched);
        // The engine's drop returns its request buffer and slab to the
        // arena here, on the main thread, exactly like a solo run.
        drop(st.engine);
    }
    let output = RunOutput {
        log,
        cost,
        busy_gpcs,
        allocated_gpcs,
        required_gpcs,
        duration: end.saturating_since(SimTime::ZERO),
        slices_per_gpu,
        faults,
    };
    let stats = ShardRunStats {
        cells,
        lanes,
        epochs,
        forwards,
        events_per_cell,
    };
    Ok((output, stats))
}

/// [`run_sharded`] with the paper's FluidFaaS policy bundle in every cell.
pub fn run_sharded_fluid(
    cfg: &FfsConfig,
    cell_traces: Vec<CellTrace>,
    spec: &ShardSpec,
) -> Result<(RunOutput, ShardRunStats), EngineError> {
    run_sharded(cfg, cell_traces, crate::system::paper_policies, spec)
}

/// The serial boundary exchange (lane 0 only, all lanes parked at the
/// barrier): census every cell's backlog, publish it into each cell's
/// [`ShardView`], forward queued requests of *starving* functions (no
/// instance anywhere on their home cell) to the least-loaded peer, and
/// apply the sequenced messages in canonical order. Returns the number of
/// requests forwarded.
fn exchange_epoch(
    states: &[Mutex<CellState>],
    seq: &mut Sequencer<ShardMsg>,
    spec: &ShardSpec,
    now: SimTime,
) -> u64 {
    let _sr = span(TelemetryPhase::ShardRoute);
    let cells = states.len();
    let mut guards: Vec<std::sync::MutexGuard<'_, CellState>> = states
        .iter()
        .map(|m| m.lock().expect("cell lock"))
        .collect();
    let census: Vec<u64> = guards.iter().map(|g| g.backlog()).collect();
    for g in guards.iter_mut() {
        g.engine.core.shard.peer_backlog.copy_from_slice(&census);
    }
    // Forwarding decisions track the census as it changes, so one epoch
    // cannot dogpile every starving function onto the same peer.
    let mut backlog = census;
    for src in 0..cells {
        for f in guards[src].engine.core.starving_funcs() {
            let mut dst = src;
            for (c, &b) in backlog.iter().enumerate() {
                if c != src && (dst == src || b < backlog[dst]) {
                    dst = c;
                }
            }
            if dst == src || backlog[dst] >= backlog[src] {
                continue;
            }
            for _ in 0..spec.max_forwards_per_func {
                let g = &mut *guards[src];
                let Some(req) = g.engine.core.pending[f].pop_front() else {
                    break;
                };
                let r = &mut g.engine.core.requests[req as usize];
                r.moved = true;
                let arrival = r.arrival;
                let tenant = r.tenant;
                let global = g.global_ids[req as usize];
                seq.send(
                    src,
                    dst,
                    ShardMsg::Forward {
                        global_id: global,
                        func: f,
                        arrival,
                        tenant,
                    },
                );
                backlog[src] -= 1;
                backlog[dst] += 1;
            }
        }
    }
    let envelopes = seq.drain_epoch();
    let n = envelopes.len() as u64;
    for env in envelopes {
        guards[env.dst].adopt(env.msg, now);
    }
    n
}

/// Pointwise-sums `add` into `into` by bin index (cells share bin width
/// and time base, so index `i` is the same instant everywhere).
fn merge_curve(into: &mut Vec<(f64, f64)>, add: &[(f64, f64)]) {
    if into.len() < add.len() {
        into.resize(add.len(), (0.0, 0.0));
        for (slot, &(t, _)) in into.iter_mut().zip(add) {
            slot.0 = t;
        }
    }
    for (slot, &(_, v)) in into.iter_mut().zip(add) {
        slot.1 += v;
    }
}

/// FNV-1a digest of everything in a [`RunOutput`], folding every f64 as
/// its bit pattern. Two runs are byte-identical exactly when their
/// digests agree; the scale harness and the determinism tests use this to
/// cross-check multi-lane runs against the 1-lane reference.
pub fn run_output_digest(out: &RunOutput) -> u64 {
    let mut h = Fnv::new();
    h.u64(out.log.len() as u64);
    for r in out.log.records() {
        h.u64(r.id);
        h.u64(r.app_index as u64);
        h.u64(r.arrival.as_micros());
        match r.completed {
            None => h.u64(0),
            Some(t) => {
                h.u64(1);
                h.u64(t.as_micros());
            }
        }
        h.f64(r.slo_ms);
        h.f64(r.breakdown.queue_ms);
        h.f64(r.breakdown.load_ms);
        h.f64(r.breakdown.exec_ms);
        h.f64(r.breakdown.transfer_ms);
    }
    for v in [
        &out.cost.gpu_time_secs,
        &out.cost.occupied_secs,
        &out.cost.occupied_gpc_secs,
        &out.cost.active_secs,
    ] {
        h.u64(v.len() as u64);
        for &x in v {
            h.f64(x);
        }
    }
    h.f64(out.cost.window_secs);
    for curve in [&out.busy_gpcs, &out.allocated_gpcs, &out.required_gpcs] {
        h.u64(curve.len() as u64);
        for &(t, v) in curve.iter() {
            h.f64(t);
            h.f64(v);
        }
    }
    h.u64(out.duration.as_micros());
    h.u64(out.slices_per_gpu as u64);
    h.u64(out.faults.slice_failures);
    h.u64(out.faults.gpu_failures);
    h.u64(out.faults.retries);
    h.u64(out.faults.retries_exhausted);
    h.u64(out.faults.rebuilds);
    h.u64(out.faults.recoveries);
    h.finish()
}

/// Minimal FNV-1a over u64 words.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn u64(&mut self, x: u64) {
        for b in x.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn f64(&mut self, x: f64) {
        self.u64(x.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}
