//! Per-request lifecycle bookkeeping.

use ffs_metrics::Breakdown;
use ffs_sim::SimTime;

use super::catalog::FuncId;

/// How a request was ultimately served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServePath {
    /// A monolithic exclusive-hot instance.
    Monolithic,
    /// A pipelined exclusive-hot instance (stages across MIG slices).
    Pipelined,
    /// The function's time-sharing instance on a shared slice.
    TimeShared,
}

/// Mutable state of one request as it moves through a platform.
#[derive(Clone, Debug)]
pub struct RequestState {
    /// Trace-wide id.
    pub id: u64,
    /// The function serving it.
    pub func: FuncId,
    /// Arrival time.
    pub arrival: SimTime,
    /// Absolute deadline (`arrival + SLO`).
    pub deadline: SimTime,
    /// Completion time, when done.
    pub completed: Option<SimTime>,
    /// Accumulated non-queue latency components; queueing is derived at
    /// completion as the remainder.
    pub exec_ms: f64,
    /// Model-load waiting attributed to this request.
    pub load_ms: f64,
    /// Boundary-transfer time attributed to this request.
    pub transfer_ms: f64,
    /// How the request was served (set when execution starts).
    pub served: Option<ServePath>,
    /// Handed to a peer shard at an epoch boundary: the local record is a
    /// tombstone — the peer owns the request's outcome, so finalize must
    /// not count this copy as abandoned.
    pub moved: bool,
    /// Owning tenant, copied from the trace invocation (0 when the
    /// caller never sets it, e.g. unit-test fixtures).
    pub tenant: u32,
}

impl RequestState {
    /// Creates the state for an arriving request.
    pub fn new(id: u64, func: FuncId, arrival: SimTime, slo_ms: f64) -> Self {
        RequestState {
            id,
            func,
            arrival,
            deadline: arrival + ffs_sim::SimDuration::from_millis_f64(slo_ms),
            completed: None,
            exec_ms: 0.0,
            load_ms: 0.0,
            transfer_ms: 0.0,
            served: None,
            moved: false,
            tenant: 0,
        }
    }

    /// The routing urgency key of §5.3: deadline minus estimated execution
    /// and load times. Smaller = more urgent.
    pub fn urgency_key(&self, est_exec_ms: f64, est_load_ms: f64) -> i64 {
        let d = self.deadline.as_micros() as i64;
        d - ((est_exec_ms + est_load_ms) * 1_000.0) as i64
    }

    /// Finalises the request at `t` and produces its breakdown (queue time
    /// is the unaccounted remainder of end-to-end latency).
    pub fn finish(&mut self, t: SimTime) -> Breakdown {
        self.completed = Some(t);
        let total_ms = t.saturating_since(self.arrival).as_secs_f64() * 1_000.0;
        let queue_ms = (total_ms - self.exec_ms - self.load_ms - self.transfer_ms).max(0.0);
        Breakdown {
            queue_ms,
            load_ms: self.load_ms,
            exec_ms: self.exec_ms,
            transfer_ms: self.transfer_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffs_sim::SimDuration;

    #[test]
    fn deadline_derived_from_slo() {
        let r = RequestState::new(0, 1, SimTime::from_secs(10), 500.0);
        assert_eq!(
            r.deadline,
            SimTime::from_secs(10) + SimDuration::from_millis(500)
        );
    }

    #[test]
    fn finish_computes_queue_remainder() {
        let mut r = RequestState::new(0, 0, SimTime::from_secs(1), 1_000.0);
        r.exec_ms = 200.0;
        r.transfer_ms = 30.0;
        r.load_ms = 70.0;
        let b = r.finish(SimTime::from_secs(1) + SimDuration::from_millis(500));
        assert!((b.queue_ms - 200.0).abs() < 1e-9);
        assert!((b.total_ms() - 500.0).abs() < 1e-9);
        assert_eq!(
            r.completed,
            Some(SimTime::from_secs(1) + SimDuration::from_millis(500))
        );
    }

    #[test]
    fn urgency_orders_by_slack() {
        let r1 = RequestState::new(0, 0, SimTime::from_secs(1), 300.0);
        let r2 = RequestState::new(1, 0, SimTime::from_secs(1), 600.0);
        // Same estimates: earlier deadline is more urgent.
        assert!(r1.urgency_key(100.0, 0.0) < r2.urgency_key(100.0, 0.0));
        // Larger estimated work makes a request more urgent.
        assert!(r2.urgency_key(500.0, 100.0) < r2.urgency_key(100.0, 0.0));
    }
}
