//! Scheduling policy traits: the per-mechanism decision points the shared
//! [`engine`](super::engine) delegates to.
//!
//! The engine owns the event loop, the request table, the MIG fleet, the
//! metrics hub and the `ffs-obs` recorder hooks; everything *discretionary*
//! — which instance serves a request, when a request overflows to time
//! sharing, how the shared pool grows and evicts, when instances launch
//! and retire, and when pipelines migrate — is a policy behind one of the
//! traits below. A platform (FluidFaaS, ESG, INFless, or an ablation arm)
//! is just a [`PolicyBundle`] over the engine.
//!
//! Adding a new scheduler means implementing the traits whose decisions
//! differ and reusing the stock implementations for the rest; see
//! `docs/ARCHITECTURE.md` for a walkthrough.

use ffs_mig::NodeId;
use ffs_pipeline::DeploymentPlan;
use ffs_sim::{Scheduler, SimTime};

use super::catalog::FuncId;
use super::engine::EngineCore;
use super::events::{Event, InstanceId};
use super::slab::PhaseTag;

/// Request routing (§5.3): drains a function's backlog onto instances and,
/// per policy, overflows to the time-sharing pool.
pub trait Router: Send {
    /// Routes as many pending requests of `f` as can start now. Policies
    /// that support time sharing hand overflow work to `shared`.
    fn dispatch(
        &self,
        core: &mut EngineCore,
        shared: &dyn SharedPoolPolicy,
        f: FuncId,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    );
}

/// The eviction-based time-sharing pool (§5.3): slot binding, LRU
/// eviction, and pool grow/shrink.
pub trait SharedPoolPolicy: Send {
    /// Admits a pending request of `f` into the shared pool, binding the
    /// function (and growing the pool) as needed. Returns true if a
    /// request was taken off the pending queue.
    fn admit(
        &self,
        core: &mut EngineCore,
        f: FuncId,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) -> bool;

    /// Lets an idle slot pull its most urgent eligible request, evicting
    /// the resident model when necessary. Returns true if work started.
    fn dispatch_slot(
        &self,
        core: &mut EngineCore,
        slot: usize,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) -> bool;

    /// Per-tick maintenance: grow overloaded slots, shrink idle ones.
    fn maintain(&self, core: &mut EngineCore, now: SimTime);
}

/// Exclusive-instance scaling (§5.3): launch pressure, demotion /
/// retirement, and the Fig. 8 keep-alive transitions.
pub trait Autoscaler: Send {
    /// Arrival hook: keep-alive lineage transitions driven by demand.
    fn on_arrival(&self, core: &mut EngineCore, f: FuncId);

    /// Scale tick: launch instances under pressure (placement delegated to
    /// `placer`) and retire instances the policy deems surplus.
    fn scale(
        &self,
        core: &mut EngineCore,
        placer: &dyn Placer,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    );

    /// Keep-alive sweep: Fig. 8 ⑤ idle expiries to cold.
    fn keep_alive(&self, core: &mut EngineCore, now: SimTime);
}

/// Pipeline→monolithic migration (§5.3).
pub trait Migrator: Send {
    /// Probes for migration opportunities and starts at most as many as
    /// the policy allows per tick.
    fn migrate(
        &self,
        core: &mut EngineCore,
        placer: &dyn Placer,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    );
}

/// Instance placement: chooses the deployment plan (and host node) for one
/// new exclusive instance.
pub trait Placer: Send {
    /// The plan for a new instance of `f` on the current fleet state, or
    /// `None` if no node can host one.
    fn place(&self, core: &mut EngineCore, f: FuncId) -> Option<(DeploymentPlan, NodeId)>;
}

/// The full policy complement a platform runs with.
pub struct PolicyBundle {
    /// Request routing.
    pub router: Box<dyn Router>,
    /// Time-sharing pool behaviour.
    pub shared: Box<dyn SharedPoolPolicy>,
    /// Exclusive-instance scaling.
    pub autoscaler: Box<dyn Autoscaler>,
    /// Pipeline migration.
    pub migrator: Box<dyn Migrator>,
    /// Instance placement.
    pub placer: Box<dyn Placer>,
}

/// A disabled time-sharing pool: admits nothing and maintains nothing.
/// Used by the monolithic baselines and the `no-time-sharing` ablation.
pub struct NoSharedPool;

impl SharedPoolPolicy for NoSharedPool {
    fn admit(
        &self,
        _core: &mut EngineCore,
        _f: FuncId,
        _now: SimTime,
        _sched: &mut Scheduler<Event>,
    ) -> bool {
        false
    }

    fn dispatch_slot(
        &self,
        _core: &mut EngineCore,
        _slot: usize,
        _now: SimTime,
        _sched: &mut Scheduler<Event>,
    ) -> bool {
        false
    }

    fn maintain(&self, _core: &mut EngineCore, _now: SimTime) {}
}

/// A disabled migrator: never moves a pipeline. Used by the baselines and
/// the `no-migration` ablation.
pub struct NoMigrator;

impl Migrator for NoMigrator {
    fn migrate(
        &self,
        _core: &mut EngineCore,
        _placer: &dyn Placer,
        _now: SimTime,
        _sched: &mut Scheduler<Event>,
    ) {
    }
}

/// Routes `req` onto instance `id`: enqueue at stage 0 and kick the stage.
/// The caller removes `req` from the function's pending queue.
pub fn route_to_instance(
    core: &mut EngineCore,
    id: InstanceId,
    req: u64,
    now: SimTime,
    sched: &mut Scheduler<Event>,
) {
    // Routers only pass ids they just read from `instances_of`, and nothing
    // retires an instance between the read and this call; stay total anyway
    // so a policy bug degrades to a dropped route, not a crash.
    let Some(inst) = core.instances.get_mut(&id) else {
        debug_assert!(false, "routed to a retired instance");
        return;
    };
    inst.stage_queues[0].push_back(req);
    inst.last_used = now;
    core.instances.note_admitted(id);
    core.try_start_stage(id, 0, now, sched);
}

/// The lowest-latency instance of `f` with admission capacity (the
/// deadline-aware chooser shared by FluidFaaS and ESG routing).
///
/// Reads the slab's routing index — the maintained per-function list of
/// admissible instances — so the scan is O(candidates) rather than a
/// filter over every instance of `f`. The index is ascending by id and
/// the argmin uses strict `<`, so the first-best tie winner is identical
/// to the full scan's ([`lowest_latency_full_scan`], `debug_assert`ed
/// equal here and pinned by `proptest_route_index`).
///
/// `_slo_ms` documents the admission bound's input; the bound itself is
/// precomputed per instance (SLO and bottleneck are both fixed at launch).
pub fn lowest_latency_instance(core: &EngineCore, f: FuncId, _slo_ms: f64) -> Option<InstanceId> {
    let mut best: Option<(InstanceId, f64)> = None;
    for &idx in core.instances.admissible_of(f) {
        let id = InstanceId(idx as u64);
        let lat = core.instances.latency_ms_of(id);
        let better = match best {
            None => true,
            Some((_, best_lat)) => lat < best_lat,
        };
        if better {
            best = Some((id, lat));
        }
    }
    let chosen = best.map(|(id, _)| id);
    debug_assert_eq!(
        chosen,
        lowest_latency_full_scan(core, f),
        "routing index disagrees with the full scan for function {f}"
    );
    chosen
}

/// The reference full scan [`lowest_latency_instance`] replaced: filter
/// every instance of `f` by admission capacity, argmin latency with
/// strict `<` (ascending ids make the first best the lowest-id winner).
/// Kept as the executable specification of the routing index — the
/// `debug_assert` above and `proptest_route_index` compare against it.
pub fn lowest_latency_full_scan(core: &EngineCore, f: FuncId) -> Option<InstanceId> {
    let mut best: Option<(InstanceId, f64)> = None;
    for &id in &core.instances_of[f] {
        if core.instances.has_admission_capacity(id) {
            let lat = core.instances.latency_ms_of(id);
            let better = match best {
                None => true,
                Some((_, best_lat)) => lat < best_lat,
            };
            if better {
                best = Some((id, lat));
            }
        }
    }
    best.map(|(id, _)| id)
}

/// Aggregate view of a function's non-draining exclusive fleet, the input
/// of the overflow-to-shared decision (§5.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExclusiveView {
    /// Ready instances.
    pub ready: usize,
    /// Instances still cold-starting.
    pub launching: usize,
    /// In-flight plus queued requests across the ready instances.
    pub occupancy: usize,
    /// Best (lowest) bottleneck stage time among ready instances (ms);
    /// infinity when none is ready.
    pub best_bottleneck_ms: f64,
    /// Best (lowest) end-to-end latency among ready instances (ms);
    /// infinity when none is ready.
    pub best_latency_ms: f64,
}

/// Summarizes `f`'s exclusive fleet for [`overflow_decision`].
pub fn exclusive_view(core: &EngineCore, f: FuncId) -> ExclusiveView {
    let mut v = ExclusiveView {
        ready: 0,
        launching: 0,
        occupancy: 0,
        best_bottleneck_ms: f64::INFINITY,
        best_latency_ms: f64::INFINITY,
    };
    // Hot-column scan: the per-instance scalars (phase tag, occupancy,
    // estimate) live in the slab's SoA columns, so this per-dispatch loop
    // never touches the full instance records.
    for &id in &core.instances_of[f] {
        match core.instances.phase_tag(id) {
            PhaseTag::Ready => {
                v.ready += 1;
                v.occupancy += core.instances.occupancy_of(id) as usize;
                v.best_bottleneck_ms = v
                    .best_bottleneck_ms
                    .min(core.instances.bottleneck_ms_of(id));
                v.best_latency_ms = v.best_latency_ms.min(core.instances.latency_ms_of(id));
            }
            PhaseTag::Launching => v.launching += 1,
            PhaseTag::Draining | PhaseTag::Empty => {}
        }
    }
    v
}

/// The pure overflow rule (§5.3): a request overflows to time sharing when
/// no exclusive instance will exist soon, or when the estimated wait for
/// exclusive capacity exceeds the request's remaining slack.
/// `slack_budget_ms` is the time from now until the request's deadline.
pub fn overflow_decision(view: &ExclusiveView, slack_budget_ms: f64) -> bool {
    if view.ready == 0 {
        // Nothing serving yet. If replacements are launching, a short
        // wait beats an eviction-reload on the shared slice.
        return view.launching == 0;
    }
    let wait_ms = view.occupancy as f64 * view.best_bottleneck_ms / view.ready as f64;
    let slack_ms = slack_budget_ms - view.best_latency_ms;
    wait_ms > slack_ms
}

/// [`overflow_decision`] applied to the live engine state for request
/// `req` of function `f`.
pub fn should_overflow_to_shared(core: &EngineCore, f: FuncId, req: u64, now: SimTime) -> bool {
    let view = exclusive_view(core, f);
    let budget_ms = core.requests[req as usize]
        .deadline
        .saturating_since(now)
        .as_secs_f64()
        * 1_000.0;
    overflow_decision(&view, budget_ms)
}
