//! The metrics hub: one place where platforms report lifecycle events.

use ffs_metrics::{BinnedSeries, Breakdown, CostTracker, RequestLog, RequestRecord};
use ffs_mig::SliceId;
use ffs_sim::{SimDuration, SimTime};

use super::catalog::FunctionCatalog;
use super::request::RequestState;

/// Collects every metric a run produces.
#[derive(Debug)]
pub struct MetricsHub {
    /// Per-request records.
    pub log: RequestLog,
    /// Cost accounting (GPU time / MIG time / occupied / active).
    pub cost: CostTracker,
    /// Busy GPCs over time (utilization figures).
    pub busy_gpcs: BinnedSeries,
    /// Allocated GPCs over time (what the system *holds*).
    pub allocated_gpcs: BinnedSeries,
    /// The ideal GPC demand over time (Figure 3's "required resources").
    pub required_gpcs: BinnedSeries,
    app_of_func: Vec<usize>,
    slo_of_func: Vec<f64>,
}

impl MetricsHub {
    /// Creates a hub for a fleet of `num_gpus` GPUs.
    pub fn new(catalog: &FunctionCatalog, num_gpus: usize, bin: SimDuration) -> Self {
        MetricsHub {
            log: RequestLog::new(),
            cost: CostTracker::new(num_gpus, SimTime::ZERO),
            busy_gpcs: BinnedSeries::new(bin),
            allocated_gpcs: BinnedSeries::new(bin),
            required_gpcs: BinnedSeries::new(bin),
            app_of_func: catalog
                .ids()
                .map(|f| catalog.profile(f).app.index())
                .collect(),
            slo_of_func: catalog.ids().map(|f| catalog.slo_ms(f)).collect(),
        }
    }

    /// An empty placeholder hub, used when a platform surrenders its real
    /// hub at the end of a run.
    pub fn detached() -> Self {
        MetricsHub {
            log: RequestLog::new(),
            cost: CostTracker::new(0, SimTime::ZERO),
            busy_gpcs: BinnedSeries::new(SimDuration::from_secs(1)),
            allocated_gpcs: BinnedSeries::new(SimDuration::from_secs(1)),
            required_gpcs: BinnedSeries::new(SimDuration::from_secs(1)),
            app_of_func: Vec::new(),
            slo_of_func: Vec::new(),
        }
    }

    /// Records a completed request.
    pub fn complete(&mut self, req: &RequestState, breakdown: Breakdown) {
        if ffs_obs::enabled() {
            let latency_ms = req
                .completed
                .map(|t| t.saturating_since(req.arrival).as_secs_f64() * 1_000.0)
                .unwrap_or(f64::NAN);
            let slo_ms = self.slo_of_func[req.func];
            ffs_obs::record(|| ffs_obs::ObsEvent::RequestCompleted {
                req: req.id,
                app: self.app_of_func[req.func] as u32,
                latency_ms,
                slo_ms,
                slo_met: latency_ms <= slo_ms,
            });
        }
        self.log.push(RequestRecord {
            id: req.id,
            app_index: self.app_of_func[req.func],
            arrival: req.arrival,
            completed: req.completed,
            slo_ms: self.slo_of_func[req.func],
            breakdown,
            tenant: req.tenant,
        });
    }

    /// Records a request that never completed (dropped or unfinished at
    /// run end) — an SLO miss.
    pub fn abandon(&mut self, req: &RequestState) {
        ffs_obs::record(|| ffs_obs::ObsEvent::RequestAbandoned {
            req: req.id,
            app: self.app_of_func[req.func] as u32,
        });
        self.log.push(RequestRecord {
            id: req.id,
            app_index: self.app_of_func[req.func],
            arrival: req.arrival,
            completed: None,
            slo_ms: self.slo_of_func[req.func],
            breakdown: Breakdown::default(),
            tenant: req.tenant,
        });
    }

    /// Slice allocation hook (forward to cost tracking).
    pub fn slice_allocated(&mut self, t: SimTime, slice: SliceId, gpcs: u32) {
        self.cost
            .slice_allocated(t, (slice.gpu.0, slice.index), gpcs);
    }

    /// Slice release hook.
    pub fn slice_released(&mut self, t: SimTime, slice: SliceId) {
        self.cost.slice_released(t, (slice.gpu.0, slice.index));
    }

    /// Slice started processing.
    pub fn slice_active(&mut self, t: SimTime, slice: SliceId) {
        self.cost.slice_active(t, (slice.gpu.0, slice.index));
    }

    /// Slice stopped processing.
    pub fn slice_idle(&mut self, t: SimTime, slice: SliceId) {
        self.cost.slice_idle(t, (slice.gpu.0, slice.index));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::catalog::FunctionCatalog;
    use ffs_mig::{GpuId, SliceId};
    use ffs_profile::PerfModel;
    use ffs_trace::WorkloadClass;

    fn hub() -> MetricsHub {
        let catalog =
            FunctionCatalog::for_workload(WorkloadClass::Light, 1.5, &PerfModel::default());
        MetricsHub::new(&catalog, 2, SimDuration::from_secs(1))
    }

    #[test]
    fn complete_and_abandon_record_requests() {
        let mut h = hub();
        let mut req = RequestState::new(0, 1, SimTime::from_secs(1), 500.0);
        req.exec_ms = 100.0;
        let breakdown = req.finish(SimTime::from_secs(1) + SimDuration::from_millis(200));
        h.complete(&req, breakdown);
        let dropped = RequestState::new(1, 0, SimTime::from_secs(2), 500.0);
        h.abandon(&dropped);
        assert_eq!(h.log.len(), 2);
        assert_eq!(h.log.records()[0].app_index, 1);
        assert!(h.log.records()[0].slo_hit());
        assert!(!h.log.records()[1].slo_hit(), "abandoned = miss");
        assert!((h.log.slo_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slice_hooks_flow_into_cost_tracking() {
        let mut h = hub();
        let slice = SliceId::new(GpuId(1), 0);
        h.slice_allocated(SimTime::from_secs(0), slice, 4);
        h.slice_active(SimTime::from_secs(1), slice);
        h.slice_idle(SimTime::from_secs(3), slice);
        h.slice_released(SimTime::from_secs(5), slice);
        let report = h.cost.finalize(SimTime::from_secs(10));
        assert!((report.gpu_time_secs[1] - 5.0).abs() < 1e-9);
        assert!((report.active_secs[1] - 2.0).abs() < 1e-9);
        assert!((report.occupied_gpc_secs[1] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn detached_hub_is_inert() {
        let h = MetricsHub::detached();
        assert!(h.log.is_empty());
        assert!(h.busy_gpcs.is_empty());
    }
}
