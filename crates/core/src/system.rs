//! The FluidFaaS platform: the paper's §5 mechanisms expressed as the
//! FluidFaaS policy bundle over the shared [`engine`](crate::platform::engine) —
//! on-the-fly pipeline construction ([`FluidPlacer`]), hotness-aware
//! eviction-based time sharing ([`FluidSharedPool`]), heterogeneity-aware
//! routing ([`FluidRouter`]), autoscaling with the Fig. 8 keep-alive
//! lineage ([`FluidAutoscaler`]) and pipeline migration ([`FluidMigrator`]).

use ffs_mig::NodeId;
use ffs_pipeline::DeploymentPlan;
use ffs_sim::{Scheduler, SimDuration, SimTime, World};
use ffs_trace::Trace;

use crate::config::{FfsConfig, ScalingPolicy};
use crate::keepalive::{KeepAliveState, Transition};
use crate::platform::catalog::{FuncId, FunctionCatalog};
use crate::platform::engine::{sref, Engine, EngineCore, EngineError, MAX_LAUNCHES_PER_TICK};
use crate::platform::events::{Event, InstanceId};
use crate::platform::hub::MetricsHub;
use crate::platform::policy::{
    lowest_latency_instance, route_to_instance, should_overflow_to_shared, Autoscaler, Migrator,
    NoMigrator, NoSharedPool, Placer, PolicyBundle, Router, SharedPoolPolicy,
};
use crate::platform::runner::Platform;

pub use crate::platform::engine::SchedulerLog;

// ----------------------------------------------------------------------
// Routing (§5.3)
// ----------------------------------------------------------------------

/// FluidFaaS routing: lowest-latency exclusive-hot instance first, then
/// overflow to the time-sharing instance only when waiting for exclusive
/// capacity would blow the deadline.
pub struct FluidRouter;

impl Router for FluidRouter {
    fn dispatch(
        &self,
        core: &mut EngineCore,
        shared: &dyn SharedPoolPolicy,
        f: FuncId,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) {
        while let Some(&req) = core.pending[f].front() {
            if route_to_exclusive(core, f, req, now, sched) {
                core.pending[f].pop_front();
                continue;
            }
            // Overflow to the time-sharing instance only when waiting for
            // exclusive capacity would blow the deadline (§5.3: hot
            // instances first, "then the remaining requests are routed to
            // the time sharing state instance").
            if should_overflow_to_shared(core, f, req, now) && shared.admit(core, f, now, sched) {
                continue;
            }
            break;
        }
    }
}

/// Routes to the lowest-latency exclusive-hot instance with capacity.
fn route_to_exclusive(
    core: &mut EngineCore,
    f: FuncId,
    req: u64,
    now: SimTime,
    sched: &mut Scheduler<Event>,
) -> bool {
    let slo = core.catalog.slo_ms(f);
    let Some(id) = lowest_latency_instance(core, f, slo) else {
        return false;
    };
    route_to_instance(core, id, req, now, sched);
    true
}

// ----------------------------------------------------------------------
// Eviction-based time sharing (§5.3)
// ----------------------------------------------------------------------

/// The eviction-based time-sharing pool: one resident model per shared
/// slice, LRU eviction to CPU memory, grow on scarcity and overload,
/// shrink when idle.
pub struct FluidSharedPool;

impl SharedPoolPolicy for FluidSharedPool {
    /// Ensures function `f` has a time-sharing binding (creating /
    /// growing the pool as needed) and lets its slot pull pending work.
    fn admit(
        &self,
        core: &mut EngineCore,
        f: FuncId,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) -> bool {
        let mem = core.catalog.profile(f).total_mem_gb();
        // Prefer an empty slot, then growing the pool; share (and pay
        // evictions) only when the fleet has no spare slice — eviction-based
        // sharing exists to ride out scarcity, not to thrash under
        // abundance.
        let slot_idx = match core.pool.slot_of(f) {
            Some(i) => i,
            None => {
                if core.pool.empty_fitting(mem).is_none() {
                    // No dedicated slot available: try to grow the pool.
                    let _ = grow_pool(core, f, mem, now);
                }
                match core.pool.bind(f, mem) {
                    Some(i) => i,
                    None => return false,
                }
            }
        };
        core.ka[f] = core.ka[f].next_traced(Transition::RequestArrived, f as u32);
        self.dispatch_slot(core, slot_idx, now, sched)
    }

    /// Starts the most urgent pending request among the slot's bound
    /// functions if the slot is idle, evicting the LRU resident when
    /// needed (§5.3). Requests stay in the shared per-function pending
    /// queue until a worker (exclusive or shared) actually takes them, so
    /// nothing gets stranded behind a slow slice.
    fn dispatch_slot(
        &self,
        core: &mut EngineCore,
        slot_idx: usize,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) -> bool {
        if !core.pool.slot(slot_idx).is_free() {
            return false;
        }
        // Most urgent pending head among bound functions (§5.3 ordering:
        // deadline minus estimated execution and load times, ascending).
        // Candidates are scanned by index (no clone of the bound list);
        // exec/load estimates come from the per-(function, profile) tables
        // precomputed at engine construction.
        let slice_profile = core.pool.slot(slot_idx).slice.profile;
        let slice_id = core.pool.slot(slot_idx).slice.id;
        let resident = core.pool.slot(slot_idx).resident;
        let mut best: Option<(i64, FuncId, u64)> = None;
        for i in 0..core.pool.slot(slot_idx).bound.len() {
            let f = core.pool.slot(slot_idx).bound[i];
            let Some(&req) = core.pending[f].front() else {
                continue;
            };
            if !should_overflow_to_shared(core, f, req, now) {
                continue;
            }
            let exec = core.shared_exec_of(f, slice_profile);
            let load = if resident == Some(f) {
                0.0
            } else {
                core.load_all_ms[f]
            };
            let key = core.requests[req as usize].urgency_key(exec, load);
            if best.is_none_or(|(k, _, _)| key < k) {
                best = Some((key, f, req));
            }
        }
        let Some((_, f, req)) = best else {
            return false;
        };
        core.pending[f].pop_front();
        if resident == Some(f) {
            core.start_shared_exec(slot_idx, req, now, sched);
        } else {
            // Evict the resident (→ Warm ④) and reload `f` from CPU.
            let evicted = core.pool.slot_mut(slot_idx).resident.take();
            let mut load_ms = core.load_all_ms[f];
            if let Some(g) = evicted {
                load_ms += core.load_all_ms[g];
                core.ka[g] = core.ka[g].next_traced(Transition::Evicted, g as u32);
                core.sched_log.evictions += 1;
                ffs_obs::record(|| ffs_obs::ObsEvent::Eviction {
                    func: g as u32,
                    reason: ffs_obs::EvictionReason::SliceContention,
                    slice: sref(slice_id),
                });
            }
            core.sched_log.reloads += 1;
            let slot = core.pool.slot_mut(slot_idx);
            slot.loading = Some((f, req));
            core.requests[req as usize].load_ms += load_ms;
            sched.after(
                SimDuration::from_millis_f64(load_ms),
                Event::SharedLoadDone {
                    slot: slot_idx,
                    req,
                },
            );
        }
        true
    }

    fn maintain(&self, core: &mut EngineCore, now: SimTime) {
        // Grow: overloaded slots (deep queues) get help if a slice is free.
        let mut grow_for: Vec<(FuncId, f64)> = Vec::new();
        for idx in 0..core.pool.len() {
            let window = core.cfg.scale_tick;
            let slot = core.pool.slot_mut(idx);
            let util = slot.take_utilization(now, window);
            if util > core.cfg.promote_utilization && slot.queue.len() > 1 {
                if let Some(&f) = slot.bound.first() {
                    let mem = core.catalog.profile(f).total_mem_gb();
                    grow_for.push((f, mem));
                }
            }
        }
        for (f, mem) in grow_for {
            let _ = grow_pool(core, f, mem, now);
        }
        // Shrink: empty unbound slots release their slices. Dead
        // (fault-tombstoned) slots are skipped — their slice is already
        // released and their pool index must stay stable for in-flight
        // shared events.
        let mut idx = 0;
        while idx < core.pool.len() {
            let slot = core.pool.slot(idx);
            if !slot.dead && slot.bound.is_empty() && slot.is_free() && slot.queue.is_empty() {
                let slice = core.pool.remove_slot(idx);
                if core.fleet.release(slice.id).is_ok() {
                    core.hub.slice_released(now, slice.id);
                } else {
                    // Unreachable: a live pool slot owns its allocation.
                    debug_assert!(false, "shared slice was not allocated");
                }
                core.plan_cache.invalidate();
                core.sched_log.pool_shrinks += 1;
                ffs_obs::record(|| ffs_obs::ObsEvent::PoolShrink {
                    slice: sref(slice.id),
                });
            } else {
                idx += 1;
            }
        }
    }
}

/// Adds a free slice that fits `mem` to the shared pool.
pub(crate) fn grow_pool(core: &mut EngineCore, f: FuncId, mem: f64, now: SimTime) -> Option<usize> {
    let mut candidates = core.fleet.free_slices_at_least(None, mem);
    // Smallest slice that fits, deterministic by id.
    candidates.sort_by_key(|s| (s.profile, s.id));
    let pick = *candidates.first()?;
    if core.fleet.allocate(pick.id).is_err() {
        // Unreachable in practice (the free list was just computed), but a
        // stale pick must not take down the run: just skip growing.
        debug_assert!(false, "free-listed slice was not allocatable");
        return None;
    }
    core.plan_cache.invalidate();
    core.hub.slice_allocated(now, pick.id, pick.profile.gpcs());
    core.sched_log.pool_grows += 1;
    ffs_obs::record(|| ffs_obs::ObsEvent::PoolGrow {
        slice: sref(pick.id),
        func: f as u32,
    });
    Some(core.pool.add_slot(pick, now))
}

// ----------------------------------------------------------------------
// Scaling and keep-alive (§5.3, Fig. 8)
// ----------------------------------------------------------------------

/// FluidFaaS autoscaling: reactive or Erlang-C launch pressure, demotion
/// of low-utilization instances (③), and the keep-alive sweep (⑤).
pub struct FluidAutoscaler {
    /// How launch pressure is computed.
    pub policy: ScalingPolicy,
}

impl Autoscaler for FluidAutoscaler {
    fn on_arrival(&self, core: &mut EngineCore, f: FuncId) {
        if core.ka[f] == KeepAliveState::Cold {
            core.ka[f] = core.ka[f].next_traced(Transition::RequestArrived, f as u32);
            // ①
        }
    }

    fn scale(
        &self,
        core: &mut EngineCore,
        placer: &dyn Placer,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) {
        // Resource pressure from starving functions bypasses the demote
        // hysteresis: the paper's transition ③ (utilization below 30% →
        // time sharing) exists precisely so lightly-used exclusive slices
        // are reclaimable for others.
        let starving = !core.starving_funcs().is_empty();
        // Demote-candidate scratch, reused across functions.
        let mut ids: Vec<InstanceId> = Vec::new();
        // Dirty-set scan: an inactive function has zero demand, an empty
        // backlog and no instances, so neither scale-up pressure nor the
        // demote sweep can fire for it. Ascending order as before.
        for fi in 0..core.active_funcs.len() {
            let f = core.active_funcs[fi];
            // Scale up per the configured policy.
            for _ in 0..MAX_LAUNCHES_PER_TICK {
                let pressured = match self.policy {
                    ScalingPolicy::Reactive => {
                        // Reactive: demand exceeds capacity headroom or a
                        // backlog persists. The epsilon floor matters: the
                        // demand EWMA decays geometrically and never reaches
                        // exactly zero, so without it an idle function would
                        // oscillate between retiring its last instance and
                        // relaunching it.
                        let cap = core.capacity_rps(f);
                        core.demand_rps[f] > (cap * core.cfg.scaleup_headroom).max(1e-6)
                            || core.pending[f].len() > 1
                    }
                    ScalingPolicy::ErlangC { target_wait_frac } => {
                        core.erlang_pressure(f, target_wait_frac)
                    }
                };
                if !pressured {
                    break;
                }
                if !launch_exclusive(core, placer, f, now, sched) {
                    break;
                }
            }
            // Demote (③): low-utilization idle exclusive instances retire;
            // the function falls back to its time-sharing lineage. The
            // per-function id index is in ascending-id order — the same
            // order the instance-map filter produced.
            ids.clear();
            ids.extend(
                core.instances_of[f]
                    .iter()
                    .copied()
                    .filter(|id| core.instances[id].is_ready()),
            );
            for &id in &ids {
                let window = core.cfg.scale_tick;
                let Some(inst) = core.instances.get_mut(&id) else {
                    // The id list was snapshotted above; nothing in this
                    // loop retires other instances, but stay total.
                    continue;
                };
                let (util, empty, throughput, idle_for) = {
                    let idle_for = now.saturating_since(inst.last_used);
                    (
                        inst.take_utilization(now, window),
                        inst.is_empty(),
                        inst.est.throughput_rps,
                        idle_for,
                    )
                };
                if util < core.cfg.demote_utilization
                    && empty
                    && (idle_for >= core.cfg.exclusive_idle_grace || starving)
                {
                    let remaining = core.capacity_rps(f) - throughput;
                    let target = core.demand_rps[f] / core.cfg.scaleup_headroom;
                    if remaining >= target || core.demand_rps[f] < 1e-6 {
                        core.retire_instance(id, now);
                    }
                }
            }
        }
    }

    fn keep_alive(&self, core: &mut EngineCore, now: SimTime) {
        // Dirty-set scan: inactive functions are Cold, and Cold lineages
        // never match the TimeSharing|Warm expiry guard.
        for fi in 0..core.active_funcs.len() {
            let f = core.active_funcs[fi];
            let idle = now.saturating_since(core.last_use[f]);
            if idle >= core.cfg.keep_alive
                && matches!(
                    core.ka[f],
                    KeepAliveState::TimeSharing | KeepAliveState::Warm
                )
            {
                // ⑤: terminate to cold; unbind from the shared pool. If the
                // model was still resident on its shared slice, this expiry
                // is also an eviction (data dropped from GPU memory).
                if ffs_obs::enabled() && core.ka[f] == KeepAliveState::TimeSharing {
                    if let Some(slot_idx) = core.pool.slot_of(f) {
                        if core.pool.slot(slot_idx).resident == Some(f) {
                            let sid = core.pool.slot(slot_idx).slice.id;
                            ffs_obs::record(|| ffs_obs::ObsEvent::Eviction {
                                func: f as u32,
                                reason: ffs_obs::EvictionReason::KeepAliveExpired,
                                slice: sref(sid),
                            });
                        }
                    }
                }
                core.ka[f] = core.ka[f].next_traced(Transition::IdleTimeout, f as u32);
                core.pool.unbind(f);
                core.sched_log.cold_terminations += 1;
            }
        }
    }
}

/// Places and launches one exclusive-hot instance for `f`, marking the
/// keep-alive lineage hot (②). Returns false if no node can host a plan.
pub fn launch_exclusive(
    core: &mut EngineCore,
    placer: &dyn Placer,
    f: FuncId,
    now: SimTime,
    sched: &mut Scheduler<Event>,
) -> bool {
    let Some((plan, node)) = placer.place(core, f) else {
        return false;
    };
    core.launch(f, plan, node, now, sched);
    core.ka[f] = core.ka[f].next_traced(Transition::UtilizationHigh, f as u32); // ② lineage is hot
    true
}

// ----------------------------------------------------------------------
// Placement (§5.2)
// ----------------------------------------------------------------------

/// On-the-fly pipeline construction: per node, the best (CV-ranked or
/// first-feasible) partition that fits the free slices; across nodes,
/// prefer fewer stages, then lower CV.
pub struct FluidPlacer {
    /// CV-ranked partition search (the paper's §5.2) vs
    /// first-feasible-in-enumeration-order (ablation).
    pub ranked: bool,
}

impl Placer for FluidPlacer {
    fn place(&self, core: &mut EngineCore, f: FuncId) -> Option<(DeploymentPlan, NodeId)> {
        // Split borrows: the plan cache mutates while the fleet and catalog
        // are only read, so the lookup key comes from the incrementally
        // maintained node signature and the free-slice list is materialized
        // only on a cache miss.
        let EngineCore {
            plan_cache,
            fleet,
            catalog,
            ..
        } = core;
        let profile = catalog.profile(f);
        let mut chosen: Option<DeploymentPlan> = None;
        let mut chosen_node = None;
        for i in 0..fleet.node_count() {
            let node = fleet.nodes()[i].id;
            let sig = fleet.node_signature(node);
            let plan = plan_cache.plan_with_signature(f, node, self.ranked, profile, sig, || {
                fleet.free_slices(Some(node))
            });
            if let Some(p) = plan {
                let better = match &chosen {
                    None => true,
                    // Prefer fewer stages (cheaper), then lower CV.
                    Some(c) => (p.num_stages(), p.cv) < (c.num_stages(), c.cv),
                };
                if better {
                    chosen = Some(p);
                    chosen_node = Some(node);
                }
            }
        }
        let (Some(plan), Some(node)) = (chosen, chosen_node) else {
            return None;
        };
        // The invoker's decision record (§5.2): only assembled when tracing
        // is live — `explain_plan` re-walks the CV-ranked list, which must
        // not perturb the disabled hot path.
        if ffs_obs::enabled() {
            let free = core.fleet.free_slices(Some(node));
            let sig = crate::plancache::slice_signature(&free);
            let explanation =
                ffs_pipeline::explain_plan(profile, &free, &plan, profile.ranked_partitions());
            ffs_obs::record(|| ffs_obs::ObsEvent::PlanDecision {
                func: f as u32,
                node: node.0,
                free_signature: sig,
                chosen_rank: explanation.chosen_rank,
                stages: plan.num_stages() as u32,
                cv: plan.cv,
                gpcs: plan.total_gpcs(),
                rejected: explanation.rejected,
            });
        }
        Some((plan, node))
    }
}

// ----------------------------------------------------------------------
// Pipeline migration (§5.3)
// ----------------------------------------------------------------------

/// Pipeline migration: when a monolithic deployment becomes possible,
/// launch it and drain the pipelined instance (at most one per tick).
pub struct FluidMigrator;

impl Migrator for FluidMigrator {
    fn migrate(
        &self,
        core: &mut EngineCore,
        placer: &dyn Placer,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) {
        let candidates: Vec<InstanceId> = core
            .instances
            .values()
            .filter(|i| i.is_ready() && !i.plan.is_monolithic())
            .map(|i| i.id)
            .collect();
        for id in candidates {
            let Some(f) = core.instances.get(&id).map(|i| i.func) else {
                continue;
            };
            // A monolithic plan on currently free slices? (Always the
            // ranked planner: monolithic ranks first regardless.) Probed
            // through the incremental node signature; the slice list is
            // only materialized on a cache miss.
            let mut mono_possible = false;
            {
                let EngineCore {
                    plan_cache,
                    fleet,
                    catalog,
                    ..
                } = &mut *core;
                let profile = catalog.profile(f);
                for i in 0..fleet.node_count() {
                    let node = fleet.nodes()[i].id;
                    let sig = fleet.node_signature(node);
                    if plan_cache.monolithic_possible_with_signature(f, node, profile, sig, || {
                        fleet.free_slices(Some(node))
                    }) {
                        mono_possible = true;
                        break;
                    }
                }
            }
            if mono_possible && launch_exclusive(core, placer, f, now, sched) {
                core.sched_log.migrations += 1;
                ffs_obs::record(|| ffs_obs::ObsEvent::MigrationStarted {
                    func: f as u32,
                    drained: id.0,
                });
                if core.instances.get(&id).is_some() {
                    core.instances
                        .set_phase(&id, crate::instance::Phase::Draining);
                    if core.instances[&id].is_empty() {
                        core.retire_instance(id, now);
                    }
                }
                // One migration per tick keeps churn bounded.
                break;
            }
        }
    }
}

// ----------------------------------------------------------------------
// The platform
// ----------------------------------------------------------------------

/// The FluidFaaS policy bundle a config selects: the ablation booleans map
/// to explicit policy substitutions (`enable_time_sharing` → shared pool
/// on/off, `enable_migration` → migrator on/off, `enable_cv_ranking` →
/// ranked vs first-feasible placement, `scaling_policy` → autoscaler).
pub fn paper_policies(cfg: &FfsConfig) -> PolicyBundle {
    PolicyBundle {
        router: Box::new(FluidRouter),
        shared: if cfg.enable_time_sharing {
            Box::new(FluidSharedPool)
        } else {
            Box::new(NoSharedPool)
        },
        autoscaler: Box::new(FluidAutoscaler {
            policy: cfg.scaling_policy,
        }),
        migrator: if cfg.enable_migration {
            Box::new(FluidMigrator)
        } else {
            Box::new(NoMigrator)
        },
        placer: Box::new(FluidPlacer {
            ranked: cfg.enable_cv_ranking,
        }),
    }
}

/// The FluidFaaS serverless platform over a simulated MIG fleet: the
/// shared engine driven by [`paper_policies`].
pub struct FluidFaaSSystem {
    engine: Engine,
}

impl FluidFaaSSystem {
    /// Builds the platform for a config and the trace it will serve.
    ///
    /// # Panics
    /// Panics if the config's partition scheme is invalid or the trace
    /// invokes an unknown app; use [`FluidFaaSSystem::try_new`] to handle
    /// those as errors.
    pub fn new(cfg: FfsConfig, trace: &Trace) -> Self {
        Self::try_new(cfg, trace).unwrap_or_else(|e| panic!("invalid FluidFaaS setup: {e}"))
    }

    /// Fallible constructor: builds the platform or reports why the
    /// config/trace pair cannot be served.
    pub fn try_new(cfg: FfsConfig, trace: &Trace) -> Result<Self, EngineError> {
        let policies = paper_policies(&cfg);
        Self::with_policies(cfg, policies, trace)
    }

    /// Builds the platform with an explicit policy bundle (ablations swap
    /// individual policies here instead of toggling config booleans).
    pub fn with_policies(
        cfg: FfsConfig,
        policies: PolicyBundle,
        trace: &Trace,
    ) -> Result<Self, EngineError> {
        Ok(FluidFaaSSystem {
            engine: Engine::new(cfg, policies, trace)?,
        })
    }

    /// The function catalog.
    pub fn catalog(&self) -> &FunctionCatalog {
        &self.engine.core.catalog
    }

    /// Number of live exclusive instances (testing / introspection).
    pub fn instance_count(&self) -> usize {
        self.engine.core.instance_count()
    }

    /// Number of live pipelined instances.
    pub fn pipeline_instance_count(&self) -> usize {
        self.engine.core.pipeline_instance_count()
    }

    /// The shared (time-sharing) pool size.
    pub fn shared_slot_count(&self) -> usize {
        self.engine.core.pool.len()
    }

    /// Keep-alive state of a function's time-sharing lineage.
    pub fn keepalive_of(&self, f: FuncId) -> KeepAliveState {
        self.engine.core.ka[f]
    }

    /// Largest number of concurrent exclusive instances seen.
    pub fn peak_instances(&self) -> usize {
        self.engine.core.peak_instances
    }

    /// Largest number of concurrent pipelined instances seen.
    pub fn peak_pipelines(&self) -> usize {
        self.engine.core.peak_pipelines
    }

    /// The scheduler's decision counters for this run.
    pub fn scheduler_log(&self) -> SchedulerLog {
        self.engine.core.sched_log
    }

    /// Launch-plan cache counters `(hits, misses)` for this run.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        (
            self.engine.core.plan_cache.hits(),
            self.engine.core.plan_cache.misses(),
        )
    }

    /// Introspection: one row per live exclusive instance —
    /// `(id, function, ready, stages, last_used)`.
    pub fn instance_summaries(&self) -> Vec<(u64, FuncId, bool, usize, SimTime)> {
        self.engine
            .core
            .instances
            .values()
            .map(|i| {
                (
                    i.id.0,
                    i.func,
                    i.is_ready(),
                    i.plan.num_stages(),
                    i.last_used,
                )
            })
            .collect()
    }

    /// Introspection: the current demand estimate (req/s) per function.
    pub fn demand_estimates(&self) -> Vec<f64> {
        self.engine.core.demand_rps.clone()
    }

    /// Introspection: current backlog length per function.
    pub fn pending_lens(&self) -> Vec<usize> {
        self.engine.core.pending.iter().map(|q| q.len()).collect()
    }

    /// How completed requests were served:
    /// `(monolithic, pipelined, time_shared)` counts.
    pub fn serve_mix(&self) -> (usize, usize, usize) {
        self.engine.core.serve_mix()
    }
}

impl World for FluidFaaSSystem {
    type Event = Event;

    fn handle(&mut self, now: SimTime, ev: Event, sched: &mut Scheduler<Event>) {
        self.engine.handle(now, ev, sched)
    }
}

impl Platform for FluidFaaSSystem {
    fn drain(&self) -> SimDuration {
        self.engine.drain()
    }

    fn finalize(&mut self, end: SimTime) {
        self.engine.finalize(end)
    }

    fn take_hub(&mut self) -> MetricsHub {
        self.engine.take_hub()
    }

    fn num_gpus(&self) -> usize {
        self.engine.num_gpus()
    }

    fn slices_per_gpu(&self) -> usize {
        self.engine.slices_per_gpu()
    }

    fn fault_stats(&self) -> crate::platform::FaultStats {
        self.engine.fault_stats()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::platform::runner::run_platform;
    use ffs_trace::{AzureTraceConfig, WorkloadClass};

    fn run(workload: WorkloadClass, secs: f64, seed: u64) -> crate::platform::runner::RunOutput {
        let cfg = FfsConfig::paper_default(workload);
        let trace = AzureTraceConfig::for_workload(workload, secs, seed).generate();
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        run_platform(&mut sys, &trace)
    }

    #[test]
    fn light_workload_meets_slos() {
        let out = run(WorkloadClass::Light, 120.0, 1);
        assert!(
            out.log.slo_hit_rate() > 0.9,
            "light workload hit rate {}",
            out.log.slo_hit_rate()
        );
        assert!(out.log.len() > 100);
    }

    #[test]
    fn medium_workload_completes_most_requests() {
        let out = run(WorkloadClass::Medium, 60.0, 2);
        let completed = out
            .log
            .records()
            .iter()
            .filter(|r| r.completed.is_some())
            .count();
        assert!(
            completed as f64 / out.log.len() as f64 > 0.9,
            "completed {completed}/{}",
            out.log.len()
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = run(WorkloadClass::Medium, 30.0, 3);
        let b = run(WorkloadClass::Medium, 30.0, 3);
        assert_eq!(a.log.slo_hit_rate(), b.log.slo_hit_rate());
        assert_eq!(a.log.len(), b.log.len());
        assert_eq!(a.cost.total_gpu_time_secs(), b.cost.total_gpu_time_secs());
    }

    #[test]
    fn instances_scale_up_under_load_and_release_after() {
        let mut cfg = FfsConfig::paper_default(WorkloadClass::Light);
        // Shorten the demote hysteresis so the 60 s drain window is enough
        // to observe the release path.
        cfg.exclusive_idle_grace = ffs_sim::SimDuration::from_secs(15);
        let trace = AzureTraceConfig::steady(WorkloadClass::Light.apps(), 30.0, 20.0, 5).generate();
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        let out = run_platform(&mut sys, &trace);
        // After the drain window everything idle demotes and releases.
        assert_eq!(sys.engine.core.fleet.allocated_gpcs(), sys_pool_gpcs(&sys));
        assert!(out.log.slo_hit_rate() > 0.8);
    }

    #[test]
    fn serve_mix_tracks_paths() {
        let cfg = FfsConfig::paper_default(WorkloadClass::Heavy);
        let trace = AzureTraceConfig::for_workload(WorkloadClass::Heavy, 60.0, 4).generate();
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        let _ = run_platform(&mut sys, &trace);
        let (mono, pipe, shared) = sys.serve_mix();
        assert!(mono > 0, "4g monoliths serve requests");
        assert!(pipe > 0, "fragment pipelines serve requests");
        let _ = shared;
    }

    #[test]
    fn scheduler_log_reflects_mechanisms() {
        // Heavy: pipelines must launch; light: none.
        let cfg = FfsConfig::paper_default(WorkloadClass::Heavy);
        let trace = AzureTraceConfig::for_workload(WorkloadClass::Heavy, 60.0, 4).generate();
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        let _ = run_platform(&mut sys, &trace);
        let log = sys.scheduler_log();
        assert!(log.launches > 0);
        assert!(log.pipeline_launches > 0, "{log:?}");
        assert!(log.pipeline_launches <= log.launches);

        let cfg = FfsConfig::paper_default(WorkloadClass::Light);
        let trace = AzureTraceConfig::for_workload(WorkloadClass::Light, 60.0, 4).generate();
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        let _ = run_platform(&mut sys, &trace);
        let log = sys.scheduler_log();
        assert_eq!(log.pipeline_launches, 0, "{log:?}");
        assert!(log.launches > 0);
        // The drain window demotes idle instances.
        assert!(log.retirements > 0, "{log:?}");
    }

    fn sys_pool_gpcs(sys: &FluidFaaSSystem) -> u32 {
        sys.engine
            .core
            .pool
            .slots()
            .iter()
            .map(|s| s.slice.profile.gpcs())
            .sum()
    }

    #[test]
    fn cold_function_transitions_through_fig8() {
        let cfg = FfsConfig::paper_default(WorkloadClass::Light);
        let trace = AzureTraceConfig::for_workload(WorkloadClass::Light, 20.0, 9).generate();
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        for f in sys.catalog().ids() {
            assert_eq!(sys.keepalive_of(f), KeepAliveState::Cold);
        }
        let _ = run_platform(&mut sys, &trace);
        // After the run every lineage must be in a legal state.
        for f in sys.catalog().ids() {
            let s = sys.keepalive_of(f);
            assert!(
                matches!(
                    s,
                    KeepAliveState::Cold
                        | KeepAliveState::Warm
                        | KeepAliveState::TimeSharing
                        | KeepAliveState::ExclusiveHot
                ),
                "{s:?}"
            );
        }
    }
}
