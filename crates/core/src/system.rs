//! The FluidFaaS platform: event-driven implementation of the paper's
//! design (§5) — on-the-fly pipeline construction, hotness-aware
//! eviction-based time sharing, heterogeneity-aware routing, autoscaling
//! and pipeline migration.

use std::collections::{BTreeMap, VecDeque};

use ffs_mig::Fleet;
use ffs_pipeline::{estimate, DeploymentPlan};
use ffs_sim::{Scheduler, SimDuration, SimTime, World};
use ffs_trace::Trace;

use crate::config::FfsConfig;
use crate::instance::{Instance, Phase};
use crate::keepalive::{KeepAliveState, Transition};
use crate::plancache::PlanCache;
use crate::platform::catalog::{FuncId, FunctionCatalog};
use crate::platform::events::{Event, InstanceId};
use crate::platform::hub::MetricsHub;
use crate::platform::request::RequestState;
use crate::platform::runner::Platform;
use crate::shared::SharedPool;

/// Maximum instance launches per function per scale tick (burst ramp
/// limit).
const MAX_LAUNCHES_PER_TICK: usize = 4;

/// Counters of the scheduler's decisions over a run — the observable trace
/// of §5's mechanisms, used by tests, ablations and examples.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedulerLog {
    /// Exclusive instances launched (monolithic or pipelined).
    pub launches: u64,
    /// Pipelined launches among them.
    pub pipeline_launches: u64,
    /// Exclusive instances retired (demotion, drain or scale-down).
    pub retirements: u64,
    /// Evictions of a time-sharing resident to CPU memory (→ Warm).
    pub evictions: u64,
    /// Warm reloads onto a shared slice.
    pub reloads: u64,
    /// Pipeline→monolithic migrations started.
    pub migrations: u64,
    /// Shared-pool slices added.
    pub pool_grows: u64,
    /// Shared-pool slices released.
    pub pool_shrinks: u64,
    /// Keep-alive expirations to cold (⑤).
    pub cold_terminations: u64,
}

/// The FluidFaaS serverless platform over a simulated MIG fleet.
pub struct FluidFaaSSystem {
    cfg: FfsConfig,
    catalog: FunctionCatalog,
    fleet: Fleet,
    hub: MetricsHub,
    requests: Vec<RequestState>,
    instances: BTreeMap<InstanceId, Instance>,
    next_instance: u64,
    pool: SharedPool,
    /// Keep-alive state of each function's time-sharing lineage (Fig. 8).
    ka: Vec<KeepAliveState>,
    /// Per-function backlog of requests not yet admitted anywhere
    /// (deadline order == arrival order within a function).
    pending: Vec<VecDeque<u64>>,
    arrivals_in_tick: Vec<u32>,
    demand_rps: Vec<f64>,
    last_tick: SimTime,
    last_use: Vec<SimTime>,
    horizon: SimTime,
    peak_instances: usize,
    peak_pipelines: usize,
    sched_log: SchedulerLog,
    /// Memoized launch plans, invalidated on any slice alloc/free.
    plan_cache: PlanCache,
}

impl FluidFaaSSystem {
    /// Builds the platform for a config and the trace it will serve.
    pub fn new(cfg: FfsConfig, trace: &Trace) -> Self {
        let catalog = FunctionCatalog::for_workload(cfg.workload, cfg.slo_scale, &cfg.perf);
        let fleet = Fleet::new(cfg.nodes, cfg.gpus_per_node, &cfg.scheme)
            .expect("valid partition scheme");
        let hub = MetricsHub::new(&catalog, fleet.gpu_count(), SimDuration::from_secs(1));
        let requests = build_requests(&catalog, trace);
        let n = catalog.len();
        let horizon = SimTime::ZERO + trace.duration + cfg.drain;
        FluidFaaSSystem {
            cfg,
            fleet,
            hub,
            requests,
            instances: BTreeMap::new(),
            next_instance: 1,
            pool: SharedPool::new(),
            ka: vec![KeepAliveState::Cold; n],
            pending: vec![VecDeque::new(); n],
            arrivals_in_tick: vec![0; n],
            demand_rps: vec![0.0; n],
            last_tick: SimTime::ZERO,
            last_use: vec![SimTime::ZERO; n],
            catalog,
            horizon,
            peak_instances: 0,
            peak_pipelines: 0,
            sched_log: SchedulerLog::default(),
            plan_cache: PlanCache::new(),
        }
    }

    /// The function catalog.
    pub fn catalog(&self) -> &FunctionCatalog {
        &self.catalog
    }

    /// Number of live exclusive instances (testing / introspection).
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Number of live pipelined instances.
    pub fn pipeline_instance_count(&self) -> usize {
        self.instances.values().filter(|i| !i.plan.is_monolithic()).count()
    }

    /// The shared (time-sharing) pool size.
    pub fn shared_slot_count(&self) -> usize {
        self.pool.len()
    }

    /// Keep-alive state of a function's time-sharing lineage.
    pub fn keepalive_of(&self, f: FuncId) -> KeepAliveState {
        self.ka[f]
    }

    /// Largest number of concurrent exclusive instances seen.
    pub fn peak_instances(&self) -> usize {
        self.peak_instances
    }

    /// Largest number of concurrent pipelined instances seen.
    pub fn peak_pipelines(&self) -> usize {
        self.peak_pipelines
    }

    /// The scheduler's decision counters for this run.
    pub fn scheduler_log(&self) -> SchedulerLog {
        self.sched_log
    }

    /// Launch-plan cache counters `(hits, misses)` for this run.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        (self.plan_cache.hits(), self.plan_cache.misses())
    }

    /// Introspection: one row per live exclusive instance —
    /// `(id, function, ready, stages, last_used)`.
    pub fn instance_summaries(&self) -> Vec<(u64, FuncId, bool, usize, SimTime)> {
        self.instances
            .values()
            .map(|i| (i.id.0, i.func, i.is_ready(), i.plan.num_stages(), i.last_used))
            .collect()
    }

    /// Introspection: the current demand estimate (req/s) per function.
    pub fn demand_estimates(&self) -> Vec<f64> {
        self.demand_rps.clone()
    }

    /// Introspection: current backlog length per function.
    pub fn pending_lens(&self) -> Vec<usize> {
        self.pending.iter().map(|q| q.len()).collect()
    }

    /// How completed requests were served:
    /// `(monolithic, pipelined, time_shared)` counts.
    pub fn serve_mix(&self) -> (usize, usize, usize) {
        use crate::platform::request::ServePath::*;
        let mut mix = (0, 0, 0);
        for r in &self.requests {
            if r.completed.is_none() {
                continue;
            }
            match r.served {
                Some(Monolithic) => mix.0 += 1,
                Some(Pipelined) => mix.1 += 1,
                Some(TimeShared) => mix.2 += 1,
                None => {}
            }
        }
        mix
    }

    // ------------------------------------------------------------------
    // Routing (§5.3)
    // ------------------------------------------------------------------

    fn dispatch_func(&mut self, f: FuncId, now: SimTime, sched: &mut Scheduler<Event>) {
        while let Some(&req) = self.pending[f].front() {
            if self.route_to_exclusive(f, req, now, sched) {
                self.pending[f].pop_front();
                continue;
            }
            // Overflow to the time-sharing instance only when waiting for
            // exclusive capacity would blow the deadline (§5.3: hot
            // instances first, "then the remaining requests are routed to
            // the time sharing state instance").
            if self.cfg.enable_time_sharing
                && self.should_overflow_to_shared(f, req, now)
                && self.route_to_shared(f, now, sched)
            {
                continue;
            }
            break;
        }
    }

    /// Decides whether a pending request should overflow to time sharing:
    /// yes if no exclusive instance will exist soon, or the estimated wait
    /// for exclusive capacity exceeds the request's remaining slack.
    fn should_overflow_to_shared(&self, f: FuncId, req: u64, now: SimTime) -> bool {
        let mut ready = 0usize;
        let mut launching = 0usize;
        let mut occupancy = 0usize;
        let mut best_bottleneck = f64::INFINITY;
        let mut best_latency = f64::INFINITY;
        for inst in self.instances.values() {
            if inst.func != f || inst.phase == Phase::Draining {
                continue;
            }
            match inst.phase {
                Phase::Ready => {
                    ready += 1;
                    occupancy += inst.occupancy();
                    best_bottleneck = best_bottleneck.min(inst.est.bottleneck_ms);
                    best_latency = best_latency.min(inst.est.latency_ms);
                }
                Phase::Launching { .. } => launching += 1,
                Phase::Draining => {}
            }
        }
        if ready == 0 {
            // Nothing serving yet. If replacements are launching, a short
            // wait beats an eviction-reload on the shared slice.
            return launching == 0;
        }
        let wait_ms = occupancy as f64 * best_bottleneck / ready as f64;
        let slack_ms = self.requests[req as usize]
            .deadline
            .saturating_since(now)
            .as_secs_f64()
            * 1_000.0
            - best_latency;
        wait_ms > slack_ms
    }

    /// Routes to the lowest-latency exclusive-hot instance with capacity.
    fn route_to_exclusive(
        &mut self,
        f: FuncId,
        req: u64,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) -> bool {
        let slo = self.catalog.slo_ms(f);
        let mut best: Option<(InstanceId, f64)> = None;
        for inst in self.instances.values() {
            if inst.func == f && inst.has_capacity(slo) {
                let better = match best {
                    None => true,
                    Some((_, lat)) => inst.est.latency_ms < lat,
                };
                if better {
                    best = Some((inst.id, inst.est.latency_ms));
                }
            }
        }
        let Some((id, _)) = best else { return false };
        let inst = self.instances.get_mut(&id).expect("live instance");
        inst.stage_queues[0].push_back(req);
        inst.last_used = now;
        self.try_start_stage(id, 0, now, sched);
        true
    }

    /// Ensures function `f` has a time-sharing binding (creating /
    /// growing the pool as needed) and lets its slot pull pending work.
    /// Returns true if a request was taken off the pending queue.
    fn route_to_shared(&mut self, f: FuncId, now: SimTime, sched: &mut Scheduler<Event>) -> bool {
        let mem = self.catalog.profile(f).total_mem_gb();
        // Prefer an empty slot, then growing the pool; share (and pay
        // evictions) only when the fleet has no spare slice — eviction-based
        // sharing exists to ride out scarcity, not to thrash under
        // abundance.
        let slot_idx = match self.pool.slot_of(f) {
            Some(i) => i,
            None => {
                if self.pool.empty_fitting(mem).is_none() {
                    // No dedicated slot available: try to grow the pool.
                    let _ = self.grow_pool(f, mem, now);
                }
                match self.pool.bind(f, mem) {
                    Some(i) => i,
                    None => return false,
                }
            }
        };
        self.ka[f] = self.ka[f].next_traced(Transition::RequestArrived, f as u32);
        self.dispatch_shared(slot_idx, now, sched)
    }

    /// Adds a free slice that fits `mem` to the shared pool.
    fn grow_pool(&mut self, f: FuncId, mem: f64, now: SimTime) -> Option<usize> {
        let mut candidates = self.fleet.free_slices_at_least(None, mem);
        // Smallest slice that fits, deterministic by id.
        candidates.sort_by_key(|s| (s.profile, s.id));
        let pick = *candidates.first()?;
        self.fleet.allocate(pick.id).expect("slice was free");
        self.plan_cache.invalidate();
        self.hub.slice_allocated(now, pick.id, pick.profile.gpcs());
        self.sched_log.pool_grows += 1;
        ffs_obs::record(|| ffs_obs::ObsEvent::PoolGrow {
            slice: sref(pick.id),
            func: f as u32,
        });
        Some(self.pool.add_slot(pick, now))
    }

    /// Starts the most urgent pending request among the slot's bound
    /// functions if the slot is idle, evicting the LRU resident when
    /// needed (§5.3). Requests stay in the shared per-function pending
    /// queue until a worker (exclusive or shared) actually takes them, so
    /// nothing gets stranded behind a slow slice.
    fn dispatch_shared(&mut self, slot_idx: usize, now: SimTime, sched: &mut Scheduler<Event>) -> bool {
        if !self.pool.slot(slot_idx).is_free() {
            return false;
        }
        // Most urgent pending head among bound functions (§5.3 ordering:
        // deadline minus estimated execution and load times, ascending).
        let bound = self.pool.slot(slot_idx).bound.clone();
        let slice_profile = self.pool.slot(slot_idx).slice.profile;
        let slice_id = self.pool.slot(slot_idx).slice.id;
        let resident = self.pool.slot(slot_idx).resident;
        let mut best: Option<(i64, FuncId, u64)> = None;
        for f in bound {
            let Some(&req) = self.pending[f].front() else { continue };
            if !self.should_overflow_to_shared(f, req, now) {
                continue;
            }
            let exec = est_shared_exec_ms(&self.catalog, f, slice_profile);
            let load = if resident == Some(f) {
                0.0
            } else {
                self.catalog.profile(f).load_ms(&all_nodes(&self.catalog, f))
            };
            let key = self.requests[req as usize].urgency_key(exec, load);
            if best.is_none_or(|(k, _, _)| key < k) {
                best = Some((key, f, req));
            }
        }
        let Some((_, f, req)) = best else { return false };
        self.pending[f].pop_front();
        if resident == Some(f) {
            self.start_shared_exec(slot_idx, req, now, sched);
        } else {
            // Evict the resident (→ Warm ④) and reload `f` from CPU.
            let evicted = self.pool.slot_mut(slot_idx).resident.take();
            let mut load_ms = self.catalog.profile(f).load_ms(&all_nodes(&self.catalog, f));
            if let Some(g) = evicted {
                load_ms += self.catalog.profile(g).load_ms(&all_nodes(&self.catalog, g));
                self.ka[g] = self.ka[g].next_traced(Transition::Evicted, g as u32);
                self.sched_log.evictions += 1;
                ffs_obs::record(|| ffs_obs::ObsEvent::Eviction {
                    func: g as u32,
                    reason: ffs_obs::EvictionReason::SliceContention,
                    slice: sref(slice_id),
                });
            }
            self.sched_log.reloads += 1;
            let slot = self.pool.slot_mut(slot_idx);
            slot.loading = Some((f, req));
            self.requests[req as usize].load_ms += load_ms;
            sched.after(
                SimDuration::from_millis_f64(load_ms),
                Event::SharedLoadDone { slot: slot_idx, req },
            );
        }
        true
    }

    fn start_shared_exec(&mut self, slot_idx: usize, req: u64, now: SimTime, sched: &mut Scheduler<Event>) {
        let f = self.requests[req as usize].func;
        let slot = self.pool.slot_mut(slot_idx);
        debug_assert_eq!(slot.resident, Some(f));
        slot.touch_resident(f);
        slot.busy_with = Some(req);
        slot.mark_busy(now);
        self.requests[req as usize].served =
            Some(crate::platform::request::ServePath::TimeShared);
        let slice = slot.slice.id;
        let profile = slot.slice.profile;
        let (exec_ms, handoff_ms) = mono_split(&self.catalog, f, profile);
        self.requests[req as usize].exec_ms += exec_ms;
        self.requests[req as usize].transfer_ms += handoff_ms;
        self.hub.slice_active(now, slice);
        if ffs_obs::enabled() {
            ffs_obs::record(|| ffs_obs::ObsEvent::RequestDispatched {
                req,
                func: f as u32,
                path: ffs_obs::ServePathKind::TimeShared,
                target: slot_idx as u64,
            });
            ffs_obs::record(|| ffs_obs::ObsEvent::SliceActive {
                slice: sref(slice),
                func: f as u32,
                req,
            });
        }
        sched.after(
            SimDuration::from_millis_f64(exec_ms + handoff_ms),
            Event::SharedDone { slot: slot_idx, req },
        );
    }

    // ------------------------------------------------------------------
    // Exclusive instance execution
    // ------------------------------------------------------------------

    fn try_start_stage(&mut self, id: InstanceId, stage: usize, now: SimTime, sched: &mut Scheduler<Event>) {
        let Some(inst) = self.instances.get_mut(&id) else { return };
        if !inst.is_ready() && !matches!(inst.phase, Phase::Draining) {
            return;
        }
        if inst.stage_busy[stage].is_some() {
            return;
        }
        let Some(req) = inst.stage_queues[stage].pop_front() else {
            return;
        };
        inst.stage_busy[stage] = Some(req);
        inst.mark_busy(now);
        if stage == 0 {
            let path = if inst.plan.is_monolithic() {
                crate::platform::request::ServePath::Monolithic
            } else {
                crate::platform::request::ServePath::Pipelined
            };
            self.requests[req as usize].served = Some(path);
        }
        let f = inst.func;
        let nodes = inst.plan.stages[stage].nodes.clone();
        let slice_profile = inst.plan.stages[stage].profile;
        let slice = inst.plan.stages[stage].slice;
        let mono = inst.plan.is_monolithic();
        let profile = self.catalog.profile(f);
        let exec_ms: f64 = profile.stage_exec_ms(&nodes, slice_profile);
        let handoff_ms = if mono {
            (nodes.len().saturating_sub(1)) as f64 * profile.perf.inprocess_handoff_ms
        } else {
            // Within a pipeline stage, components still hand off in-process.
            (nodes.len().saturating_sub(1)) as f64 * profile.perf.inprocess_handoff_ms
        };
        self.requests[req as usize].exec_ms += exec_ms;
        self.requests[req as usize].transfer_ms += handoff_ms;
        self.hub.slice_active(now, slice);
        if ffs_obs::enabled() {
            if stage == 0 {
                let path = if mono {
                    ffs_obs::ServePathKind::Monolithic
                } else {
                    ffs_obs::ServePathKind::Pipelined
                };
                ffs_obs::record(|| ffs_obs::ObsEvent::RequestDispatched {
                    req,
                    func: f as u32,
                    path,
                    target: id.0,
                });
            }
            ffs_obs::record(|| ffs_obs::ObsEvent::SliceActive {
                slice: sref(slice),
                func: f as u32,
                req,
            });
        }
        sched.after(
            SimDuration::from_millis_f64(exec_ms + handoff_ms),
            Event::StageDone { inst: id, stage, req },
        );
    }

    fn on_stage_done(&mut self, id: InstanceId, stage: usize, req: u64, now: SimTime, sched: &mut Scheduler<Event>) {
        let Some(inst) = self.instances.get_mut(&id) else { return };
        debug_assert_eq!(inst.stage_busy[stage], Some(req));
        inst.stage_busy[stage] = None;
        inst.last_used = now;
        let slice = inst.plan.stages[stage].slice;
        let last = stage + 1 == inst.plan.num_stages();
        let f = inst.func;
        self.hub.slice_idle(now, slice);
        ffs_obs::record(|| ffs_obs::ObsEvent::SliceIdle { slice: sref(slice) });
        if last {
            let breakdown = self.requests[req as usize].finish(now);
            let state = self.requests[req as usize].clone();
            self.hub.complete(&state, breakdown);
        } else {
            // Boundary transfer through host shared memory.
            let profile = self.catalog.profile(f);
            let crossings = {
                let inst = self.instances.get(&id).expect("live");
                inst.plan.partition.boundary_transfers_mb(&profile.dag)
            };
            let mb = crossings.get(stage).copied().unwrap_or(0.0);
            let transfer_ms = profile.perf.boundary_ms(mb);
            self.requests[req as usize].transfer_ms += transfer_ms;
            if let Some(inst) = self.instances.get_mut(&id) {
                inst.in_transfer += 1;
            }
            sched.after(
                SimDuration::from_millis_f64(transfer_ms),
                Event::TransferDone { inst: id, stage: stage + 1, req },
            );
        }
        // Keep the stage fed, then refill from the function backlog.
        self.try_start_stage(id, stage, now, sched);
        if let Some(inst) = self.instances.get_mut(&id) {
            if inst.is_empty() {
                inst.mark_idle(now);
            }
            if inst.phase == Phase::Draining && inst.is_empty() {
                self.retire_instance(id, now);
            }
        }
        self.dispatch_func(f, now, sched);
    }

    // ------------------------------------------------------------------
    // Scaling, state transitions, migration (§5.3)
    // ------------------------------------------------------------------

    fn on_scale_tick(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        let window = now.saturating_since(self.last_tick);
        self.last_tick = now;
        let window_secs = window.as_secs_f64().max(1e-9);

        // Demand estimation (EWMA over tick windows).
        for f in 0..self.catalog.len() {
            let inst_rate = self.arrivals_in_tick[f] as f64 / window_secs;
            self.arrivals_in_tick[f] = 0;
            self.demand_rps[f] = if now == SimTime::ZERO {
                inst_rate
            } else {
                0.3 * self.demand_rps[f] + 0.7 * inst_rate
            };
        }

        self.record_utilization(now);
        self.autoscale(now, sched);
        self.shared_pool_maintenance(now);
        self.keep_alive_sweep(now);
        if self.cfg.enable_migration {
            self.migrate_pipelines(now, sched);
        }
        // Retry anything stuck in the backlog.
        for f in 0..self.catalog.len() {
            self.dispatch_func(f, now, sched);
        }
        let next = now + self.cfg.scale_tick;
        if next < self.horizon {
            sched.at(next, Event::ScaleTick);
        }
    }

    fn record_utilization(&mut self, now: SimTime) {
        let mut busy_gpcs = 0u32;
        for inst in self.instances.values() {
            for (i, b) in inst.stage_busy.iter().enumerate() {
                if b.is_some() {
                    busy_gpcs += inst.plan.stages[i].profile.gpcs();
                }
            }
        }
        for slot in self.pool.slots() {
            if slot.busy_with.is_some() || slot.loading.is_some() {
                busy_gpcs += slot.slice.profile.gpcs();
            }
        }
        self.hub.busy_gpcs.record(now, busy_gpcs as f64);
        self.hub
            .allocated_gpcs
            .record(now, self.fleet.allocated_gpcs() as f64);
        let required: f64 = (0..self.catalog.len())
            .map(|f| {
                self.demand_rps[f] * self.catalog.profile(f).dag.total_work() / 1_000.0
            })
            .sum();
        self.hub.required_gpcs.record(now, required);
    }

    fn capacity_rps(&self, f: FuncId) -> f64 {
        self.instances
            .values()
            .filter(|i| i.func == f && i.phase != Phase::Draining)
            .map(|i| i.est.throughput_rps)
            .sum()
    }

    /// Functions with pending demand and no way to serve it: no exclusive
    /// instance (live or launching), and no time-sharing binding.
    fn starving_funcs(&self) -> Vec<FuncId> {
        (0..self.catalog.len())
            .filter(|&f| {
                !self.pending[f].is_empty()
                    && !self.instances.values().any(|i| i.func == f)
                    && self.pool.slot_of(f).is_none()
            })
            .collect()
    }

    fn autoscale(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        // Resource pressure from starving functions bypasses the demote
        // hysteresis: the paper's transition ③ (utilization below 30% →
        // time sharing) exists precisely so lightly-used exclusive slices
        // are reclaimable for others.
        let starving = !self.starving_funcs().is_empty();
        for f in 0..self.catalog.len() {
            // Scale up per the configured policy.
            for _ in 0..MAX_LAUNCHES_PER_TICK {
                let pressured = match self.cfg.scaling_policy {
                    crate::config::ScalingPolicy::Reactive => {
                        // Reactive: demand exceeds capacity headroom or a
                        // backlog persists. The epsilon floor matters: the
                        // demand EWMA decays geometrically and never reaches
                        // exactly zero, so without it an idle function would
                        // oscillate between retiring its last instance and
                        // relaunching it.
                        let cap = self.capacity_rps(f);
                        self.demand_rps[f] > (cap * self.cfg.scaleup_headroom).max(1e-6)
                            || self.pending[f].len() > 1
                    }
                    crate::config::ScalingPolicy::ErlangC { target_wait_frac } => {
                        self.erlang_pressure(f, target_wait_frac)
                    }
                };
                if !pressured {
                    break;
                }
                if !self.launch_instance(f, now, sched) {
                    break;
                }
            }
            // Demote (③): low-utilization idle exclusive instances retire;
            // the function falls back to its time-sharing lineage.
            let ids: Vec<InstanceId> = self
                .instances
                .values()
                .filter(|i| i.func == f && i.is_ready())
                .map(|i| i.id)
                .collect();
            for id in ids {
                let window = self.cfg.scale_tick;
                let (util, empty, throughput, idle_for) = {
                    let inst = self.instances.get_mut(&id).expect("live");
                    let idle_for = now.saturating_since(inst.last_used);
                    (
                        inst.take_utilization(now, window),
                        inst.is_empty(),
                        inst.est.throughput_rps,
                        idle_for,
                    )
                };
                if util < self.cfg.demote_utilization
                    && empty
                    && (idle_for >= self.cfg.exclusive_idle_grace || starving)
                {
                    let remaining = self.capacity_rps(f) - throughput;
                    let target = self.demand_rps[f] / self.cfg.scaleup_headroom;
                    if remaining >= target || self.demand_rps[f] < 1e-6 {
                        self.retire_instance(id, now);
                    }
                }
            }
        }
    }

    /// Erlang-C pressure test: true while the live fleet for `f` is
    /// smaller than the M/M/c size keeping the mean queueing wait below
    /// `target_wait_frac` of the SLO budget.
    fn erlang_pressure(&self, f: FuncId, target_wait_frac: f64) -> bool {
        let demand = self.demand_rps[f];
        if demand < 1e-6 {
            return !self.pending[f].is_empty();
        }
        // Per-server rate: the mean of live instances' throughput, or the
        // profile's min-baseline estimate before anything is live.
        let live: Vec<f64> = self
            .instances
            .values()
            .filter(|i| i.func == f && i.phase != Phase::Draining)
            .map(|i| i.est.throughput_rps)
            .collect();
        let mu = if live.is_empty() {
            let p = self.catalog.profile(f);
            match p.min_baseline_slice() {
                Some(s) => 1_000.0 / p.mono_exec_ms(s),
                None => return false,
            }
        } else {
            live.iter().sum::<f64>() / live.len() as f64
        };
        let slo_secs = self.catalog.slo_ms(f) / 1_000.0;
        let target_wait = (target_wait_frac * slo_secs).max(1e-3);
        let needed = ffs_sim::queueing::servers_for_mean_wait(demand, mu, target_wait);
        (live.len() as u32) < needed
    }

    /// Launches one exclusive-hot instance for `f` on whichever node can
    /// host the best-ranked feasible plan. Returns false if no node can.
    fn launch_instance(&mut self, f: FuncId, now: SimTime, sched: &mut Scheduler<Event>) -> bool {
        let profile = self.catalog.profile(f);
        let ranked = self.cfg.enable_cv_ranking;
        let mut chosen: Option<DeploymentPlan> = None;
        let mut chosen_node = None;
        for node in self.fleet.nodes().iter().map(|n| n.id).collect::<Vec<_>>() {
            let free = self.fleet.free_slices(Some(node));
            let plan = self.plan_cache.plan(f, node, ranked, profile, &free);
            if let Some(p) = plan {
                let better = match &chosen {
                    None => true,
                    // Prefer fewer stages (cheaper), then lower CV.
                    Some(c) => {
                        (p.num_stages(), p.cv) < (c.num_stages(), c.cv)
                    }
                };
                if better {
                    chosen = Some(p);
                    chosen_node = Some(node);
                }
            }
        }
        let (Some(plan), Some(node)) = (chosen, chosen_node) else {
            return false;
        };
        // The invoker's decision record (§5.2): only assembled when tracing
        // is live — `explain_plan` re-walks the CV-ranked list, which must
        // not perturb the disabled hot path.
        if ffs_obs::enabled() {
            let free = self.fleet.free_slices(Some(node));
            let sig = crate::plancache::slice_signature(&free);
            let explanation =
                ffs_pipeline::explain_plan(profile, &free, &plan, profile.ranked_partitions());
            ffs_obs::record(|| ffs_obs::ObsEvent::PlanDecision {
                func: f as u32,
                node: node.0,
                free_signature: sig,
                chosen_rank: explanation.chosen_rank,
                stages: plan.num_stages() as u32,
                cv: plan.cv,
                gpcs: plan.total_gpcs(),
                rejected: explanation.rejected,
            });
        }
        for s in &plan.stages {
            self.fleet.allocate(s.slice).expect("planned slice is free");
            self.hub.slice_allocated(now, s.slice, s.profile.gpcs());
        }
        self.plan_cache.invalidate();
        let est = estimate(profile, &plan);
        self.peak_instances = self.peak_instances.max(self.instances.len() + 1);
        if !plan.is_monolithic() {
            let pipes = self.instances.values().filter(|i| !i.plan.is_monolithic()).count() + 1;
            self.peak_pipelines = self.peak_pipelines.max(pipes);
        }
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        let cold_ms = profile.cold_start_ms();
        let ready_at = now + SimDuration::from_millis_f64(cold_ms);
        self.sched_log.launches += 1;
        if !plan.is_monolithic() {
            self.sched_log.pipeline_launches += 1;
        }
        let stages = plan.num_stages() as u32;
        let pipelined = !plan.is_monolithic();
        ffs_obs::record(|| ffs_obs::ObsEvent::InstanceLaunched {
            inst: id.0,
            func: f as u32,
            node: node.0,
            stages,
            pipelined,
            cold_ms,
        });
        self.instances
            .insert(id, Instance::new(id, f, plan, est, node, now, ready_at));
        self.ka[f] = self.ka[f].next_traced(Transition::UtilizationHigh, f as u32); // ② lineage is hot
        sched.at(ready_at, Event::InstanceReady(id));
        true
    }

    fn retire_instance(&mut self, id: InstanceId, now: SimTime) {
        let Some(inst) = self.instances.remove(&id) else { return };
        self.sched_log.retirements += 1;
        ffs_obs::record(|| ffs_obs::ObsEvent::InstanceRetired {
            inst: id.0,
            func: inst.func as u32,
        });
        debug_assert!(inst.is_empty(), "retiring a non-empty instance");
        for s in &inst.plan.stages {
            self.fleet.release(s.slice).expect("allocated slice");
            self.hub.slice_released(now, s.slice);
        }
        self.plan_cache.invalidate();
        let f = inst.func;
        if !self.instances.values().any(|i| i.func == f) {
            // Last exclusive instance gone: lineage drops to time sharing ③.
            self.ka[f] = self.ka[f].next_traced(Transition::UtilizationLow, f as u32);
        }
    }

    fn shared_pool_maintenance(&mut self, now: SimTime) {
        // Grow: overloaded slots (deep queues) get help if a slice is free.
        let mut grow_for: Vec<(FuncId, f64)> = Vec::new();
        for idx in 0..self.pool.len() {
            let window = self.cfg.scale_tick;
            let slot = self.pool.slot_mut(idx);
            let util = slot.take_utilization(now, window);
            if util > self.cfg.promote_utilization && slot.queue.len() > 1 {
                if let Some(&f) = slot.bound.first() {
                    let mem = self.catalog.profile(f).total_mem_gb();
                    grow_for.push((f, mem));
                }
            }
        }
        for (f, mem) in grow_for {
            let _ = self.grow_pool(f, mem, now);
        }
        // Shrink: empty unbound slots release their slices.
        let mut idx = 0;
        while idx < self.pool.len() {
            let slot = self.pool.slot(idx);
            if slot.bound.is_empty() && slot.is_free() && slot.queue.is_empty() {
                let slice = self.pool.remove_slot(idx);
                self.fleet.release(slice.id).expect("allocated shared slice");
                self.plan_cache.invalidate();
                self.hub.slice_released(now, slice.id);
                self.sched_log.pool_shrinks += 1;
                ffs_obs::record(|| ffs_obs::ObsEvent::PoolShrink { slice: sref(slice.id) });
            } else {
                idx += 1;
            }
        }
    }

    fn keep_alive_sweep(&mut self, now: SimTime) {
        for f in 0..self.catalog.len() {
            let idle = now.saturating_since(self.last_use[f]);
            if idle >= self.cfg.keep_alive
                && matches!(self.ka[f], KeepAliveState::TimeSharing | KeepAliveState::Warm)
            {
                // ⑤: terminate to cold; unbind from the shared pool. If the
                // model was still resident on its shared slice, this expiry
                // is also an eviction (data dropped from GPU memory).
                if ffs_obs::enabled() && self.ka[f] == KeepAliveState::TimeSharing {
                    if let Some(slot_idx) = self.pool.slot_of(f) {
                        if self.pool.slot(slot_idx).resident == Some(f) {
                            let sid = self.pool.slot(slot_idx).slice.id;
                            ffs_obs::record(|| ffs_obs::ObsEvent::Eviction {
                                func: f as u32,
                                reason: ffs_obs::EvictionReason::KeepAliveExpired,
                                slice: sref(sid),
                            });
                        }
                    }
                }
                self.ka[f] = self.ka[f].next_traced(Transition::IdleTimeout, f as u32);
                self.pool.unbind(f);
                self.sched_log.cold_terminations += 1;
            }
        }
    }

    /// Pipeline migration (§5.3): when a monolithic deployment becomes
    /// possible, launch it and drain the pipelined instance.
    fn migrate_pipelines(&mut self, now: SimTime, sched: &mut Scheduler<Event>) {
        let candidates: Vec<InstanceId> = self
            .instances
            .values()
            .filter(|i| i.is_ready() && !i.plan.is_monolithic())
            .map(|i| i.id)
            .collect();
        for id in candidates {
            let f = self.instances.get(&id).expect("live").func;
            // A monolithic plan on currently free slices? (Always the
            // ranked planner: monolithic ranks first regardless.)
            let mut mono_possible = false;
            for node in self.fleet.nodes().iter().map(|n| n.id).collect::<Vec<_>>() {
                let free = self.fleet.free_slices(Some(node));
                let profile = self.catalog.profile(f);
                if self.plan_cache.monolithic_possible(f, node, profile, &free) {
                    mono_possible = true;
                    break;
                }
            }
            if mono_possible && self.launch_instance(f, now, sched) {
                self.sched_log.migrations += 1;
                ffs_obs::record(|| ffs_obs::ObsEvent::MigrationStarted {
                    func: f as u32,
                    drained: id.0,
                });
                let inst = self.instances.get_mut(&id).expect("live");
                inst.phase = Phase::Draining;
                if inst.is_empty() {
                    self.retire_instance(id, now);
                }
                // One migration per tick keeps churn bounded.
                break;
            }
        }
    }
}

/// Trace-facing reference to a MIG slice.
fn sref(id: ffs_mig::SliceId) -> ffs_obs::SliceRef {
    ffs_obs::SliceRef::new(id.gpu.0, id.index)
}

/// All DAG node ids of a function (helper for load-time computation).
fn all_nodes(catalog: &FunctionCatalog, f: FuncId) -> Vec<ffs_dag::NodeId> {
    catalog.profile(f).dag.nodes().collect()
}

/// Splits the monolithic execution time into (compute, in-process
/// handoff) parts.
fn mono_split(catalog: &FunctionCatalog, f: FuncId, slice: ffs_mig::SliceProfile) -> (f64, f64) {
    let p = catalog.profile(f);
    let exec: f64 = p.dag.nodes().map(|n| p.node_exec_ms(n, slice)).sum();
    let handoff = (p.dag.len().saturating_sub(1)) as f64 * p.perf.inprocess_handoff_ms;
    (exec, handoff)
}

fn est_shared_exec_ms(catalog: &FunctionCatalog, f: FuncId, slice: ffs_mig::SliceProfile) -> f64 {
    catalog.profile(f).mono_exec_ms(slice)
}

fn build_requests(catalog: &FunctionCatalog, trace: &Trace) -> Vec<RequestState> {
    trace
        .invocations
        .iter()
        .map(|inv| {
            let f = catalog
                .func_of(inv.app)
                .expect("trace apps are in the catalog");
            RequestState::new(inv.id, f, inv.arrival, catalog.slo_ms(f))
        })
        .collect()
}

impl World for FluidFaaSSystem {
    type Event = Event;

    fn handle(&mut self, now: SimTime, ev: Event, sched: &mut Scheduler<Event>) {
        match ev {
            Event::Arrival(id) => {
                let f = self.requests[id as usize].func;
                ffs_obs::record(|| ffs_obs::ObsEvent::RequestArrived { req: id, func: f as u32 });
                self.arrivals_in_tick[f] += 1;
                self.last_use[f] = now;
                if self.ka[f] == KeepAliveState::Cold {
                    self.ka[f] = self.ka[f].next_traced(Transition::RequestArrived, f as u32); // ①
                }
                self.pending[f].push_back(id);
                self.dispatch_func(f, now, sched);
            }
            Event::InstanceReady(id) => {
                let f = match self.instances.get_mut(&id) {
                    Some(inst) => {
                        inst.phase = Phase::Ready;
                        inst.func
                    }
                    None => return,
                };
                self.dispatch_func(f, now, sched);
                // Kick any queued work (requests routed while launching).
                self.try_start_stage(id, 0, now, sched);
            }
            Event::StageDone { inst, stage, req } => {
                self.on_stage_done(inst, stage, req, now, sched);
            }
            Event::TransferDone { inst, stage, req } => {
                if let Some(instance) = self.instances.get_mut(&inst) {
                    debug_assert!(instance.in_transfer > 0);
                    instance.in_transfer -= 1;
                    instance.stage_queues[stage].push_back(req);
                    self.try_start_stage(inst, stage, now, sched);
                } else {
                    debug_assert!(false, "transfer completed on a retired instance");
                }
            }
            Event::SharedLoadDone { slot, req } => {
                let (f, expected) = match self.pool.slot(slot).loading {
                    Some((f, r)) => (f, r),
                    None => return,
                };
                debug_assert_eq!(expected, req);
                let s = self.pool.slot_mut(slot);
                s.loading = None;
                s.resident = Some(f);
                self.start_shared_exec(slot, req, now, sched);
            }
            Event::SharedDone { slot, req } => {
                let s = self.pool.slot_mut(slot);
                debug_assert_eq!(s.busy_with, Some(req));
                s.busy_with = None;
                s.mark_idle(now);
                let slice = s.slice.id;
                self.hub.slice_idle(now, slice);
                ffs_obs::record(|| ffs_obs::ObsEvent::SliceIdle { slice: sref(slice) });
                let breakdown = self.requests[req as usize].finish(now);
                let state = self.requests[req as usize].clone();
                self.hub.complete(&state, breakdown);
                let f = state.func;
                self.last_use[f] = now;
                self.dispatch_func(f, now, sched);
                let _ = self.dispatch_shared(slot, now, sched);
            }
            Event::ScaleTick => self.on_scale_tick(now, sched),
            Event::KeepAlive(_) => { /* handled by the tick sweep */ }
        }
    }
}

impl Platform for FluidFaaSSystem {
    fn drain(&self) -> SimDuration {
        self.cfg.drain
    }

    fn finalize(&mut self, _end: SimTime) {
        let unfinished: Vec<RequestState> = self
            .requests
            .iter()
            .filter(|r| r.completed.is_none())
            .cloned()
            .collect();
        for r in unfinished {
            self.hub.abandon(&r);
        }
    }

    fn take_hub(&mut self) -> MetricsHub {
        crate::plancache::note_run_stats(self.plan_cache.hits(), self.plan_cache.misses());
        std::mem::replace(&mut self.hub, MetricsHub::detached())
    }

    fn num_gpus(&self) -> usize {
        self.fleet.gpu_count()
    }

    fn slices_per_gpu(&self) -> usize {
        self.fleet
            .gpus()
            .next()
            .map(|(_, g)| g.slices().len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::runner::run_platform;
    use ffs_trace::{AzureTraceConfig, WorkloadClass};

    fn run(workload: WorkloadClass, secs: f64, seed: u64) -> crate::platform::runner::RunOutput {
        let cfg = FfsConfig::paper_default(workload);
        let trace = AzureTraceConfig::for_workload(workload, secs, seed).generate();
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        run_platform(&mut sys, &trace)
    }

    #[test]
    fn light_workload_meets_slos() {
        let out = run(WorkloadClass::Light, 120.0, 1);
        assert!(
            out.log.slo_hit_rate() > 0.9,
            "light workload hit rate {}",
            out.log.slo_hit_rate()
        );
        assert!(out.log.len() > 100);
    }

    #[test]
    fn medium_workload_completes_most_requests() {
        let out = run(WorkloadClass::Medium, 60.0, 2);
        let completed = out
            .log
            .records()
            .iter()
            .filter(|r| r.completed.is_some())
            .count();
        assert!(
            completed as f64 / out.log.len() as f64 > 0.9,
            "completed {completed}/{}",
            out.log.len()
        );
    }

    #[test]
    fn deterministic_runs() {
        let a = run(WorkloadClass::Medium, 30.0, 3);
        let b = run(WorkloadClass::Medium, 30.0, 3);
        assert_eq!(a.log.slo_hit_rate(), b.log.slo_hit_rate());
        assert_eq!(a.log.len(), b.log.len());
        assert_eq!(a.cost.total_gpu_time_secs(), b.cost.total_gpu_time_secs());
    }

    #[test]
    fn instances_scale_up_under_load_and_release_after() {
        let mut cfg = FfsConfig::paper_default(WorkloadClass::Light);
        // Shorten the demote hysteresis so the 60 s drain window is enough
        // to observe the release path.
        cfg.exclusive_idle_grace = ffs_sim::SimDuration::from_secs(15);
        let trace = AzureTraceConfig::steady(
            WorkloadClass::Light.apps(),
            30.0,
            20.0,
            5,
        )
        .generate();
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        let out = run_platform(&mut sys, &trace);
        // After the drain window everything idle demotes and releases.
        assert_eq!(sys.fleet.allocated_gpcs(), sys_pool_gpcs(&sys));
        assert!(out.log.slo_hit_rate() > 0.8);
    }

    #[test]
    fn serve_mix_tracks_paths() {
        let cfg = FfsConfig::paper_default(WorkloadClass::Heavy);
        let trace = AzureTraceConfig::for_workload(WorkloadClass::Heavy, 60.0, 4).generate();
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        let _ = run_platform(&mut sys, &trace);
        let (mono, pipe, shared) = sys.serve_mix();
        assert!(mono > 0, "4g monoliths serve requests");
        assert!(pipe > 0, "fragment pipelines serve requests");
        let _ = shared;
    }

    #[test]
    fn scheduler_log_reflects_mechanisms() {
        // Heavy: pipelines must launch; light: none.
        let cfg = FfsConfig::paper_default(WorkloadClass::Heavy);
        let trace = AzureTraceConfig::for_workload(WorkloadClass::Heavy, 60.0, 4).generate();
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        let _ = run_platform(&mut sys, &trace);
        let log = sys.scheduler_log();
        assert!(log.launches > 0);
        assert!(log.pipeline_launches > 0, "{log:?}");
        assert!(log.pipeline_launches <= log.launches);

        let cfg = FfsConfig::paper_default(WorkloadClass::Light);
        let trace = AzureTraceConfig::for_workload(WorkloadClass::Light, 60.0, 4).generate();
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        let _ = run_platform(&mut sys, &trace);
        let log = sys.scheduler_log();
        assert_eq!(log.pipeline_launches, 0, "{log:?}");
        assert!(log.launches > 0);
        // The drain window demotes idle instances.
        assert!(log.retirements > 0, "{log:?}");
    }

    fn sys_pool_gpcs(sys: &FluidFaaSSystem) -> u32 {
        sys.pool
            .slots()
            .iter()
            .map(|s| s.slice.profile.gpcs())
            .sum()
    }

    #[test]
    fn cold_function_transitions_through_fig8() {
        let cfg = FfsConfig::paper_default(WorkloadClass::Light);
        let trace = AzureTraceConfig::for_workload(WorkloadClass::Light, 20.0, 9).generate();
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        for f in sys.catalog.ids() {
            assert_eq!(sys.keepalive_of(f), KeepAliveState::Cold);
        }
        let _ = run_platform(&mut sys, &trace);
        // After the run every lineage must be in a legal state.
        for f in sys.catalog.ids() {
            let s = sys.keepalive_of(f);
            assert!(
                matches!(
                    s,
                    KeepAliveState::Cold
                        | KeepAliveState::Warm
                        | KeepAliveState::TimeSharing
                        | KeepAliveState::ExclusiveHot
                ),
                "{s:?}"
            );
        }
    }
}
