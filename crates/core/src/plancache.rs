//! Launch-plan memoization keyed by the fleet's free-slice state.
//!
//! `plan_deployment` walks a function's CV-ranked partition list and runs
//! the greedy slice assignment for every candidate — per function, per
//! node, on every launch attempt and migration probe. Between fleet
//! mutations the free-slice set is unchanged, so the result is too. This
//! cache memoizes `(function, node, ranking mode, free-slice signature) →
//! plan` and is invalidated wholesale on *any* slice allocation or
//! release.
//!
//! The signature is the canonical multiset of free [`ffs_mig::SliceProfile`]s
//! (per-profile counts packed into a `u64`). Slice *ids* are not part of
//! the key: because every allocate/release clears the cache, the free set
//! behind a surviving entry is bitwise the exact set it was computed from,
//! and the cached plan's slice ids are still free.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use ffs_mig::fleet::FreeSlice;
use ffs_mig::NodeId;
use ffs_pipeline::{plan_deployment, plan_deployment_unranked, DeploymentPlan};
use ffs_profile::FunctionProfile;

use crate::platform::catalog::FuncId;

/// Canonical signature of a free-slice multiset: the count of each
/// [`ffs_mig::SliceProfile`] packed 12 bits wide in `SliceProfile::ALL` order
/// (saturating, far above any real fleet's per-node slice count).
pub fn slice_signature(free: &[FreeSlice]) -> u64 {
    let mut counts = [0u64; 5];
    for s in free {
        let idx = s.profile.index();
        counts[idx] = (counts[idx] + 1).min(0xFFF);
    }
    counts
        .iter()
        .enumerate()
        .fold(0u64, |sig, (i, &c)| sig | (c << (12 * i)))
}

/// Process-wide accumulation of plan-cache hits across every run that
/// called [`note_run_stats`] (each `FluidFaaSSystem` owns its own cache;
/// the harness surfaces the fleet-wide totals in its end-of-run summary).
static PROCESS_HITS: AtomicU64 = AtomicU64::new(0);
/// Process-wide accumulation of plan-cache misses; see [`PROCESS_HITS`].
static PROCESS_MISSES: AtomicU64 = AtomicU64::new(0);

/// Folds one run's cache counters into the process-wide totals.
pub fn note_run_stats(hits: u64, misses: u64) {
    PROCESS_HITS.fetch_add(hits, Ordering::Relaxed);
    PROCESS_MISSES.fetch_add(misses, Ordering::Relaxed);
}

/// The accumulated `(hits, misses)` across all runs in this process.
pub fn process_stats() -> (u64, u64) {
    (
        PROCESS_HITS.load(Ordering::Relaxed),
        PROCESS_MISSES.load(Ordering::Relaxed),
    )
}

type PlanKey = (FuncId, NodeId, bool, u64);

/// Memoized launch plans for an unchanged fleet state.
#[derive(Default)]
pub struct PlanCache {
    map: HashMap<PlanKey, Option<DeploymentPlan>>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Drops every cached plan. Must be called after any slice
    /// allocation or release; the cache is only sound between fleet
    /// mutations.
    pub fn invalidate(&mut self) {
        self.map.clear();
    }

    /// Cache lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache lookups that had to run the planner.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The plan for `profile` on `free`, memoized. `ranked` selects
    /// between [`plan_deployment`] and [`plan_deployment_unranked`];
    /// negative results (`None`) are cached too, so infeasible launches
    /// also skip the partition walk.
    pub fn plan(
        &mut self,
        f: FuncId,
        node: NodeId,
        ranked: bool,
        profile: &FunctionProfile,
        free: &[FreeSlice],
    ) -> Option<DeploymentPlan> {
        self.plan_with_signature(f, node, ranked, profile, slice_signature(free), || {
            free.to_vec()
        })
    }

    /// [`PlanCache::plan`] with the signature supplied by the caller (the
    /// fleet maintains it incrementally — `Fleet::node_signature`). The
    /// free-slice list is only materialized on a miss, via `fill`; the hit
    /// path (~98% of lookups in the paper sweeps) touches no slice data.
    pub fn plan_with_signature(
        &mut self,
        f: FuncId,
        node: NodeId,
        ranked: bool,
        profile: &FunctionProfile,
        signature: u64,
        fill: impl FnOnce() -> Vec<FreeSlice>,
    ) -> Option<DeploymentPlan> {
        let _lookup = ffs_telemetry::span(ffs_telemetry::Phase::PlanCacheLookup);
        let key = (f, node, ranked, signature);
        if let Some(cached) = self.map.get(&key) {
            self.hits += 1;
            ffs_obs::record(|| ffs_obs::ObsEvent::PlanCacheLookup {
                func: f as u32,
                node: node.0,
                hit: true,
            });
            return cached.clone();
        }
        self.misses += 1;
        ffs_obs::record(|| ffs_obs::ObsEvent::PlanCacheLookup {
            func: f as u32,
            node: node.0,
            hit: false,
        });
        let free = fill();
        debug_assert_eq!(
            signature,
            slice_signature(&free),
            "caller-supplied signature diverged from the free-slice list"
        );
        let plan = if ranked {
            plan_deployment(profile, &free)
        } else {
            plan_deployment_unranked(profile, &free)
        };
        self.map.insert(key, plan.clone());
        plan
    }

    /// Whether a *monolithic* ranked plan exists for `profile` on `free`
    /// (the migration probe), without cloning the plan on a hit.
    pub fn monolithic_possible(
        &mut self,
        f: FuncId,
        node: NodeId,
        profile: &FunctionProfile,
        free: &[FreeSlice],
    ) -> bool {
        self.monolithic_possible_with_signature(f, node, profile, slice_signature(free), || {
            free.to_vec()
        })
    }

    /// [`PlanCache::monolithic_possible`] with a caller-supplied signature;
    /// like [`PlanCache::plan_with_signature`], the slice list is only
    /// materialized (via `fill`) when the lookup misses.
    pub fn monolithic_possible_with_signature(
        &mut self,
        f: FuncId,
        node: NodeId,
        profile: &FunctionProfile,
        signature: u64,
        fill: impl FnOnce() -> Vec<FreeSlice>,
    ) -> bool {
        let _lookup = ffs_telemetry::span(ffs_telemetry::Phase::PlanCacheLookup);
        let key = (f, node, true, signature);
        if let Some(cached) = self.map.get(&key) {
            self.hits += 1;
            ffs_obs::record(|| ffs_obs::ObsEvent::PlanCacheLookup {
                func: f as u32,
                node: node.0,
                hit: true,
            });
            return cached.as_ref().map(|p| p.is_monolithic()).unwrap_or(false);
        }
        self.misses += 1;
        ffs_obs::record(|| ffs_obs::ObsEvent::PlanCacheLookup {
            func: f as u32,
            node: node.0,
            hit: false,
        });
        let free = fill();
        debug_assert_eq!(
            signature,
            slice_signature(&free),
            "caller-supplied signature diverged from the free-slice list"
        );
        let plan = plan_deployment(profile, &free);
        let mono = plan.as_ref().map(|p| p.is_monolithic()).unwrap_or(false);
        self.map.insert(key, plan);
        mono
    }
}
