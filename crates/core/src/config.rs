//! Platform configuration.

use crate::chaos::FaultSpec;
use ffs_mig::PartitionScheme;
use ffs_profile::PerfModel;
use ffs_sim::SimDuration;
use ffs_trace::WorkloadClass;

/// How the autoscaler sizes a function's exclusive-instance fleet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ScalingPolicy {
    /// Reactive: scale while measured demand exceeds capacity headroom or a
    /// backlog persists (the default, matching serverless platforms).
    Reactive,
    /// Model-based: size to the minimum M/M/c fleet whose mean queueing
    /// wait stays below `target_wait_frac` x the function's SLO slack
    /// (Erlang-C sizing).
    ErlangC {
        /// Fraction of the SLO budget allowed as mean queueing wait.
        target_wait_frac: f64,
    },
}

/// Configuration of a FluidFaaS (or baseline) platform run.
#[derive(Clone, Debug)]
pub struct FfsConfig {
    /// Number of invoker nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// How GPUs are partitioned.
    pub scheme: PartitionScheme,
    /// The workload class (fixes each app's variant).
    pub workload: WorkloadClass,
    /// SLO scale: SLO latency = scale x reference latency (§6, default 1.5).
    pub slo_scale: f64,
    /// The performance model.
    pub perf: PerfModel,
    /// Autoscaler cadence.
    pub scale_tick: SimDuration,
    /// Utilization below which an exclusive-hot instance demotes to time
    /// sharing (§5.3: "not actively busy, i.e. utilization below 30%").
    pub demote_utilization: f64,
    /// Utilization above which a time-sharing instance promotes to
    /// exclusive hot.
    pub promote_utilization: f64,
    /// Idle time after which a warm (time-sharing) instance is terminated
    /// to cold (§5.3: 10 minutes).
    pub keep_alive: SimDuration,
    /// Minimum idle time before a low-utilization exclusive instance is
    /// demoted/retired (hysteresis so burst capacity stays warm between
    /// bursts).
    pub exclusive_idle_grace: SimDuration,
    /// Idle time after which the *baselines* release an exclusive instance
    /// (their only reclamation path — the "exclusive keep-alive" policy).
    pub baseline_keep_alive: SimDuration,
    /// Headroom factor: scale up when demand exceeds this fraction of
    /// serving capacity.
    pub scaleup_headroom: f64,
    /// The autoscaler's sizing policy.
    pub scaling_policy: ScalingPolicy,
    /// Enable eviction-based time sharing (ablation switch).
    pub enable_time_sharing: bool,
    /// Enable pipeline migration to monolithic instances (ablation switch).
    pub enable_migration: bool,
    /// Enable CV ranking of partitions; when false the planner effectively
    /// takes the first feasible partition in enumeration order (ablation).
    pub enable_cv_ranking: bool,
    /// How long after the last trace arrival the run keeps draining before
    /// finalising metrics.
    pub drain: SimDuration,
    /// Fault-injection spec (disabled by default; fault-free runs stay
    /// bit-identical to pre-chaos goldens).
    pub faults: FaultSpec,
}

impl FfsConfig {
    /// The paper's evaluation setup: 2 nodes x 8 A100s, default partition
    /// P1, SLO scale 1.5.
    pub fn paper_default(workload: WorkloadClass) -> Self {
        FfsConfig {
            nodes: 2,
            gpus_per_node: 8,
            scheme: PartitionScheme::p1(),
            workload,
            slo_scale: 1.5,
            perf: PerfModel::default(),
            scale_tick: SimDuration::from_secs(1),
            demote_utilization: 0.30,
            promote_utilization: 0.60,
            exclusive_idle_grace: SimDuration::from_secs(90),
            keep_alive: SimDuration::from_mins(10),
            baseline_keep_alive: SimDuration::from_secs(120),
            scaleup_headroom: 0.5,
            scaling_policy: ScalingPolicy::Reactive,
            enable_time_sharing: true,
            enable_migration: true,
            enable_cv_ranking: true,
            drain: SimDuration::from_secs(60),
            faults: FaultSpec::disabled(),
        }
    }

    /// A small single-node fleet for unit tests.
    pub fn test_small(workload: WorkloadClass) -> Self {
        FfsConfig {
            nodes: 1,
            gpus_per_node: 2,
            ..Self::paper_default(workload)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let c = FfsConfig::paper_default(WorkloadClass::Medium);
        assert_eq!(c.nodes, 2);
        assert_eq!(c.gpus_per_node, 8);
        assert_eq!(c.slo_scale, 1.5);
        assert_eq!(c.keep_alive, SimDuration::from_mins(10));
        assert_eq!(c.demote_utilization, 0.30);
        assert!(c.enable_time_sharing && c.enable_migration && c.enable_cv_ranking);
    }
}
