//! The shared-slice pool backing hotness-aware eviction-based time sharing
//! (§5.3).
//!
//! A shared slot is one MIG slice that several *time-sharing* instances
//! (at most one per function) take turns using. Only one function's model
//! is resident at a time — the strong-isolation principle is preserved
//! because only one instance ever accesses the slice. Dispatching a request
//! for a non-resident function evicts the LRU resident (its data moves to
//! CPU memory → the *warm* state) and reloads the target model.

use std::collections::VecDeque;

use ffs_mig::fleet::FreeSlice;
use ffs_sim::{SimDuration, SimTime};

use crate::platform::catalog::FuncId;

/// One shared MIG slice.
#[derive(Clone, Debug)]
pub struct SharedSlot {
    /// The slice (node, id, profile).
    pub slice: FreeSlice,
    /// Functions whose time-sharing instance is bound to this slot.
    pub bound: Vec<FuncId>,
    /// The function whose model currently resides on the slice.
    pub resident: Option<FuncId>,
    /// The request currently executing, if any.
    pub busy_with: Option<u64>,
    /// A reload in progress: `(function being loaded, request waiting)`.
    pub loading: Option<(FuncId, u64)>,
    /// Deadline-ordered waiting requests (sorted on insert by the caller's
    /// urgency key).
    pub queue: VecDeque<(i64, u64)>,
    /// Recency order of residency for LRU eviction (front = least recent).
    pub lru: VecDeque<FuncId>,
    /// Last time the slot did useful work.
    pub last_used: SimTime,
    /// Tombstone: the backing slice failed (fault injection). Dead slots
    /// are never removed from the pool vector — `Vec::remove` would shift
    /// the indices referenced by in-flight `SharedDone` / `SharedLoadDone`
    /// events — and are skipped by `bind` / `empty_fitting` / shrink.
    pub dead: bool,
    busy_since: Option<SimTime>,
    busy_accum: SimDuration,
}

impl SharedSlot {
    /// Creates an empty slot over a slice.
    pub fn new(slice: FreeSlice, now: SimTime) -> Self {
        SharedSlot {
            slice,
            bound: Vec::new(),
            resident: None,
            busy_with: None,
            loading: None,
            queue: VecDeque::new(),
            lru: VecDeque::new(),
            last_used: now,
            dead: false,
            busy_since: None,
            busy_accum: SimDuration::ZERO,
        }
    }

    /// True if the slot can start work immediately.
    pub fn is_free(&self) -> bool {
        self.busy_with.is_none() && self.loading.is_none()
    }

    /// Inserts a request in urgency order (ascending key — §5.3's
    /// "processed in ascending order of these values").
    pub fn enqueue(&mut self, urgency: i64, req: u64) {
        let pos = self.queue.partition_point(|&(u, _)| u <= urgency);
        self.queue.insert(pos, (urgency, req));
    }

    /// Pops the most urgent waiting request.
    pub fn pop(&mut self) -> Option<u64> {
        self.queue.pop_front().map(|(_, r)| r)
    }

    /// Notes that `f` became resident (moves it to MRU position).
    pub fn touch_resident(&mut self, f: FuncId) {
        self.lru.retain(|&g| g != f);
        self.lru.push_back(f);
        self.resident = Some(f);
    }

    /// Marks the slot busy for utilization accounting.
    pub fn mark_busy(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    /// Marks the slot idle.
    pub fn mark_idle(&mut self, now: SimTime) {
        if let Some(since) = self.busy_since.take() {
            self.busy_accum += now.saturating_since(since);
        }
        self.last_used = now;
    }

    /// Windowed utilization (see `Instance::take_utilization`).
    pub fn take_utilization(&mut self, now: SimTime, window: SimDuration) -> f64 {
        let mut busy = self.busy_accum;
        self.busy_accum = SimDuration::ZERO;
        if let Some(since) = self.busy_since {
            busy += now.saturating_since(since);
            self.busy_since = Some(now);
        }
        if window.is_zero() {
            return 0.0;
        }
        (busy / window).min(1.0)
    }
}

/// The pool of shared slices on a platform.
#[derive(Clone, Debug, Default)]
pub struct SharedPool {
    slots: Vec<SharedSlot>,
}

impl SharedPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// The slots.
    pub fn slots(&self) -> &[SharedSlot] {
        &self.slots
    }

    /// Mutable slot access.
    pub fn slot_mut(&mut self, idx: usize) -> &mut SharedSlot {
        &mut self.slots[idx]
    }

    /// Shared slot access.
    pub fn slot(&self, idx: usize) -> &SharedSlot {
        &self.slots[idx]
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the pool has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Adds a slice to the pool, returning its slot index.
    pub fn add_slot(&mut self, slice: FreeSlice, now: SimTime) -> usize {
        self.slots.push(SharedSlot::new(slice, now));
        self.slots.len() - 1
    }

    /// Removes a slot (must be unbound and idle); returns its slice.
    pub fn remove_slot(&mut self, idx: usize) -> FreeSlice {
        let slot = &self.slots[idx];
        debug_assert!(slot.bound.is_empty() && slot.is_free() && slot.queue.is_empty());
        self.slots.remove(idx).slice
    }

    /// The slot a function's time-sharing instance is bound to.
    pub fn slot_of(&self, f: FuncId) -> Option<usize> {
        self.slots.iter().position(|s| s.bound.contains(&f))
    }

    /// A fitting slot with no bound functions, if any.
    pub fn empty_fitting(&self, mem_gb: f64) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| !s.dead && s.bound.is_empty() && s.slice.profile.fits_memory(mem_gb))
    }

    /// Binds function `f` (memory footprint `mem_gb`) to the fittest slot:
    /// the one with enough memory and the fewest bound functions. Returns
    /// the slot index, or `None` if no slot fits.
    pub fn bind(&mut self, f: FuncId, mem_gb: f64) -> Option<usize> {
        debug_assert!(self.slot_of(f).is_none(), "one TS instance per function");
        let idx = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.dead && s.slice.profile.fits_memory(mem_gb))
            .min_by_key(|(i, s)| (s.bound.len(), *i))
            .map(|(i, _)| i)?;
        self.slots[idx].bound.push(f);
        Some(idx)
    }

    /// Unbinds a function from its slot (keep-alive expiry / promotion).
    pub fn unbind(&mut self, f: FuncId) -> Option<usize> {
        let idx = self.slot_of(f)?;
        let slot = &mut self.slots[idx];
        slot.bound.retain(|&g| g != f);
        slot.lru.retain(|&g| g != f);
        if slot.resident == Some(f) {
            slot.resident = None;
        }
        Some(idx)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ffs_mig::{GpuId, NodeId, SliceId, SliceProfile};

    fn slice(profile: SliceProfile, idx: u8) -> FreeSlice {
        FreeSlice {
            node: NodeId(0),
            id: SliceId::new(GpuId(0), idx),
            profile,
        }
    }

    #[test]
    fn bind_prefers_least_loaded_fitting_slot() {
        let mut pool = SharedPool::new();
        pool.add_slot(slice(SliceProfile::G1_10, 0), SimTime::ZERO);
        pool.add_slot(slice(SliceProfile::G2_20, 1), SimTime::ZERO);
        // 15 GB only fits the 2g slot.
        assert_eq!(pool.bind(0, 15.0), Some(1));
        // 5 GB fits both; slot 0 has fewer bound functions.
        assert_eq!(pool.bind(1, 5.0), Some(0));
        // Another small one: both have 1 bound; lowest index wins.
        assert_eq!(pool.bind(2, 5.0), Some(0));
        // Nothing fits 25 GB.
        assert_eq!(pool.bind(3, 25.0), None);
        assert_eq!(pool.slot_of(0), Some(1));
        assert_eq!(pool.slot_of(3), None);
    }

    #[test]
    fn unbind_clears_residency() {
        let mut pool = SharedPool::new();
        pool.add_slot(slice(SliceProfile::G1_10, 0), SimTime::ZERO);
        pool.bind(7, 5.0).unwrap();
        pool.slot_mut(0).touch_resident(7);
        assert_eq!(pool.slot(0).resident, Some(7));
        pool.unbind(7);
        assert_eq!(pool.slot(0).resident, None);
        assert!(pool.slot(0).lru.is_empty());
    }

    #[test]
    fn queue_orders_by_urgency() {
        let mut slot = SharedSlot::new(slice(SliceProfile::G1_10, 0), SimTime::ZERO);
        slot.enqueue(30, 1);
        slot.enqueue(10, 2);
        slot.enqueue(20, 3);
        slot.enqueue(10, 4); // FIFO among equals
        assert_eq!(slot.pop(), Some(2));
        assert_eq!(slot.pop(), Some(4));
        assert_eq!(slot.pop(), Some(3));
        assert_eq!(slot.pop(), Some(1));
        assert_eq!(slot.pop(), None);
    }

    #[test]
    fn lru_order_tracks_touches() {
        let mut slot = SharedSlot::new(slice(SliceProfile::G2_20, 0), SimTime::ZERO);
        slot.touch_resident(1);
        slot.touch_resident(2);
        slot.touch_resident(1);
        assert_eq!(slot.lru, vec![2, 1]);
        assert_eq!(slot.resident, Some(1));
    }

    #[test]
    fn remove_slot_returns_slice() {
        let mut pool = SharedPool::new();
        pool.add_slot(slice(SliceProfile::G1_10, 3), SimTime::ZERO);
        let s = pool.remove_slot(0);
        assert_eq!(s.id.index, 3);
        assert!(pool.is_empty());
    }

    #[test]
    fn slot_utilization_window() {
        let mut slot = SharedSlot::new(slice(SliceProfile::G1_10, 0), SimTime::ZERO);
        slot.mark_busy(SimTime::ZERO);
        slot.mark_idle(SimTime::from_secs(1));
        let u = slot.take_utilization(SimTime::from_secs(4), SimDuration::from_secs(4));
        assert!((u - 0.25).abs() < 1e-9);
    }
}
