//! Exclusive-hot instances: monolithic or pipelined deployments pinned to
//! their MIG slices.

use std::collections::VecDeque;

use ffs_mig::NodeId;
use ffs_pipeline::{DeploymentPlan, InstanceEstimate};
use ffs_profile::FunctionProfile;
use ffs_sim::{SimDuration, SimTime};

use crate::platform::catalog::FuncId;
use crate::platform::events::InstanceId;

/// Per-stage timing constants of a deployment — pure functions of
/// (profile, plan), computed once at launch so the per-request hot path
/// reads three `f64`s instead of cloning stage node lists and re-walking
/// the profile tables.
#[derive(Clone, Debug)]
pub struct StageTimings {
    /// Execution time of each stage (ms) on its slice profile.
    pub exec_ms: Vec<f64>,
    /// In-process handoff time within each stage (ms).
    pub handoff_ms: Vec<f64>,
    /// Host-shared-memory transfer after each stage (ms); the final
    /// stage's entry is the planner's "no boundary" value (0).
    pub transfer_ms: Vec<f64>,
}

impl StageTimings {
    /// Computes the timing table for `plan` running `profile`.
    pub fn compute(profile: &FunctionProfile, plan: &DeploymentPlan) -> Self {
        let crossings = plan.partition.boundary_transfers_mb(&profile.dag);
        let exec_ms = plan
            .stages
            .iter()
            .map(|s| profile.stage_exec_ms(&s.nodes, s.profile))
            .collect();
        let handoff_ms = plan
            .stages
            .iter()
            .map(|s| s.nodes.len().saturating_sub(1) as f64 * profile.perf.inprocess_handoff_ms)
            .collect();
        let transfer_ms = (0..plan.num_stages())
            .map(|s| {
                let mb = crossings.get(s).copied().unwrap_or(0.0);
                profile.perf.boundary_ms(mb)
            })
            .collect();
        StageTimings {
            exec_ms,
            handoff_ms,
            transfer_ms,
        }
    }

    /// An all-zero table for `n` stages (test/bench scaffolding).
    pub fn zero(n: usize) -> Self {
        StageTimings {
            exec_ms: vec![0.0; n],
            handoff_ms: vec![0.0; n],
            transfer_ms: vec![0.0; n],
        }
    }
}

/// Lifecycle phase of an exclusive instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Cold-starting; ready at the contained time.
    Launching {
        /// When the instance becomes ready.
        ready_at: SimTime,
    },
    /// Serving requests.
    Ready,
    /// Migration target exists: no new requests, retire when drained
    /// (§5.3, pipeline migration).
    Draining,
}

/// An exclusive-hot instance (always pinned, never evicted — §5.3).
#[derive(Clone, Debug)]
pub struct Instance {
    /// Instance id.
    pub id: InstanceId,
    /// The function it serves.
    pub func: FuncId,
    /// The deployment plan (stages + slices).
    pub plan: DeploymentPlan,
    /// Latency / throughput estimate for routing.
    pub est: InstanceEstimate,
    /// The node hosting all of the instance's slices.
    pub node: NodeId,
    /// Lifecycle phase.
    pub phase: Phase,
    /// Request currently executing on each stage.
    pub stage_busy: Vec<Option<u64>>,
    /// FIFO queue in front of each stage.
    pub stage_queues: Vec<VecDeque<u64>>,
    /// Precomputed per-stage timings (see [`StageTimings`]).
    pub timings: StageTimings,
    /// Requests currently crossing a stage boundary (in a host-shared-
    /// memory transfer): they occupy the instance but sit in no queue.
    pub in_transfer: usize,
    /// Last time the instance finished or accepted work.
    pub last_used: SimTime,
    busy_since: Option<SimTime>,
    busy_accum: SimDuration,
}

impl Instance {
    /// Creates a launching instance.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: InstanceId,
        func: FuncId,
        plan: DeploymentPlan,
        est: InstanceEstimate,
        timings: StageTimings,
        node: NodeId,
        now: SimTime,
        ready_at: SimTime,
    ) -> Self {
        let n = plan.num_stages();
        debug_assert_eq!(timings.exec_ms.len(), n);
        Instance {
            id,
            func,
            plan,
            est,
            node,
            phase: Phase::Launching { ready_at },
            stage_busy: vec![None; n],
            stage_queues: vec![VecDeque::new(); n],
            timings,
            in_transfer: 0,
            last_used: now,
            busy_since: None,
            busy_accum: SimDuration::ZERO,
        }
    }

    /// True once the cold start completed.
    pub fn is_ready(&self) -> bool {
        self.phase == Phase::Ready
    }

    /// True if no request is queued, executing, or mid-transfer.
    pub fn is_empty(&self) -> bool {
        self.stage_busy.iter().all(Option::is_none)
            && self.stage_queues.iter().all(VecDeque::is_empty)
            && self.in_transfer == 0
    }

    /// Total requests inside the instance (queued + executing +
    /// mid-transfer).
    pub fn occupancy(&self) -> usize {
        self.stage_busy.iter().filter(|b| b.is_some()).count()
            + self.stage_queues.iter().map(VecDeque::len).sum::<usize>()
            + self.in_transfer
    }

    /// Admission capacity: how many requests may be in flight before new
    /// ones would likely miss the SLO (slack over the bottleneck stage).
    pub fn capacity(&self, slo_ms: f64) -> usize {
        ((slo_ms / self.est.bottleneck_ms).floor() as usize).max(1)
    }

    /// True if the instance accepts another request.
    pub fn has_capacity(&self, slo_ms: f64) -> bool {
        self.is_ready() && self.phase != Phase::Draining && self.occupancy() < self.capacity(slo_ms)
    }

    /// Marks the front (stage-0) busy signal for utilization accounting.
    pub fn mark_busy(&mut self, now: SimTime) {
        if self.busy_since.is_none() {
            self.busy_since = Some(now);
        }
    }

    /// Clears the busy signal.
    pub fn mark_idle(&mut self, now: SimTime) {
        if let Some(since) = self.busy_since.take() {
            self.busy_accum += now.saturating_since(since);
        }
    }

    /// Consumes the busy time accumulated since the last call and returns
    /// the utilization over `window` (0.0..=1.0). Drives the Figure 8
    /// promote / demote transitions.
    pub fn take_utilization(&mut self, now: SimTime, window: SimDuration) -> f64 {
        let mut busy = self.busy_accum;
        self.busy_accum = SimDuration::ZERO;
        if let Some(since) = self.busy_since {
            busy += now.saturating_since(since);
            self.busy_since = Some(now);
        }
        if window.is_zero() {
            return 0.0;
        }
        (busy / window).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ffs_dag::PipelinePartition;
    use ffs_mig::{GpuId, SliceId, SliceProfile};
    use ffs_pipeline::plan::StagePlan;

    fn plan(stages: usize) -> DeploymentPlan {
        let parts: Vec<Vec<ffs_dag::NodeId>> = (0..stages)
            .map(|i| vec![ffs_dag::NodeId(i as u32)])
            .collect();
        DeploymentPlan {
            partition: PipelinePartition::new(parts.clone()),
            stages: parts
                .iter()
                .enumerate()
                .map(|(i, nodes)| StagePlan {
                    nodes: nodes.clone(),
                    slice: SliceId::new(GpuId(0), i as u8),
                    profile: SliceProfile::G1_10,
                    mem_gb: 5.0,
                })
                .collect(),
            cv: 0.0,
        }
    }

    fn estimate() -> InstanceEstimate {
        InstanceEstimate {
            latency_ms: 300.0,
            bottleneck_ms: 100.0,
            throughput_rps: 10.0,
        }
    }

    fn instance() -> Instance {
        Instance::new(
            InstanceId(1),
            0,
            plan(3),
            estimate(),
            StageTimings::zero(3),
            NodeId(0),
            SimTime::ZERO,
            SimTime::from_secs(2),
        )
    }

    #[test]
    fn lifecycle_and_capacity() {
        let mut inst = instance();
        assert!(!inst.is_ready());
        assert!(!inst.has_capacity(500.0), "not ready yet");
        inst.phase = Phase::Ready;
        assert!(inst.is_ready());
        assert_eq!(inst.capacity(500.0), 5);
        assert_eq!(inst.capacity(450.0), 4, "partial slot would miss the SLO");
        assert!(inst.has_capacity(500.0));
        assert!(inst.is_empty());
        inst.stage_queues[0].push_back(7);
        assert_eq!(inst.occupancy(), 1);
        assert!(!inst.is_empty());
        inst.stage_queues[0].clear();
        inst.in_transfer = 1;
        assert_eq!(inst.occupancy(), 1, "mid-transfer requests still occupy");
        assert!(!inst.is_empty());
    }

    #[test]
    fn draining_refuses_requests() {
        let mut inst = instance();
        inst.phase = Phase::Draining;
        assert!(!inst.has_capacity(10_000.0));
    }

    #[test]
    fn capacity_at_least_one() {
        let mut inst = instance();
        inst.phase = Phase::Ready;
        assert_eq!(inst.capacity(10.0), 1, "tight SLO still admits one");
    }

    #[test]
    fn utilization_window_accounting() {
        let mut inst = instance();
        inst.phase = Phase::Ready;
        let t0 = SimTime::ZERO;
        inst.mark_busy(t0);
        inst.mark_idle(t0 + SimDuration::from_secs(1));
        // busy 1s of a 2s window = 0.5
        let u = inst.take_utilization(t0 + SimDuration::from_secs(2), SimDuration::from_secs(2));
        assert!((u - 0.5).abs() < 1e-9);
        // Window consumed: next window with no activity is 0.
        let u = inst.take_utilization(t0 + SimDuration::from_secs(4), SimDuration::from_secs(2));
        assert_eq!(u, 0.0);
    }

    #[test]
    fn utilization_spans_open_interval() {
        let mut inst = instance();
        inst.mark_busy(SimTime::ZERO);
        let u = inst.take_utilization(SimTime::from_secs(2), SimDuration::from_secs(2));
        assert!((u - 1.0).abs() < 1e-9);
        // Still busy: the next window counts it again from the tick.
        let u = inst.take_utilization(SimTime::from_secs(4), SimDuration::from_secs(2));
        assert!((u - 1.0).abs() < 1e-9);
    }
}
