//! The multi-level keep-alive state machine of Figure 8.
//!
//! States and transitions, exactly as the paper draws them:
//!
//! ```text
//!            ① first request            ② util > threshold
//!   (none) ────────────────▶ TimeSharing ─────────────────▶ ExclusiveHot
//!                              ▲   │  ▲                          │
//!                    ④ evicted │   │  └──────────────────────────┘
//!                              │   ▼        ③ util drops
//!                            Warm ──▶ Cold  ⑤ idle 10 min
//! ```
//!
//! The transition function is pure so it can be property-tested; the
//! platform drives it with utilization measurements and timer events.

use serde::{Deserialize, Serialize};

/// Keep-alive state of a function's time-sharing lineage (Figure 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeepAliveState {
    /// No instance exists (terminated or never created).
    Cold,
    /// Data resides on a (shared) MIG slice; instance may be evicted.
    TimeSharing,
    /// High-load instance pinned to its slice(s), exempt from eviction.
    /// All pipeline instances are exclusive hot (§5.3).
    ExclusiveHot,
    /// Evicted to CPU memory; reloading is cheaper than a cold start.
    Warm,
}

/// Inputs that drive state transitions.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Transition {
    /// A request arrived for the function (① from Cold, reload from Warm).
    RequestArrived,
    /// Measured utilization crossed above the promote threshold (②).
    UtilizationHigh,
    /// Measured utilization dropped below the demote threshold (③).
    UtilizationLow,
    /// The instance's slice was reclaimed by eviction (④).
    Evicted,
    /// The keep-alive timer expired with no demand (⑤).
    IdleTimeout,
}

impl Transition {
    /// The trace-facing mirror of this transition.
    pub fn obs(self) -> ffs_obs::KaCause {
        match self {
            Transition::RequestArrived => ffs_obs::KaCause::RequestArrived,
            Transition::UtilizationHigh => ffs_obs::KaCause::UtilizationHigh,
            Transition::UtilizationLow => ffs_obs::KaCause::UtilizationLow,
            Transition::Evicted => ffs_obs::KaCause::Evicted,
            Transition::IdleTimeout => ffs_obs::KaCause::IdleTimeout,
        }
    }
}

impl KeepAliveState {
    /// Applies a transition, returning the next state. Transitions not
    /// drawn in Figure 8 leave the state unchanged.
    pub fn next(self, t: Transition) -> KeepAliveState {
        use KeepAliveState::*;
        use Transition::*;
        match (self, t) {
            (Cold, RequestArrived) => TimeSharing,          // ①
            (Warm, RequestArrived) => TimeSharing,          // reload from CPU
            (TimeSharing, UtilizationHigh) => ExclusiveHot, // ②
            (ExclusiveHot, UtilizationLow) => TimeSharing,  // ③
            (TimeSharing, Evicted) => Warm,                 // ④
            (Warm, IdleTimeout) => Cold,                    // ⑤
            (TimeSharing, IdleTimeout) => Cold,             // ⑤ (idle on-slice data)
            (s, _) => s,
        }
    }

    /// Applies a transition like [`KeepAliveState::next`], additionally
    /// recording a `keepalive_transition` trace event for `func` whenever
    /// the state actually changes (undrawn transitions stay silent).
    pub fn next_traced(self, t: Transition, func: u32) -> KeepAliveState {
        let next = self.next(t);
        if next != self {
            ffs_obs::record(|| ffs_obs::ObsEvent::KeepAliveTransition {
                func,
                from: self.obs(),
                to: next.obs(),
                cause: t.obs(),
            });
        }
        next
    }

    /// The trace-facing mirror of this state.
    pub fn obs(self) -> ffs_obs::KaState {
        match self {
            KeepAliveState::Cold => ffs_obs::KaState::Cold,
            KeepAliveState::TimeSharing => ffs_obs::KaState::TimeSharing,
            KeepAliveState::ExclusiveHot => ffs_obs::KaState::ExclusiveHot,
            KeepAliveState::Warm => ffs_obs::KaState::Warm,
        }
    }

    /// True if the state holds GPU resources.
    pub fn on_gpu(self) -> bool {
        matches!(
            self,
            KeepAliveState::TimeSharing | KeepAliveState::ExclusiveHot
        )
    }

    /// True if the state is exempt from eviction.
    pub fn eviction_exempt(self) -> bool {
        matches!(self, KeepAliveState::ExclusiveHot)
    }
}

#[cfg(test)]
mod tests {
    use super::KeepAliveState::*;
    use super::Transition::*;

    #[test]
    fn figure8_numbered_transitions() {
        assert_eq!(Cold.next(RequestArrived), TimeSharing); // ①
        assert_eq!(TimeSharing.next(UtilizationHigh), ExclusiveHot); // ②
        assert_eq!(ExclusiveHot.next(UtilizationLow), TimeSharing); // ③
        assert_eq!(TimeSharing.next(Evicted), Warm); // ④
        assert_eq!(Warm.next(IdleTimeout), Cold); // ⑤
    }

    #[test]
    fn exclusive_hot_is_eviction_exempt() {
        assert!(ExclusiveHot.eviction_exempt());
        assert_eq!(
            ExclusiveHot.next(Evicted),
            ExclusiveHot,
            "cannot evict hot instances"
        );
        assert!(!TimeSharing.eviction_exempt());
    }

    #[test]
    fn warm_reload_returns_to_time_sharing() {
        assert_eq!(Warm.next(RequestArrived), TimeSharing);
    }

    #[test]
    fn undrawn_transitions_are_noops() {
        assert_eq!(Cold.next(UtilizationHigh), Cold);
        assert_eq!(Cold.next(IdleTimeout), Cold);
        assert_eq!(ExclusiveHot.next(IdleTimeout), ExclusiveHot);
        assert_eq!(Warm.next(UtilizationLow), Warm);
    }

    #[test]
    fn gpu_residency() {
        assert!(TimeSharing.on_gpu());
        assert!(ExclusiveHot.on_gpu());
        assert!(!Warm.on_gpu());
        assert!(!Cold.on_gpu());
    }

    #[test]
    fn every_state_eventually_reaches_cold_without_demand() {
        // Starvation path: no requests, repeated low-util + timeout events.
        for start in [TimeSharing, ExclusiveHot, Warm, Cold] {
            let mut s = start;
            for _ in 0..4 {
                s = s.next(UtilizationLow);
                s = s.next(Evicted);
                s = s.next(IdleTimeout);
            }
            assert_eq!(s, Cold, "from {start:?}");
        }
    }
}
