//! `ffs-chaos` — deterministic, seed-driven fault injection.
//!
//! A [`FaultSpec`] describes a failure regime (per-class mean time between
//! failures, recovery latency, and a retry policy). From it,
//! [`ChaosState::build`] derives a *timeline* of fault events — slice
//! failures, whole-GPU (XID-style) failures, and node outages — as a pure
//! function of `(spec, fleet shape, horizon)`: the same spec always yields
//! the same failures at the same simulated instants, regardless of wall
//! clock, thread count or tracing. The engine schedules the timeline
//! through the ordinary ffs-sim timer wheel at the first scale tick and
//! handles the resulting `Fault` / `Repair` / `Recover` / `Retry` events
//! (see `platform::engine`).
//!
//! A disabled spec (all MTBFs zero — the default) costs the control plane
//! exactly one branch per tick and leaves the event-sequence counter
//! untouched, so fault-free runs stay bit-identical to the pre-chaos
//! determinism goldens.

use ffs_mig::nvml::NvmlSim;
use ffs_mig::{GpuId, NodeId, SliceId};

/// What a scheduled fault (or its repair/recovery) targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultTarget {
    /// One MIG slice fails in isolation (the paper's strong-isolation
    /// boundary: neighbours keep running).
    Slice(SliceId),
    /// A whole GPU fails (XID-style): every slice on it fails at once.
    Gpu(GpuId),
    /// A whole node goes down: every GPU on it fails.
    Node(NodeId),
}

/// Per-run fault-injection configuration.
///
/// Failure inter-arrival times are exponential with the given per-class
/// MTBF; an MTBF of zero disables that class. Victims are drawn uniformly.
/// All draws come from a private SplitMix64 stream seeded by `seed`, so
/// output is a pure function of `(run seed, FaultSpec)`.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// Seed of the fault stream (independent of the trace seed).
    pub seed: u64,
    /// Mean time between single-slice failures, seconds (0 = off).
    pub slice_mtbf_secs: f64,
    /// Mean time between whole-GPU failures, seconds (0 = off).
    pub gpu_mtbf_secs: f64,
    /// Mean time between node outages, seconds (0 = off).
    pub node_mtbf_secs: f64,
    /// Seconds between a failure and the start of its repair
    /// (reconfiguration); the slice re-enters placement
    /// `recovery_secs + RECONFIGURE_SECS` after failing.
    pub recovery_secs: f64,
    /// Base retry backoff for requests whose instance died (ms).
    pub retry_base_ms: u64,
    /// Cap on the exponential retry backoff (ms).
    pub retry_cap_ms: u64,
    /// Retries after which a request is dropped (counted as an SLO miss).
    pub max_retries: u32,
}

impl FaultSpec {
    /// The default: no faults. Costs one branch per scale tick.
    pub fn disabled() -> Self {
        FaultSpec {
            seed: 0,
            slice_mtbf_secs: 0.0,
            gpu_mtbf_secs: 0.0,
            node_mtbf_secs: 0.0,
            recovery_secs: 30.0,
            retry_base_ms: 50,
            retry_cap_ms: 2_000,
            max_retries: 5,
        }
    }

    /// A slice-failure regime with the given MTBF and defaults elsewhere.
    pub fn slice_faults(seed: u64, mtbf_secs: f64) -> Self {
        FaultSpec {
            seed,
            slice_mtbf_secs: mtbf_secs,
            ..Self::disabled()
        }
    }

    /// Reads the spec from `FFS_FAULT_*` environment variables (unset
    /// variables keep the disabled defaults): `FFS_FAULT_SEED`,
    /// `FFS_FAULT_SLICE_MTBF`, `FFS_FAULT_GPU_MTBF`, `FFS_FAULT_NODE_MTBF`
    /// (seconds), `FFS_FAULT_RECOVERY` (seconds), `FFS_FAULT_RETRY_BASE_MS`,
    /// `FFS_FAULT_RETRY_CAP_MS`, `FFS_FAULT_MAX_RETRIES`.
    pub fn from_env() -> Self {
        fn get<T: std::str::FromStr>(name: &str, default: T) -> T {
            std::env::var(name)
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(default)
        }
        let d = Self::disabled();
        FaultSpec {
            seed: get("FFS_FAULT_SEED", d.seed),
            slice_mtbf_secs: get("FFS_FAULT_SLICE_MTBF", d.slice_mtbf_secs),
            gpu_mtbf_secs: get("FFS_FAULT_GPU_MTBF", d.gpu_mtbf_secs),
            node_mtbf_secs: get("FFS_FAULT_NODE_MTBF", d.node_mtbf_secs),
            recovery_secs: get("FFS_FAULT_RECOVERY", d.recovery_secs),
            retry_base_ms: get("FFS_FAULT_RETRY_BASE_MS", d.retry_base_ms),
            retry_cap_ms: get("FFS_FAULT_RETRY_CAP_MS", d.retry_cap_ms),
            max_retries: get("FFS_FAULT_MAX_RETRIES", d.max_retries),
        }
    }

    /// True if any failure class is active.
    pub fn enabled(&self) -> bool {
        self.slice_mtbf_secs > 0.0 || self.gpu_mtbf_secs > 0.0 || self.node_mtbf_secs > 0.0
    }

    /// Backoff before retry `attempt` (1-based): capped exponential.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let factor = 1u64 << attempt.saturating_sub(1).min(20);
        self.retry_base_ms
            .saturating_mul(factor)
            .min(self.retry_cap_ms)
    }
}

/// SplitMix64: tiny, high-quality, dependency-free PRNG (the vendored
/// `rand` is an offline stub, so chaos rolls its own stream).
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `(0, 1]` — never zero, so `ln` below stays finite.
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// The shape of the fleet the timeline draws victims from.
#[derive(Clone, Copy, Debug)]
pub struct FleetShape {
    /// Invoker nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus_per_node: usize,
    /// Slices per GPU (uniform partitions; per-GPU layouts use the
    /// smallest count so drawn slice indices always exist).
    pub slices_per_gpu: usize,
}

/// Per-run fault-injection state owned by the engine core.
#[derive(Debug)]
pub struct ChaosState {
    /// The driving spec.
    pub spec: FaultSpec,
    /// True when any failure class is active (cached `spec.enabled()`).
    pub enabled: bool,
    /// True once the timeline has been pushed into the scheduler.
    pub armed: bool,
    /// True once any fault has actually fired (stale-event tolerance is
    /// only granted after this point).
    pub fired: bool,
    /// The precomputed fault schedule: `(time µs, target)`, sorted.
    pub timeline: Vec<(u64, FaultTarget)>,
    /// Retry attempts per request id (grown on demand; only ever touched
    /// on the fault path).
    pub retries: Vec<u32>,
    /// Instance ids killed by faults, for stale-event classification.
    pub killed: Vec<u64>,
    /// NVML mirror that charges the real reconfiguration latency on the
    /// recovery path; `None` when chaos is disabled.
    pub nvml: Option<NvmlSim>,
    /// Slice failures injected.
    pub slice_failures: u64,
    /// Whole-GPU failure events injected.
    pub gpu_failures: u64,
    /// Request retries issued.
    pub request_retries: u64,
    /// Requests dropped after exhausting `max_retries`.
    pub retries_exhausted: u64,
    /// Pipelines rebuilt after a failure.
    pub pipeline_rebuilds: u64,
    /// Slices recovered back into placement.
    pub slice_recoveries: u64,
}

impl ChaosState {
    /// A disabled state: armed from the start, empty timeline, no mirror.
    pub fn disabled() -> Self {
        ChaosState {
            spec: FaultSpec::disabled(),
            enabled: false,
            armed: true,
            fired: false,
            timeline: Vec::new(),
            retries: Vec::new(),
            killed: Vec::new(),
            nvml: None,
            slice_failures: 0,
            gpu_failures: 0,
            request_retries: 0,
            retries_exhausted: 0,
            pipeline_rebuilds: 0,
            slice_recoveries: 0,
        }
    }

    /// Builds the state for `spec`: generates the fault timeline over
    /// `[1 µs, horizon_us]` and, when enabled, a MIG-enabled NVML mirror
    /// for charging reconfiguration latency at repair time.
    pub fn build(spec: FaultSpec, shape: FleetShape, horizon_us: u64) -> Self {
        if !spec.enabled() {
            return ChaosState {
                spec,
                ..Self::disabled()
            };
        }
        let timeline = generate_timeline(&spec, shape, horizon_us);
        let gpu_count = (shape.nodes * shape.gpus_per_node) as u16;
        let mut nvml = NvmlSim::init(gpu_count);
        for g in 0..gpu_count {
            // MIG mode on, but no repartition yet: the first repartition —
            // and its 180 s — is charged on the recovery path, not at boot
            // (partitions are prepared before the evaluation window, per
            // the paper's setup).
            let _ = nvml.set_mig_mode(g, ffs_mig::nvml::MigMode::Enabled);
        }
        ChaosState {
            spec,
            enabled: true,
            armed: false,
            fired: false,
            timeline,
            retries: Vec::new(),
            killed: Vec::new(),
            nvml: Some(nvml),
            slice_failures: 0,
            gpu_failures: 0,
            request_retries: 0,
            retries_exhausted: 0,
            pipeline_rebuilds: 0,
            slice_recoveries: 0,
        }
    }

    /// The retry attempt counter for `req`, growing the table on demand.
    pub fn bump_retry(&mut self, req: u64) -> u32 {
        let i = req as usize;
        if i >= self.retries.len() {
            self.retries.resize(i + 1, 0);
        }
        self.retries[i] += 1;
        self.retries[i]
    }

    /// True if `inst` was killed by a fault.
    pub fn was_killed(&self, inst: u64) -> bool {
        self.killed.contains(&inst)
    }
}

/// Rank used to order same-instant faults deterministically: slices fail
/// before GPUs before nodes, then by victim id.
fn class_rank(t: &FaultTarget) -> u8 {
    match t {
        FaultTarget::Slice(_) => 0,
        FaultTarget::Gpu(_) => 1,
        FaultTarget::Node(_) => 2,
    }
}

fn generate_timeline(
    spec: &FaultSpec,
    shape: FleetShape,
    horizon_us: u64,
) -> Vec<(u64, FaultTarget)> {
    let mut out: Vec<(u64, FaultTarget)> = Vec::new();
    let gpu_count = (shape.nodes * shape.gpus_per_node) as u64;
    let slice_count = gpu_count * shape.slices_per_gpu as u64;

    // Each class draws from its own stream (seed mixed with the class id)
    // so toggling one class never shifts another's schedule.
    let mut draw = |class: u64,
                    mtbf_secs: f64,
                    mut victim: Box<dyn FnMut(&mut SplitMix64) -> FaultTarget>| {
        if mtbf_secs <= 0.0 {
            return;
        }
        let mut rng =
            SplitMix64::new(spec.seed ^ (0xC1A0_5000 + class).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut t_us: u64 = 0;
        loop {
            let gap_secs = -spec_ln(rng.next_unit()) * mtbf_secs;
            let gap_us = (gap_secs * 1e6) as u64;
            t_us = t_us.saturating_add(gap_us.max(1));
            if t_us > horizon_us {
                break;
            }
            let target = victim(&mut rng);
            out.push((t_us.max(1), target));
        }
    };

    if slice_count > 0 {
        let spg = shape.slices_per_gpu as u64;
        draw(
            0,
            spec.slice_mtbf_secs,
            Box::new(move |rng| {
                let i = rng.below(slice_count);
                FaultTarget::Slice(SliceId::new(GpuId((i / spg) as u16), (i % spg) as u8))
            }),
        );
    }
    if gpu_count > 0 {
        draw(
            1,
            spec.gpu_mtbf_secs,
            Box::new(move |rng| FaultTarget::Gpu(GpuId(rng.below(gpu_count) as u16))),
        );
    }
    if shape.nodes > 0 {
        let nodes = shape.nodes as u64;
        draw(
            2,
            spec.node_mtbf_secs,
            Box::new(move |rng| FaultTarget::Node(NodeId(rng.below(nodes) as u16))),
        );
    }

    out.sort_by(|a, b| {
        a.0.cmp(&b.0)
            .then_with(|| class_rank(&a.1).cmp(&class_rank(&b.1)))
            .then_with(|| a.1.cmp(&b.1))
    });
    out
}

/// `ln` wrapper (kept separate so the one float-sensitive call site is
/// easy to audit: `ln` is correctly-rounded-enough and identical across
/// platforms for the IEEE doubles SplitMix64 produces).
#[inline]
fn spec_ln(u: f64) -> f64 {
    u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> FleetShape {
        FleetShape {
            nodes: 2,
            gpus_per_node: 8,
            slices_per_gpu: 3,
        }
    }

    #[test]
    fn disabled_spec_builds_inert_state() {
        let s = ChaosState::build(FaultSpec::disabled(), shape(), 1_000_000);
        assert!(!s.enabled);
        assert!(s.armed, "disabled state needs no arming tick");
        assert!(s.timeline.is_empty());
        assert!(s.nvml.is_none());
    }

    #[test]
    fn timeline_is_a_pure_function_of_spec() {
        let spec = FaultSpec::slice_faults(42, 60.0);
        let a = ChaosState::build(spec.clone(), shape(), 600_000_000);
        let b = ChaosState::build(spec, shape(), 600_000_000);
        assert_eq!(a.timeline, b.timeline);
        assert!(!a.timeline.is_empty(), "600 s at 60 s MTBF must fault");
    }

    #[test]
    fn different_seeds_give_different_timelines() {
        let a = ChaosState::build(FaultSpec::slice_faults(1, 60.0), shape(), 600_000_000);
        let b = ChaosState::build(FaultSpec::slice_faults(2, 60.0), shape(), 600_000_000);
        assert_ne!(a.timeline, b.timeline);
    }

    #[test]
    fn timeline_is_sorted_and_in_horizon() {
        let spec = FaultSpec {
            gpu_mtbf_secs: 120.0,
            node_mtbf_secs: 500.0,
            ..FaultSpec::slice_faults(7, 30.0)
        };
        let s = ChaosState::build(spec, shape(), 600_000_000);
        assert!(s.timeline.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(s
            .timeline
            .iter()
            .all(|&(t, _)| (1..=600_000_000).contains(&t)));
        // All three classes present in a 10-minute window.
        assert!(s
            .timeline
            .iter()
            .any(|(_, t)| matches!(t, FaultTarget::Slice(_))));
        assert!(s
            .timeline
            .iter()
            .any(|(_, t)| matches!(t, FaultTarget::Gpu(_))));
    }

    #[test]
    fn victims_are_in_range() {
        let s = ChaosState::build(FaultSpec::slice_faults(9, 10.0), shape(), 600_000_000);
        for &(_, target) in &s.timeline {
            match target {
                FaultTarget::Slice(id) => {
                    assert!((id.gpu.0 as usize) < 16);
                    assert!((id.index as usize) < 3);
                }
                FaultTarget::Gpu(g) => assert!((g.0 as usize) < 16),
                FaultTarget::Node(n) => assert!((n.0 as usize) < 2),
            }
        }
    }

    #[test]
    fn toggling_one_class_does_not_shift_another() {
        let base = FaultSpec::slice_faults(11, 45.0);
        let with_gpu = FaultSpec {
            gpu_mtbf_secs: 200.0,
            ..base.clone()
        };
        let only_slices = ChaosState::build(base, shape(), 600_000_000);
        let both = ChaosState::build(with_gpu, shape(), 600_000_000);
        let slices_of = |s: &ChaosState| {
            s.timeline
                .iter()
                .filter(|(_, t)| matches!(t, FaultTarget::Slice(_)))
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(slices_of(&only_slices), slices_of(&both));
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let spec = FaultSpec::disabled();
        assert_eq!(spec.backoff_ms(1), 50);
        assert_eq!(spec.backoff_ms(2), 100);
        assert_eq!(spec.backoff_ms(3), 200);
        assert_eq!(spec.backoff_ms(10), 2_000, "capped");
    }

    #[test]
    fn retry_table_grows_on_demand() {
        let mut s = ChaosState::disabled();
        assert_eq!(s.bump_retry(5), 1);
        assert_eq!(s.bump_retry(5), 2);
        assert_eq!(s.bump_retry(0), 1);
        assert!(!s.was_killed(3));
        s.killed.push(3);
        assert!(s.was_killed(3));
    }
}
