//! # fluidfaas — pipelined serverless scheduling with strong-isolation GPU sharing
//!
//! The paper's contribution, as an event-driven platform over the
//! workspace's substrates:
//!
//! * **On-the-fly pipeline construction** (§5.2): when scaling up, the
//!   invoker plans the best CV-ranked partition that fits the currently
//!   free (possibly fragmented) MIG slices and launches a pipelined
//!   instance across them ([`ffs_pipeline::plan_deployment`]).
//! * **Hotness-aware eviction-based time sharing** (§5.3): the multi-level
//!   keep-alive state machine of Figure 8 ([`keepalive`]), a shared-slice
//!   pool where at most one time-sharing instance per function resides,
//!   LRU eviction to CPU memory ([`shared`]), and a 10-minute idle
//!   termination to cold.
//! * **Heterogeneity-aware request routing** (§5.3): requests ordered by
//!   deadline minus estimated execution and load times, routed to
//!   exclusive-hot instances lowest-latency-first, overflowing to the
//!   time-sharing instance ([`system`]).
//! * **Pipeline migration** (§5.3): pipelined instances drain and retire
//!   when a large slice frees up and a monolithic replacement launches.
//!
//! The [`platform`] module holds the pieces shared with the ESG / INFless
//! baselines (`ffs-baselines`): request bookkeeping, the function catalog,
//! the metrics hub, the trace runner, and the policy-driven event-loop
//! engine ([`platform::engine`]) that every platform — FluidFaaS, the
//! baselines, and the ablation arms — runs on. A platform is a
//! [`platform::policy::PolicyBundle`] (router, shared-pool policy,
//! autoscaler, migrator, placer) over that engine; see
//! `docs/ARCHITECTURE.md` for the layering and how to add a policy.
//!
//! ```
//! use fluidfaas::{FfsConfig, FluidFaaSSystem, platform::run_platform};
//! use ffs_trace::{AzureTraceConfig, WorkloadClass};
//!
//! let cfg = FfsConfig::paper_default(WorkloadClass::Light);
//! let trace = AzureTraceConfig::for_workload(WorkloadClass::Light, 30.0, 1).generate();
//! let mut system = FluidFaaSSystem::new(cfg, &trace);
//! let out = run_platform(&mut system, &trace);
//! assert!(out.log.slo_hit_rate() > 0.5);
//! ```

#![warn(clippy::unwrap_used)]

pub mod chaos;
pub mod config;
pub mod instance;
pub mod keepalive;
pub mod plancache;
pub mod platform;
pub mod shared;
pub mod system;

pub use chaos::{ChaosState, FaultSpec, FaultTarget};
pub use config::{FfsConfig, ScalingPolicy};
pub use keepalive::{KeepAliveState, Transition};
pub use platform::engine::{Engine, EngineCore, EngineError};
pub use platform::mqfq::{mqfq_policies, mqfq_policies_with, MqfqParams, MqfqState};
pub use platform::policy::PolicyBundle;
pub use platform::sharded::{
    run_output_digest, run_sharded, run_sharded_fluid, ShardRunStats, ShardSpec, ShardView,
};
pub use system::{
    paper_policies, FluidAutoscaler, FluidFaaSSystem, FluidMigrator, FluidPlacer, FluidRouter,
    FluidSharedPool, SchedulerLog,
};
