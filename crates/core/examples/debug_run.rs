//! Scratch diagnostics for platform tuning (not a shipped example).
use ffs_trace::{AzureTraceConfig, WorkloadClass};
use fluidfaas::platform::runner::run_platform;
use fluidfaas::{FfsConfig, FluidFaaSSystem};

fn main() {
    let secs: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300.0);
    for wl in [
        WorkloadClass::Light,
        WorkloadClass::Medium,
        WorkloadClass::Heavy,
    ] {
        let cfg = FfsConfig::paper_default(wl);
        let trace = AzureTraceConfig::for_workload(wl, secs, 1).generate();
        let mut sys = FluidFaaSSystem::new(cfg, &trace);
        let out = run_platform(&mut sys, &trace);
        println!("{:8} Fluid   hit={:.3} thr={:.1} p95={:.0} gpu_t={:.0} mig_t={:.0} peak_inst={} peak_pipe={}",
            wl.name(), out.log.slo_hit_rate(), out.throughput_rps(),
            out.latency_cdf().p95().unwrap_or(0.0),
            out.cost.total_gpu_time_secs(), out.cost.total_mig_time_secs(),
            sys.peak_instances(), sys.peak_pipelines());
    }
}
