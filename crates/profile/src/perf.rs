//! The analytic performance model standing in for on-hardware profiling.
//!
//! The schedulers only ever consume profile *numbers* (execution time per
//! slice size, load times, transfer times); the paper obtains them by
//! measurement, we obtain them from a small analytic model. The shapes that
//! matter for the evaluation are preserved: execution time shrinks
//! sublinearly with GPCs (Amdahl), model loading is PCIe-bound, pipeline
//! boundaries cost 10–40 ms through host shared memory while the baseline's
//! in-process handoff costs 1–5 ms.

use serde::{Deserialize, Serialize};

/// Analytic cost model for DNN inference on MIG slices.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfModel {
    /// Amdahl serial fraction of a DNN inference: the part that does not
    /// speed up with more GPCs (kernel launch, memory-bound layers).
    pub serial_fraction: f64,
    /// Effective host-to-device bandwidth for loading model weights, GB/s.
    pub pcie_gbps: f64,
    /// Effective bandwidth of a stage-boundary handoff through host shared
    /// memory (device-to-host copy, shm write + read, host-to-device copy),
    /// GB/s.
    pub shm_gbps: f64,
    /// Fixed overhead per pipeline-stage boundary, ms (queue wakeup,
    /// (de)serialisation).
    pub boundary_base_ms: f64,
    /// Fixed overhead of the baseline's in-process handoff between models
    /// on the same slice, ms (the paper's 1–5 ms).
    pub inprocess_handoff_ms: f64,
    /// Container / process cold-start cost, ms (excluding model load).
    pub cold_start_ms: f64,
}

impl Default for PerfModel {
    fn default() -> Self {
        PerfModel {
            serial_fraction: 0.2,
            pcie_gbps: 16.0,
            shm_gbps: 4.0,
            boundary_base_ms: 5.0,
            inprocess_handoff_ms: 1.5,
            cold_start_ms: 2_000.0,
        }
    }
}

impl PerfModel {
    /// Amdahl speedup factor on `gpcs` GPCs: the fraction of the 1-GPC
    /// execution time remaining.
    pub fn amdahl(&self, gpcs: u32) -> f64 {
        debug_assert!(gpcs >= 1);
        self.serial_fraction + (1.0 - self.serial_fraction) / gpcs as f64
    }

    /// Execution time (ms) of a component with 1-GPC cost `work_ms` on a
    /// slice with `gpcs` GPCs.
    pub fn exec_ms(&self, work_ms: f64, gpcs: u32) -> f64 {
        work_ms * self.amdahl(gpcs)
    }

    /// Time (ms) to load `mem_gb` of model state from host to device (the
    /// warm-start load, and also the eviction write-back cost).
    pub fn load_ms(&self, mem_gb: f64) -> f64 {
        mem_gb / self.pcie_gbps * 1_000.0
    }

    /// Cold-start time (ms): container start plus model load.
    pub fn cold_start_total_ms(&self, mem_gb: f64) -> f64 {
        self.cold_start_ms + self.load_ms(mem_gb)
    }

    /// Cost (ms) of moving `mb` megabytes across one pipeline-stage
    /// boundary through host shared memory.
    pub fn boundary_ms(&self, mb: f64) -> f64 {
        self.boundary_base_ms + mb / (self.shm_gbps * 1_000.0) * 1_000.0
    }

    /// Total transfer overhead (ms) for a pipeline with the given
    /// per-boundary tensor sizes.
    pub fn pipeline_transfer_ms(&self, boundaries_mb: &[f64]) -> f64 {
        boundaries_mb.iter().map(|&mb| self.boundary_ms(mb)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_is_monotone_and_bounded() {
        let m = PerfModel::default();
        assert_eq!(m.amdahl(1), 1.0);
        let mut prev = m.amdahl(1);
        for g in 2..=7 {
            let cur = m.amdahl(g);
            assert!(cur < prev, "more GPCs must not slow down");
            assert!(cur > m.serial_fraction, "bounded by the serial fraction");
            prev = cur;
        }
    }

    #[test]
    fn exec_scales_with_work() {
        let m = PerfModel::default();
        assert_eq!(m.exec_ms(100.0, 1), 100.0);
        assert!((m.exec_ms(100.0, 2) - 60.0).abs() < 1e-9);
        assert!((m.exec_ms(100.0, 4) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn load_time_is_pcie_bound() {
        let m = PerfModel::default();
        // 16 GB over 16 GB/s = 1 s.
        assert!((m.load_ms(16.0) - 1_000.0).abs() < 1e-9);
    }

    #[test]
    fn boundary_cost_in_paper_range() {
        // The paper reports 10–40 ms total pipeline transfer overhead; a
        // typical 20–100 MB of crossing tensors must land in that range.
        let m = PerfModel::default();
        let small = m.pipeline_transfer_ms(&[20.0]);
        let big = m.pipeline_transfer_ms(&[48.0, 48.0]);
        assert!(small >= 10.0 - 1e-9, "small transfer {small}");
        assert!(big <= 40.0, "big transfer {big}");
        // ... and the in-process handoff is the paper's 1–5 ms.
        assert!(m.inprocess_handoff_ms >= 1.0 && m.inprocess_handoff_ms <= 5.0);
    }

    #[test]
    fn cold_start_dominated_by_container() {
        let m = PerfModel::default();
        assert!(m.cold_start_total_ms(8.0) > m.load_ms(8.0));
    }
}
