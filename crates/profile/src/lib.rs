//! # ffs-profile — performance model, model zoo and the paper's applications
//!
//! The FluidFaaS runtime consumes *profiles*: per-component memory
//! footprints and execution times on each MIG slice size, produced offline
//! by the `BUILDDAG` entry point of an FFS function. On real hardware these
//! come from measurement; this reproduction generates them from an analytic
//! model:
//!
//! * [`perf::PerfModel`] — Amdahl-style compute scaling over GPCs, PCIe
//!   load/eviction costs, host-shared-memory transfer costs (the 10–40 ms
//!   pipeline overhead of §7.3), and cold-start costs.
//! * [`zoo`] — the six DNN components appearing in the paper's Table 4
//!   (super resolution, segmentation, classification, deblur, depth
//!   recognition, background removal) with calibrated parameters.
//! * [`apps`] — the four applications of Table 4, each in the small /
//!   medium / large variants of Table 5. Component memory footprints are
//!   calibrated so that the "MIG to run" columns of Table 5 hold exactly.
//! * [`profiler::FunctionProfile`] — the profile bundle (DAG + blocks +
//!   per-slice execution times) the invoker's pipeline planner consumes.
//!
//! ```
//! use ffs_profile::{App, Variant, FunctionProfile, PerfModel};
//!
//! let profile = FunctionProfile::build(App::ImageClassification, Variant::Medium,
//!                                      &PerfModel::default());
//! // Table 5: medium image classification needs >= 2g.20gb monolithic
//! // but only >= 1g.10gb when pipelined.
//! assert_eq!(profile.min_baseline_slice().unwrap().name(), "2g.20gb");
//! assert_eq!(profile.min_pipeline_slice().unwrap().name(), "1g.10gb");
//! ```

pub mod apps;
pub mod calibrate;
pub mod perf;
pub mod profiler;
pub mod zoo;

pub use apps::{App, Variant};
pub use calibrate::{fit_amdahl, Fit, MeasuredPoint};
pub use perf::PerfModel;
pub use profiler::FunctionProfile;
pub use zoo::ComponentKind;
