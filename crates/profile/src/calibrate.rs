//! Calibrating the analytic model against measured profiles.
//!
//! On real hardware, the `BUILDDAG` profiling pass produces measured
//! execution times per MIG slice size. This module fits the analytic
//! model's Amdahl serial fraction to such measurements, so a deployment
//! with real profiling data can plug its numbers into the same planner and
//! simulators. (It also closes the loop for the reproduction: fitting the
//! model to its own output recovers the generating parameters.)

use crate::perf::PerfModel;

/// A measured point: execution time on a slice with `gpcs` GPCs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MeasuredPoint {
    /// GPCs of the slice the measurement ran on.
    pub gpcs: u32,
    /// Measured execution time (ms).
    pub exec_ms: f64,
}

/// Result of a model fit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fit {
    /// The fitted 1-GPC work (ms).
    pub work_ms: f64,
    /// The fitted serial fraction.
    pub serial_fraction: f64,
    /// Root-mean-square error of the fit (ms).
    pub rmse_ms: f64,
}

/// Fits `exec(g) = work * (s + (1-s)/g)` to measured points by scanning the
/// serial fraction (the model is linear in `work` given `s`, so each
/// candidate `s` has a closed-form best `work`).
///
/// Returns `None` for fewer than two distinct GPC counts (the model is
/// under-determined).
pub fn fit_amdahl(points: &[MeasuredPoint]) -> Option<Fit> {
    let mut gpcs: Vec<u32> = points.iter().map(|p| p.gpcs).collect();
    gpcs.sort_unstable();
    gpcs.dedup();
    if gpcs.len() < 2 || points.iter().any(|p| p.exec_ms <= 0.0 || p.gpcs == 0) {
        return None;
    }
    let mut best: Option<Fit> = None;
    let mut s = 0.0;
    while s <= 1.0 + 1e-9 {
        // exec = work * k(g); least squares: work = sum(exec*k)/sum(k^2).
        let mut num = 0.0;
        let mut den = 0.0;
        for p in points {
            let k = s + (1.0 - s) / p.gpcs as f64;
            num += p.exec_ms * k;
            den += k * k;
        }
        let work = num / den;
        let mut sq = 0.0;
        for p in points {
            let k = s + (1.0 - s) / p.gpcs as f64;
            let e = p.exec_ms - work * k;
            sq += e * e;
        }
        let rmse = (sq / points.len() as f64).sqrt();
        if best.is_none_or(|b| rmse < b.rmse_ms) {
            best = Some(Fit {
                work_ms: work,
                serial_fraction: s,
                rmse_ms: rmse,
            });
        }
        s += 0.001;
    }
    best
}

/// Builds a [`PerfModel`] with the fitted serial fraction, keeping the
/// other cost parameters from `base`.
pub fn model_from_fit(base: &PerfModel, fit: &Fit) -> PerfModel {
    PerfModel {
        serial_fraction: fit.serial_fraction,
        ..base.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_generating_parameters() {
        let truth = PerfModel {
            serial_fraction: 0.2,
            ..PerfModel::default()
        };
        let work = 120.0;
        let points: Vec<MeasuredPoint> = [1u32, 2, 3, 4, 7]
            .iter()
            .map(|&g| MeasuredPoint {
                gpcs: g,
                exec_ms: truth.exec_ms(work, g),
            })
            .collect();
        let fit = fit_amdahl(&points).unwrap();
        assert!((fit.serial_fraction - 0.2).abs() < 0.002, "{fit:?}");
        assert!((fit.work_ms - work).abs() < 0.5, "{fit:?}");
        assert!(fit.rmse_ms < 1e-6, "{fit:?}");
        let model = model_from_fit(&truth, &fit);
        assert!((model.exec_ms(work, 4) - truth.exec_ms(work, 4)).abs() < 1e-6);
    }

    #[test]
    fn tolerates_noise() {
        let truth = PerfModel {
            serial_fraction: 0.35,
            ..PerfModel::default()
        };
        let work = 200.0;
        // ±3% deterministic "measurement noise".
        let noise = [1.03, 0.97, 1.02, 0.98, 1.01];
        let points: Vec<MeasuredPoint> = [1u32, 2, 3, 4, 7]
            .iter()
            .zip(noise)
            .map(|(&g, n)| MeasuredPoint {
                gpcs: g,
                exec_ms: truth.exec_ms(work, g) * n,
            })
            .collect();
        let fit = fit_amdahl(&points).unwrap();
        assert!((fit.serial_fraction - 0.35).abs() < 0.08, "{fit:?}");
        assert!(fit.rmse_ms < work * 0.05);
    }

    #[test]
    fn underdetermined_inputs_rejected() {
        assert_eq!(fit_amdahl(&[]), None);
        assert_eq!(
            fit_amdahl(&[MeasuredPoint {
                gpcs: 2,
                exec_ms: 50.0
            }]),
            None
        );
        // Two points on the same slice size are still one distinct size.
        assert_eq!(
            fit_amdahl(&[
                MeasuredPoint {
                    gpcs: 2,
                    exec_ms: 50.0
                },
                MeasuredPoint {
                    gpcs: 2,
                    exec_ms: 51.0
                }
            ]),
            None
        );
        assert_eq!(
            fit_amdahl(&[
                MeasuredPoint {
                    gpcs: 1,
                    exec_ms: -1.0
                },
                MeasuredPoint {
                    gpcs: 2,
                    exec_ms: 50.0
                }
            ]),
            None
        );
    }

    #[test]
    fn perfectly_parallel_and_serial_extremes() {
        // Perfectly parallel: exec halves with double GPCs -> s ~ 0.
        let par: Vec<MeasuredPoint> = [1u32, 2, 4]
            .iter()
            .map(|&g| MeasuredPoint {
                gpcs: g,
                exec_ms: 100.0 / g as f64,
            })
            .collect();
        assert!(fit_amdahl(&par).unwrap().serial_fraction < 0.01);
        // Perfectly serial: exec constant -> s ~ 1.
        let ser: Vec<MeasuredPoint> = [1u32, 2, 4]
            .iter()
            .map(|&g| MeasuredPoint {
                gpcs: g,
                exec_ms: 100.0,
            })
            .collect();
        assert!(fit_amdahl(&ser).unwrap().serial_fraction > 0.99);
    }
}
