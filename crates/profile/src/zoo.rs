//! The model zoo: the six DNN components of the paper's applications
//! (Table 4), with calibrated base parameters.
//!
//! `work` is milliseconds on one GPC at the small-variant batch size;
//! `mem_gb` is the component's GPU footprint (weights + activations) at the
//! small-variant batch size; `output_mb` is the tensor the component hands
//! to its successor. Variants scale `work` and `mem_gb` (larger batches,
//! higher resolutions) but leave `output_mb` fixed: batched outputs stream
//! through the boundary per sample, so per-request transfer cost is
//! dominated by single-sample tensors (keeping the paper's 10–40 ms total).

use serde::{Deserialize, Serialize};

use ffs_dag::Component;

/// The DNN components used by the paper's applications.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// SRGAN photo-realistic super resolution.
    SuperResolution,
    /// DeepLabV3 semantic segmentation.
    Segmentation,
    /// ResNet-50 image classification.
    Classification,
    /// DeblurGAN motion deblurring.
    Deblur,
    /// MiDaS monocular depth estimation.
    DepthRecognition,
    /// U²-Net salient-object / background removal.
    BackgroundRemoval,
    /// LLM tokenizer (extension app, §5.2.3).
    Tokenizer,
    /// First half of a transformer stack (LLM extension).
    TransformerFront,
    /// Second half of a transformer stack (LLM extension).
    TransformerBack,
    /// LLM detokenizer / response generation (extension).
    Detokenizer,
}

impl ComponentKind {
    /// All components (the six Table 4 components plus the LLM extension).
    pub const ALL: [ComponentKind; 10] = [
        ComponentKind::SuperResolution,
        ComponentKind::Segmentation,
        ComponentKind::Classification,
        ComponentKind::Deblur,
        ComponentKind::DepthRecognition,
        ComponentKind::BackgroundRemoval,
        ComponentKind::Tokenizer,
        ComponentKind::TransformerFront,
        ComponentKind::TransformerBack,
        ComponentKind::Detokenizer,
    ];

    /// Component name.
    pub const fn name(self) -> &'static str {
        match self {
            ComponentKind::SuperResolution => "super_resolution",
            ComponentKind::Segmentation => "segmentation",
            ComponentKind::Classification => "classification",
            ComponentKind::Deblur => "deblur",
            ComponentKind::DepthRecognition => "depth_recognition",
            ComponentKind::BackgroundRemoval => "background_removal",
            ComponentKind::Tokenizer => "tokenizer",
            ComponentKind::TransformerFront => "transformer_front",
            ComponentKind::TransformerBack => "transformer_back",
            ComponentKind::Detokenizer => "detokenizer",
        }
    }

    /// Base GPU memory footprint in GB (small variant).
    pub const fn base_mem_gb(self) -> f64 {
        match self {
            ComponentKind::SuperResolution => 2.2,
            ComponentKind::Segmentation => 2.4,
            ComponentKind::Classification => 1.6,
            ComponentKind::Deblur => 1.8,
            ComponentKind::DepthRecognition => 2.0,
            ComponentKind::BackgroundRemoval => 2.1,
            ComponentKind::Tokenizer => 0.4,
            ComponentKind::TransformerFront => 6.0,
            ComponentKind::TransformerBack => 6.0,
            ComponentKind::Detokenizer => 0.4,
        }
    }

    /// Base compute cost in ms on 1 GPC (small variant).
    pub const fn base_work_ms(self) -> f64 {
        match self {
            ComponentKind::SuperResolution => 90.0,
            ComponentKind::Segmentation => 70.0,
            ComponentKind::Classification => 30.0,
            ComponentKind::Deblur => 60.0,
            ComponentKind::DepthRecognition => 55.0,
            ComponentKind::BackgroundRemoval => 65.0,
            ComponentKind::Tokenizer => 4.0,
            ComponentKind::TransformerFront => 150.0,
            ComponentKind::TransformerBack => 150.0,
            ComponentKind::Detokenizer => 4.0,
        }
    }

    /// Output tensor size in MB.
    pub const fn output_mb(self) -> f64 {
        match self {
            ComponentKind::SuperResolution => 48.0,
            ComponentKind::Segmentation => 16.0,
            ComponentKind::Classification => 0.01,
            ComponentKind::Deblur => 24.0,
            ComponentKind::DepthRecognition => 12.0,
            ComponentKind::BackgroundRemoval => 16.0,
            ComponentKind::Tokenizer => 0.2,
            ComponentKind::TransformerFront => 24.0,
            ComponentKind::TransformerBack => 1.0,
            ComponentKind::Detokenizer => 0.01,
        }
    }

    /// The DAG component description at given memory / compute scale
    /// factors. Memory grows with batch size and resolution; compute grows
    /// faster (larger batches *and* more pixels per sample), which is why
    /// the two scales are independent.
    pub fn component(self, mem_scale: f64, work_scale: f64) -> Component {
        Component::new(
            self.name(),
            self.base_mem_gb() * mem_scale,
            self.base_work_ms() * work_scale,
            self.output_mb(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ComponentKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn base_parameters_are_positive() {
        for k in ComponentKind::ALL {
            assert!(k.base_mem_gb() > 0.0);
            assert!(k.base_work_ms() > 0.0);
            assert!(k.output_mb() >= 0.0);
        }
    }

    #[test]
    fn scaling_affects_mem_and_work_not_output() {
        let k = ComponentKind::SuperResolution;
        let c1 = k.component(1.0, 1.0);
        let c5 = k.component(5.0, 8.0);
        assert!((c5.mem_gb - 5.0 * c1.mem_gb).abs() < 1e-12);
        assert!((c5.work - 8.0 * c1.work).abs() < 1e-12);
        assert_eq!(c5.output_mb, c1.output_mb);
    }
}
