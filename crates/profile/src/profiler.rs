//! The profile bundle the invoker consumes: DAG, linear blocks, per-slice
//! execution times, and the Table 5 feasibility queries.
//!
//! This is the Rust analogue of the paper's `BUILDDAG` mode: construct the
//! DAG, profile every component on every slice size, and cache the
//! CV-ranked pipeline partitions — all offline, so the invoker's launch
//! path only does table lookups.

use serde::{Deserialize, Serialize};

use ffs_dag::{
    linear_blocks, try_rank_partitions, FfsDag, NodeId, PartitionError, PipelinePartition,
    RankedPartition,
};
use ffs_mig::SliceProfile;

use crate::apps::{App, Variant};
use crate::perf::PerfModel;

/// Offline profile of one FluidFaaS function (one app-variant).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FunctionProfile {
    /// The function name (`"<app>_<variant>"`).
    pub name: String,
    /// Which paper application this is.
    pub app: App,
    /// Which variant.
    pub variant: Variant,
    /// The FFS DAG.
    pub dag: FfsDag,
    /// The dominator-linearised blocks (valid stage boundaries).
    pub blocks: Vec<Vec<NodeId>>,
    /// `exec_ms[node][p]` = execution time of `node` on slice profile `p`
    /// (indexed by `SliceProfile::ALL` order).
    pub exec_ms: Vec<[f64; 5]>,
    /// Minimum GPCs for a monolithic deployment (Table 5 compute-bound
    /// rows).
    pub min_gpcs_mono: u32,
    /// The performance model the profile was generated with.
    pub perf: PerfModel,
    /// CV-ranked pipeline partitions, precomputed at registration so the
    /// launch path borrows instead of re-ranking (private: the cache must
    /// stay consistent with `blocks`/`exec_ms`).
    ranked: Vec<RankedPartition>,
}

impl FunctionProfile {
    /// Profiles an application variant (the `BUILDDAG` entry point).
    ///
    /// Panics if the generated DAG yields a malformed partition spec —
    /// impossible for the built-in paper apps; use
    /// [`FunctionProfile::try_build`] when profiling untrusted specs.
    pub fn build(app: App, variant: Variant, perf: &PerfModel) -> Self {
        Self::try_build(app, variant, perf).expect("paper app DAGs are well-formed")
    }

    /// Fallible profiling: a malformed partition spec (empty DAG, degenerate
    /// blocks, non-finite modelled costs) is returned as an error instead of
    /// panicking the planner.
    pub fn try_build(app: App, variant: Variant, perf: &PerfModel) -> Result<Self, PartitionError> {
        let dag = app.build_dag(variant);
        let blocks = linear_blocks(&dag);
        let exec_ms = dag
            .nodes()
            .map(|n| {
                let work = dag.component(n).work;
                let mut row = [0.0; 5];
                for (i, p) in SliceProfile::ALL.iter().enumerate() {
                    row[i] = perf.exec_ms(work, p.gpcs());
                }
                row
            })
            .collect();
        let mut profile = FunctionProfile {
            name: dag.name().to_string(),
            app,
            variant,
            dag,
            blocks,
            exec_ms,
            min_gpcs_mono: app.min_gpcs_mono(variant),
            perf: perf.clone(),
            ranked: Vec::new(),
        };
        profile.ranked = try_rank_partitions(
            &profile.blocks,
            |n| profile.node_exec_ms(n, SliceProfile::G1_10),
            usize::MAX,
        )?;
        Ok(profile)
    }

    /// All 12 paper app-variants profiled with the default model.
    pub fn paper_suite(perf: &PerfModel) -> Vec<FunctionProfile> {
        let mut out = Vec::new();
        for app in App::ALL {
            for variant in Variant::ALL {
                out.push(FunctionProfile::build(app, variant, perf));
            }
        }
        out
    }

    /// Execution time of one component on a slice profile.
    pub fn node_exec_ms(&self, node: NodeId, slice: SliceProfile) -> f64 {
        let idx = SliceProfile::ALL
            .iter()
            .position(|&p| p == slice)
            .expect("profile is in ALL");
        self.exec_ms[node.index()][idx]
    }

    /// Execution time of the whole function run monolithically on one
    /// slice (components back-to-back in one process, with the baseline's
    /// cheap in-process handoffs).
    pub fn mono_exec_ms(&self, slice: SliceProfile) -> f64 {
        let compute: f64 = self.dag.nodes().map(|n| self.node_exec_ms(n, slice)).sum();
        let handoffs = (self.dag.len().saturating_sub(1)) as f64 * self.perf.inprocess_handoff_ms;
        compute + handoffs
    }

    /// Total memory footprint (the monolithic requirement).
    pub fn total_mem_gb(&self) -> f64 {
        self.dag.total_mem_gb()
    }

    /// Execution time of one pipeline stage (its components back-to-back)
    /// on a slice profile.
    pub fn stage_exec_ms(&self, stage: &[NodeId], slice: SliceProfile) -> f64 {
        stage.iter().map(|&n| self.node_exec_ms(n, slice)).sum()
    }

    /// End-to-end latency (ms) of a pipeline partition where stage `i` runs
    /// on `slices[i]`: stage times plus boundary transfers. (Unloaded
    /// latency; queueing is the simulator's business.)
    pub fn pipeline_latency_ms(
        &self,
        partition: &PipelinePartition,
        slices: &[SliceProfile],
    ) -> f64 {
        assert_eq!(partition.num_stages(), slices.len());
        let exec: f64 = partition
            .stages()
            .iter()
            .zip(slices)
            .map(|(stage, &s)| self.stage_exec_ms(stage, s))
            .sum();
        let transfers = self
            .perf
            .pipeline_transfer_ms(&partition.boundary_transfers_mb(&self.dag));
        exec + transfers
    }

    /// Bottleneck service time (ms) of a pipeline: the slowest stage, which
    /// bounds the instance's throughput.
    pub fn pipeline_bottleneck_ms(
        &self,
        partition: &PipelinePartition,
        slices: &[SliceProfile],
    ) -> f64 {
        partition
            .stages()
            .iter()
            .zip(slices)
            .map(|(stage, &s)| self.stage_exec_ms(stage, s))
            .fold(0.0, f64::max)
    }

    /// All pipeline partitions ranked by CV (Equation 1), using the 1-GPC
    /// execution times as the balance metric (the offline step of §5.2.2).
    ///
    /// Computed once in [`FunctionProfile::build`] and borrowed here, so
    /// the launch path never re-ranks.
    pub fn ranked_partitions(&self) -> &[RankedPartition] {
        &self.ranked
    }

    /// Smallest slice a *monolithic* (baseline) deployment fits on: memory
    /// for the whole function plus the compute floor (Table 5, "MIG to run
    /// (Baseline)"). `None` if not even `7g.80gb` suffices.
    pub fn min_baseline_slice(&self) -> Option<SliceProfile> {
        SliceProfile::smallest_fitting(self.total_mem_gb(), self.min_gpcs_mono)
    }

    /// Smallest slice a *pipelined* deployment needs per stage: the best
    /// partition minimises the largest stage footprint (Table 5, "MIG to
    /// run (FluidFaaS)").
    pub fn min_pipeline_slice(&self) -> Option<SliceProfile> {
        let best = ffs_dag::enumerate_partitions(&self.blocks)
            .into_iter()
            .map(|p| p.max_stage_mem_gb(&self.dag))
            .fold(f64::INFINITY, f64::min);
        SliceProfile::smallest_with_memory(best)
    }

    /// The reference latency `t` of §6: the function run alone on the
    /// minimum MIG instances of Table 5 — i.e. the fully-pipelined
    /// deployment on `min_pipeline_slice()` slices.
    pub fn reference_latency_ms(&self) -> f64 {
        let slice = self
            .min_pipeline_slice()
            .expect("every paper app fits pipelined");
        let full = PipelinePartition::new(self.blocks.clone());
        let slices = vec![slice; full.num_stages()];
        self.pipeline_latency_ms(&full, &slices)
    }

    /// The SLO latency for a given SLO scale (default 1.5 in the paper).
    pub fn slo_ms(&self, slo_scale: f64) -> f64 {
        slo_scale * self.reference_latency_ms()
    }

    /// Warm model-load time (ms) for a set of components.
    pub fn load_ms(&self, nodes: &[NodeId]) -> f64 {
        let mem: f64 = nodes.iter().map(|&n| self.dag.component(n).mem_gb).sum();
        self.perf.load_ms(mem)
    }

    /// Cold-start time (ms) for the whole function.
    pub fn cold_start_ms(&self) -> f64 {
        self.perf.cold_start_total_ms(self.total_mem_gb())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(app: App, variant: Variant) -> FunctionProfile {
        FunctionProfile::build(app, variant, &PerfModel::default())
    }

    /// The full Table 5 of the paper.
    #[test]
    fn table5_minimum_slices() {
        use SliceProfile::*;
        let rows: Vec<(App, Variant, Option<SliceProfile>, Option<SliceProfile>)> = vec![
            (
                App::ImageClassification,
                Variant::Small,
                Some(G1_10),
                Some(G1_10),
            ),
            (
                App::ImageClassification,
                Variant::Medium,
                Some(G2_20),
                Some(G1_10),
            ),
            (
                App::ImageClassification,
                Variant::Large,
                Some(G3_40),
                Some(G2_20),
            ),
            (
                App::DepthRecognition,
                Variant::Small,
                Some(G1_10),
                Some(G1_10),
            ),
            (
                App::DepthRecognition,
                Variant::Medium,
                Some(G2_20),
                Some(G1_10),
            ),
            (
                App::DepthRecognition,
                Variant::Large,
                Some(G3_40),
                Some(G2_20),
            ),
            (
                App::BackgroundElimination,
                Variant::Small,
                Some(G1_10),
                Some(G1_10),
            ),
            (
                App::BackgroundElimination,
                Variant::Medium,
                Some(G2_20),
                Some(G1_10),
            ),
            (
                App::BackgroundElimination,
                Variant::Large,
                Some(G3_40),
                Some(G2_20),
            ),
            (
                App::ExpandedImageClassification,
                Variant::Small,
                Some(G2_20),
                Some(G1_10),
            ),
            (
                App::ExpandedImageClassification,
                Variant::Medium,
                Some(G4_40),
                Some(G1_10),
            ),
        ];
        for (app, variant, baseline, pipeline) in rows {
            let p = profile(app, variant);
            assert_eq!(
                p.min_baseline_slice(),
                baseline,
                "{} {} baseline",
                app.name(),
                variant.name()
            );
            assert_eq!(
                p.min_pipeline_slice(),
                pipeline,
                "{} {} pipeline",
                app.name(),
                variant.name()
            );
        }
        // The NULL row: large expanded image classification cannot run on
        // the default partition (> 40 GB monolithic), and the paper
        // excludes it.
        let p = profile(App::ExpandedImageClassification, Variant::Large);
        assert!(p.app.excluded_from_study(p.variant));
        assert_eq!(
            p.min_baseline_slice(),
            Some(G7_80),
            "only a full GPU could host it"
        );
    }

    #[test]
    fn exec_times_shrink_with_slice_size() {
        let p = profile(App::ImageClassification, Variant::Medium);
        for n in p.dag.nodes() {
            let t1 = p.node_exec_ms(n, SliceProfile::G1_10);
            let t4 = p.node_exec_ms(n, SliceProfile::G4_40);
            let t7 = p.node_exec_ms(n, SliceProfile::G7_80);
            assert!(t1 > t4 && t4 > t7);
        }
    }

    #[test]
    fn pipeline_latency_exceeds_mono_on_same_slices() {
        // Splitting adds transfer overhead: a pipeline on slices equal to
        // the mono slice is strictly slower end-to-end.
        let p = profile(App::ImageClassification, Variant::Small);
        let full = PipelinePartition::new(p.blocks.clone());
        let slices = vec![SliceProfile::G2_20; full.num_stages()];
        let pipe = p.pipeline_latency_ms(&full, &slices);
        let mono = p.mono_exec_ms(SliceProfile::G2_20);
        assert!(pipe > mono, "pipe {pipe} mono {mono}");
    }

    #[test]
    fn bottleneck_below_latency() {
        let p = profile(App::DepthRecognition, Variant::Medium);
        let full = PipelinePartition::new(p.blocks.clone());
        let slices = vec![SliceProfile::G1_10; full.num_stages()];
        assert!(p.pipeline_bottleneck_ms(&full, &slices) < p.pipeline_latency_ms(&full, &slices));
    }

    #[test]
    fn reference_latency_and_slo() {
        let p = profile(App::ImageClassification, Variant::Medium);
        let t = p.reference_latency_ms();
        assert!(t > 0.0);
        assert!((p.slo_ms(1.5) - 1.5 * t).abs() < 1e-9);
        // Every deployment the schedulers may choose meets the unloaded SLO.
        let slo = p.slo_ms(1.5);
        assert!(p.mono_exec_ms(p.min_baseline_slice().unwrap()) < slo);
        assert!(t < slo);
    }

    #[test]
    fn ranked_partitions_start_balanced() {
        let p = profile(App::ImageClassification, Variant::Medium);
        let ranked = p.ranked_partitions();
        assert_eq!(ranked.len(), 1 << (p.blocks.len() - 1));
        for w in ranked.windows(2) {
            assert!(w[0].cv <= w[1].cv + 1e-12);
        }
    }

    #[test]
    fn paper_suite_is_complete() {
        let suite = FunctionProfile::paper_suite(&PerfModel::default());
        assert_eq!(suite.len(), 12);
        let mut names: Vec<&str> = suite.iter().map(|p| p.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn expanded_app_blocks_isolate_branch() {
        let p = profile(App::ExpandedImageClassification, Variant::Medium);
        // deblur | sr | bgrm | seg | cls — the skip edge keeps sr a gap
        // block between the cut nodes deblur and bgrm.
        assert_eq!(p.blocks.len(), 5);
    }

    #[test]
    fn load_and_cold_start_costs() {
        let p = profile(App::ImageClassification, Variant::Medium);
        let all: Vec<NodeId> = p.dag.nodes().collect();
        let full_load = p.load_ms(&all);
        assert!((full_load - p.perf.load_ms(p.total_mem_gb())).abs() < 1e-9);
        assert!(p.cold_start_ms() > full_load);
    }
}
