//! The four applications of the paper's Table 4, in the small / medium /
//! large variants of Table 5.

use serde::{Deserialize, Serialize};

use ffs_dag::{FfsDag, NodeId};

use crate::zoo::ComponentKind;

/// The paper's applications (Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum App {
    /// App 0: super resolution → segmentation → classification.
    ImageClassification,
    /// App 1: deblur → super resolution → depth recognition.
    DepthRecognition,
    /// App 2: super resolution → deblur → background removal.
    BackgroundElimination,
    /// App 3: deblur → (super resolution | pass) → background removal →
    /// segmentation → classification. The only branched DAG.
    ExpandedImageClassification,
    /// Extension app (not in Table 4): multi-stage LLM inference —
    /// tokenization → transformer front half → transformer back half →
    /// response generation. §5.2.3 argues FluidFaaS maps such stages to
    /// GPU resources like any other FFS DAG; this app makes the claim
    /// executable. Excluded from [`App::ALL`] so the paper experiments are
    /// unaffected.
    LlmService,
}

/// Application variant (Table 5): memory requirement and batch size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Small batch / resolution.
    Small,
    /// Medium batch / resolution.
    Medium,
    /// Large batch / resolution.
    Large,
}

impl App {
    /// All applications in paper order (App 0 – App 3).
    pub const ALL: [App; 4] = [
        App::ImageClassification,
        App::DepthRecognition,
        App::BackgroundElimination,
        App::ExpandedImageClassification,
    ];

    /// Short name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            App::ImageClassification => "image_classification",
            App::DepthRecognition => "depth_recognition",
            App::BackgroundElimination => "background_elimination",
            App::ExpandedImageClassification => "expanded_image_classification",
            App::LlmService => "llm_service",
        }
    }

    /// Paper index ("App 0" … "App 3").
    pub const fn index(self) -> usize {
        match self {
            App::ImageClassification => 0,
            App::DepthRecognition => 1,
            App::BackgroundElimination => 2,
            App::ExpandedImageClassification => 3,
            App::LlmService => 4,
        }
    }

    /// The component chain(s) of the application.
    pub fn components(self) -> Vec<ComponentKind> {
        use ComponentKind::*;
        match self {
            App::ImageClassification => vec![SuperResolution, Segmentation, Classification],
            App::DepthRecognition => vec![Deblur, SuperResolution, DepthRecognition],
            App::BackgroundElimination => vec![SuperResolution, Deblur, BackgroundRemoval],
            App::ExpandedImageClassification => vec![
                Deblur,
                SuperResolution,
                BackgroundRemoval,
                Segmentation,
                Classification,
            ],
            App::LlmService => vec![Tokenizer, TransformerFront, TransformerBack, Detokenizer],
        }
    }

    /// The variant scale factor applied to component memory and work.
    ///
    /// Factors are calibrated so the "MIG to run" columns of Table 5 hold:
    /// e.g. the three sequential apps total ≈6 GB small (fits `1g.10gb`
    /// monolithic), 15 GB medium (needs `2g.20gb` monolithic but every
    /// component stays under 10 GB, so a pipeline fits `1g.10gb` slices),
    /// and ≈30 GB large with 11–12 GB components (monolithic `3g.40gb`,
    /// pipelined `2g.20gb`).
    pub fn mem_scale(self, variant: Variant) -> f64 {
        match (self, variant) {
            (App::ExpandedImageClassification, Variant::Small) => 1.2,
            (App::ExpandedImageClassification, Variant::Medium) => 3.0,
            (App::ExpandedImageClassification, Variant::Large) => 6.0,
            // LLM sizes stand for ~7B / ~13B / ~30B parameter models.
            (App::LlmService, Variant::Small) => 1.0,
            (App::LlmService, Variant::Medium) => 2.0,
            (App::LlmService, Variant::Large) => 4.0,
            (_, Variant::Small) => 1.0,
            (_, Variant::Medium) => 2.5,
            (_, Variant::Large) => 5.0,
        }
    }

    /// The variant scale factor applied to component compute cost. Compute
    /// grows faster than memory with variant size (larger batches *and*
    /// higher resolutions), which is what pushes the paper's medium and
    /// heavy workloads into the baseline-saturating regimes of Figures 9
    /// and 10.
    pub fn work_scale(self, variant: Variant) -> f64 {
        match (self, variant) {
            (App::ExpandedImageClassification, Variant::Small) => 1.2,
            (App::LlmService, Variant::Medium) => 2.5,
            (App::LlmService, Variant::Large) => 6.0,
            (_, Variant::Small) => 1.0,
            (_, Variant::Medium) => 4.0,
            (_, Variant::Large) => 8.0,
        }
    }

    /// Minimum GPCs a *monolithic* deployment of this app-variant needs to
    /// sustain its SLO at the controller's target load. This reproduces the
    /// compute-bound rows of Table 5: `3g.40gb` and `4g.40gb` have the same
    /// 40 GB of memory, so the paper's "medium expanded image
    /// classification needs ≥ 4g.40gb" can only come from the compute
    /// requirement of its five-model workflow.
    pub fn min_gpcs_mono(self, variant: Variant) -> u32 {
        match (self, variant) {
            (App::ExpandedImageClassification, Variant::Medium) => 4,
            _ => 1,
        }
    }

    /// True for the app-variant the paper excludes from the study: the
    /// large expanded image classification cannot run on any slice of the
    /// default partition (its monolithic footprint exceeds `4g.40gb`), so
    /// Table 5 lists it as NULL.
    pub fn excluded_from_study(self, variant: Variant) -> bool {
        self == App::ExpandedImageClassification && variant == Variant::Large
    }

    /// Builds the FFS DAG of this application at the given variant.
    pub fn build_dag(self, variant: Variant) -> FfsDag {
        let scale = self.mem_scale(variant);
        let wscale = self.work_scale(variant);
        let mut dag = FfsDag::new(format!("{}_{}", self.name(), variant.name()));
        match self {
            App::ExpandedImageClassification => {
                use ComponentKind::*;
                let deblur = dag
                    .register(Deblur.component(scale, wscale), &[])
                    .expect("valid registration");
                let sr = dag
                    .register(SuperResolution.component(scale, wscale), &[deblur])
                    .expect("valid registration");
                // The "else: pass" branch: background removal reads either
                // the super-resolved image or the deblurred original.
                let bgrm = dag
                    .register(BackgroundRemoval.component(scale, wscale), &[sr, deblur])
                    .expect("valid registration");
                let seg = dag
                    .register(Segmentation.component(scale, wscale), &[bgrm])
                    .expect("valid registration");
                let _cls = dag
                    .register(Classification.component(scale, wscale), &[seg])
                    .expect("valid registration");
            }
            _ => {
                let mut prev: Option<NodeId> = None;
                for kind in self.components() {
                    let inputs: Vec<NodeId> = prev.into_iter().collect();
                    prev = Some(
                        dag.register(kind.component(scale, wscale), &inputs)
                            .expect("valid registration"),
                    );
                }
            }
        }
        debug_assert!(dag.validate().is_ok());
        dag
    }
}

impl Variant {
    /// All variants, small first.
    pub const ALL: [Variant; 3] = [Variant::Small, Variant::Medium, Variant::Large];

    /// Short name.
    pub const fn name(self) -> &'static str {
        match self {
            Variant::Small => "small",
            Variant::Medium => "medium",
            Variant::Large => "large",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_apps_are_chains() {
        for app in [
            App::ImageClassification,
            App::DepthRecognition,
            App::BackgroundElimination,
        ] {
            let dag = app.build_dag(Variant::Small);
            assert_eq!(dag.len(), 3);
            assert_eq!(dag.sources().len(), 1);
            assert_eq!(dag.sinks().len(), 1);
            assert_eq!(dag.edges().len(), 2);
        }
    }

    #[test]
    fn expanded_app_is_branched() {
        let dag = App::ExpandedImageClassification.build_dag(Variant::Medium);
        assert_eq!(dag.len(), 5);
        // The skip edge makes 5 edges instead of 4.
        assert_eq!(dag.edges().len(), 5);
        assert_eq!(dag.sinks().len(), 1);
    }

    #[test]
    fn total_memory_bands_match_table5() {
        // Sequential apps: small <= 10 GB, medium in (10, 20], large in (20, 40].
        for app in [
            App::ImageClassification,
            App::DepthRecognition,
            App::BackgroundElimination,
        ] {
            let small = app.build_dag(Variant::Small).total_mem_gb();
            let medium = app.build_dag(Variant::Medium).total_mem_gb();
            let large = app.build_dag(Variant::Large).total_mem_gb();
            assert!(small <= 10.0, "{} small {small}", app.name());
            assert!(
                medium > 10.0 && medium <= 20.0,
                "{} medium {medium}",
                app.name()
            );
            assert!(
                large > 20.0 && large <= 40.0,
                "{} large {large}",
                app.name()
            );
        }
        // Expanded app: small in (10, 20], medium in (20, 40], large > 40.
        let app = App::ExpandedImageClassification;
        let small = app.build_dag(Variant::Small).total_mem_gb();
        let medium = app.build_dag(Variant::Medium).total_mem_gb();
        let large = app.build_dag(Variant::Large).total_mem_gb();
        assert!(small > 10.0 && small <= 20.0, "small {small}");
        assert!(medium > 20.0 && medium <= 40.0, "medium {medium}");
        assert!(large > 40.0, "large {large}");
    }

    #[test]
    fn per_component_memory_allows_pipelines_per_table5() {
        // Medium variants: every component fits a 1g.10gb slice.
        for app in App::ALL {
            let dag = app.build_dag(Variant::Medium);
            for n in dag.nodes() {
                assert!(
                    dag.component(n).mem_gb <= 10.0,
                    "{} medium component {} = {}",
                    app.name(),
                    dag.component(n).name,
                    dag.component(n).mem_gb
                );
            }
        }
        // Large sequential variants: components in (10, 20]: pipeline needs 2g.
        for app in [
            App::ImageClassification,
            App::DepthRecognition,
            App::BackgroundElimination,
        ] {
            let dag = app.build_dag(Variant::Large);
            let max = dag
                .nodes()
                .map(|n| dag.component(n).mem_gb)
                .fold(0.0, f64::max);
            assert!(max > 10.0 && max <= 20.0, "{} large max {max}", app.name());
        }
    }

    #[test]
    fn exclusion_flag_matches_paper() {
        assert!(App::ExpandedImageClassification.excluded_from_study(Variant::Large));
        assert!(!App::ExpandedImageClassification.excluded_from_study(Variant::Medium));
        assert!(!App::ImageClassification.excluded_from_study(Variant::Large));
    }

    #[test]
    fn names_and_indices() {
        assert_eq!(App::ImageClassification.index(), 0);
        assert_eq!(App::ExpandedImageClassification.index(), 3);
        let mut names: Vec<&str> = App::ALL.iter().map(|a| a.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
