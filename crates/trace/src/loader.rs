//! Loading real Azure Functions traces.
//!
//! The Azure Functions 2019 dataset (Shahrad et al., ATC'20) ships CSV
//! files with one row per function and one column per minute of the day:
//!
//! ```text
//! HashOwner,HashApp,HashFunction,Trigger,1,2,3,...,1440
//! a13e...,f2b1...,9c8d...,http,0,3,1,...,7
//! ```
//!
//! This loader parses that format and converts per-minute invocation counts
//! into an [`Invocation`] stream: counts are spread uniformly at random
//! within their minute (the dataset does not preserve sub-minute timing),
//! and rows are mapped round-robin onto the paper's applications so the
//! trace can drive the same catalog. The synthetic generator in
//! [`crate::azure`] remains the default; this loader exists so the
//! experiments can be re-driven with the real dataset when available.

use std::fmt;

use ffs_profile::App;
use ffs_sim::{SimDuration, SimRng, SimTime};

use crate::azure::Trace;
use crate::workload::Invocation;

/// Errors from trace parsing.
#[derive(Clone, Debug, PartialEq)]
pub enum LoadError {
    /// The CSV has no header line.
    MissingHeader,
    /// The header has fewer than five columns (no minute columns).
    TooFewColumns,
    /// A data row has a non-numeric invocation count.
    BadCount {
        /// 1-based data-row number.
        row: usize,
        /// Column index within the minute columns.
        minute: usize,
    },
    /// The file has a header but no data rows.
    NoRows,
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::MissingHeader => write!(f, "missing CSV header"),
            LoadError::TooFewColumns => write!(f, "header has no minute columns"),
            LoadError::BadCount { row, minute } => {
                write!(
                    f,
                    "non-numeric invocation count at row {row}, minute {minute}"
                )
            }
            LoadError::NoRows => write!(f, "no data rows"),
        }
    }
}

impl std::error::Error for LoadError {}

/// One parsed function row: identity plus per-minute invocation counts.
#[derive(Clone, Debug, PartialEq)]
pub struct FunctionRow {
    /// `HashOwner` column.
    pub owner: String,
    /// `HashApp` column.
    pub app: String,
    /// `HashFunction` column.
    pub function: String,
    /// `Trigger` column.
    pub trigger: String,
    /// Invocations per minute.
    pub per_minute: Vec<u32>,
}

impl FunctionRow {
    /// Total invocations over the row.
    pub fn total(&self) -> u64 {
        self.per_minute.iter().map(|&c| u64::from(c)).sum()
    }
}

/// Parses the Azure CSV format from a string.
pub fn parse_csv(content: &str) -> Result<Vec<FunctionRow>, LoadError> {
    let mut lines = content.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or(LoadError::MissingHeader)?;
    let header_cols = header.split(',').count();
    if header_cols < 5 {
        return Err(LoadError::TooFewColumns);
    }
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let mut cols = line.split(',');
        let owner = cols.next().unwrap_or_default().to_string();
        let app = cols.next().unwrap_or_default().to_string();
        let function = cols.next().unwrap_or_default().to_string();
        let trigger = cols.next().unwrap_or_default().to_string();
        let mut per_minute = Vec::new();
        for (m, c) in cols.enumerate() {
            let count: u32 = c.trim().parse().map_err(|_| LoadError::BadCount {
                row: i + 1,
                minute: m,
            })?;
            per_minute.push(count);
        }
        rows.push(FunctionRow {
            owner,
            app,
            function,
            trigger,
            per_minute,
        });
    }
    if rows.is_empty() {
        return Err(LoadError::NoRows);
    }
    Ok(rows)
}

/// Converts parsed rows into an invocation trace.
///
/// Rows are assigned round-robin to `apps`; per-minute counts are placed
/// uniformly at random within their minute (seeded, deterministic). The
/// result is truncated/padded to `minutes` minutes.
pub fn to_trace(rows: &[FunctionRow], apps: &[App], minutes: usize, seed: u64) -> Trace {
    let root = SimRng::seed_from_u64(seed);
    let mut invocations: Vec<Invocation> = Vec::new();
    for (ri, row) in rows.iter().enumerate() {
        let app = apps[ri % apps.len()];
        let mut rng = root.split(ri as u64);
        for (m, &count) in row.per_minute.iter().take(minutes).enumerate() {
            for _ in 0..count {
                let offset = rng.range_f64(0.0, 60.0);
                invocations.push(Invocation {
                    id: 0,
                    app,
                    arrival: SimTime::from_secs_f64(m as f64 * 60.0 + offset),
                    tenant: app.index() as u32,
                });
            }
        }
    }
    invocations.sort_by_key(|i| (i.arrival, i.app.index()));
    for (i, inv) in invocations.iter_mut().enumerate() {
        inv.id = i as u64;
    }
    Trace {
        invocations,
        duration: SimDuration::from_secs(minutes as u64 * 60),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
HashOwner,HashApp,HashFunction,Trigger,1,2,3
o1,a1,f1,http,2,0,1
o2,a2,f2,timer,0,3,0
";

    #[test]
    fn parses_the_azure_format() {
        let rows = parse_csv(SAMPLE).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].function, "f1");
        assert_eq!(rows[0].per_minute, vec![2, 0, 1]);
        assert_eq!(rows[0].total(), 3);
        assert_eq!(rows[1].trigger, "timer");
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(parse_csv(""), Err(LoadError::MissingHeader));
        assert_eq!(parse_csv("a,b,c\n"), Err(LoadError::TooFewColumns));
        assert!(matches!(
            parse_csv("HashOwner,HashApp,HashFunction,Trigger,1\no,a,f,t,xyz\n"),
            Err(LoadError::BadCount { row: 1, minute: 0 })
        ));
        assert_eq!(
            parse_csv("HashOwner,HashApp,HashFunction,Trigger,1\n"),
            Err(LoadError::NoRows)
        );
    }

    #[test]
    fn trace_conversion_preserves_counts_and_timing() {
        let rows = parse_csv(SAMPLE).unwrap();
        let apps = [App::ImageClassification, App::DepthRecognition];
        let trace = to_trace(&rows, &apps, 3, 7);
        assert_eq!(trace.len(), 6); // 3 + 3 invocations
        assert_eq!(trace.duration, SimDuration::from_secs(180));
        // Row 0 -> app 0, row 1 -> app 1.
        assert_eq!(trace.count_for(App::ImageClassification), 3);
        assert_eq!(trace.count_for(App::DepthRecognition), 3);
        // Minute placement respected: row 1's 3 invocations are in minute 2.
        let depth: Vec<f64> = trace
            .invocations
            .iter()
            .filter(|i| i.app == App::DepthRecognition)
            .map(|i| i.arrival.as_secs_f64())
            .collect();
        assert!(
            depth.iter().all(|&t| (60.0..120.0).contains(&t)),
            "{depth:?}"
        );
        // Deterministic.
        let again = to_trace(&rows, &apps, 3, 7);
        assert_eq!(trace.invocations, again.invocations);
    }

    #[test]
    fn truncation_by_minutes() {
        let rows = parse_csv(SAMPLE).unwrap();
        let trace = to_trace(&rows, &[App::ImageClassification], 1, 1);
        assert_eq!(trace.len(), 2, "only minute 1 kept");
    }
}
