//! Synthetic Azure-Functions-style invocation trace generation.
//!
//! Shahrad et al. (ATC'20) characterise production serverless traffic as
//! highly bursty (most functions see long idle periods punctuated by
//! bursts) with slow daily modulation. We model each application's arrival
//! process as a Markov-modulated Poisson process (an on/off burst state
//! multiplying the base rate) under a sinusoidal diurnal envelope, sampled
//! by thinning. The result is deterministic per seed.

use serde::{Deserialize, Serialize};

use ffs_profile::App;
use ffs_sim::{SimDuration, SimRng, SimTime};

use crate::workload::{Invocation, WorkloadClass};

/// Configuration of the synthetic trace generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AzureTraceConfig {
    /// Applications to generate arrivals for.
    pub apps: Vec<App>,
    /// Trace length in seconds.
    pub duration_secs: f64,
    /// Mean request rate per app (req/s), averaged over burst states.
    pub mean_rps_per_app: f64,
    /// Rate multiplier while a burst is active.
    pub burst_multiplier: f64,
    /// Mean length of a burst (seconds).
    pub burst_on_secs: f64,
    /// Mean gap between bursts (seconds).
    pub burst_off_secs: f64,
    /// Amplitude of the diurnal sinusoid, `0.0..1.0`.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal sinusoid (seconds). Production traces have a
    /// 24 h period; experiments compress it to the trace length.
    pub diurnal_period_secs: f64,
    /// RNG seed.
    pub seed: u64,
}

impl AzureTraceConfig {
    /// The configuration used by the paper-reproduction experiments for a
    /// workload class: paper rates, strong bursts, one diurnal cycle per
    /// trace.
    pub fn for_workload(class: WorkloadClass, duration_secs: f64, seed: u64) -> Self {
        AzureTraceConfig {
            apps: class.apps(),
            duration_secs,
            mean_rps_per_app: class.mean_rps_per_app(),
            burst_multiplier: 2.5,
            burst_on_secs: duration_secs / 10.0,
            burst_off_secs: duration_secs / 5.0,
            diurnal_amplitude: 0.4,
            diurnal_period_secs: duration_secs,
            seed,
        }
    }

    /// A steady (non-bursty) Poisson variant, useful for capacity
    /// calibration and tests.
    pub fn steady(apps: Vec<App>, duration_secs: f64, rps: f64, seed: u64) -> Self {
        AzureTraceConfig {
            apps,
            duration_secs,
            mean_rps_per_app: rps,
            burst_multiplier: 1.0,
            burst_on_secs: duration_secs,
            burst_off_secs: duration_secs,
            diurnal_amplitude: 0.0,
            diurnal_period_secs: duration_secs,
            seed,
        }
    }

    /// Generates the trace.
    pub fn generate(&self) -> Trace {
        assert!(self.duration_secs > 0.0);
        assert!(self.mean_rps_per_app >= 0.0);
        assert!(self.burst_multiplier >= 1.0);
        assert!((0.0..1.0).contains(&self.diurnal_amplitude));
        let root = SimRng::seed_from_u64(self.seed);
        let mut invocations: Vec<Invocation> = Vec::new();
        for (k, &app) in self.apps.iter().enumerate() {
            let mut rng = root.split(k as u64 + 1);
            self.generate_app(app, &mut rng, &mut invocations);
        }
        invocations.sort_by_key(|i| (i.arrival, i.app.index()));
        for (i, inv) in invocations.iter_mut().enumerate() {
            inv.id = i as u64;
        }
        Trace {
            invocations,
            duration: SimDuration::from_secs_f64(self.duration_secs),
        }
    }

    /// The burst-state-dependent base rates: solves for on/off rates so the
    /// long-run mean is `mean_rps_per_app` given the duty cycle.
    fn rates(&self) -> (f64, f64) {
        let duty = self.burst_on_secs / (self.burst_on_secs + self.burst_off_secs);
        // mean = off_rate * (1 - duty) + on_rate * duty, on = mult * off.
        let off_rate = self.mean_rps_per_app / (1.0 - duty + self.burst_multiplier * duty);
        (off_rate, off_rate * self.burst_multiplier)
    }

    fn generate_app(&self, app: App, rng: &mut SimRng, out: &mut Vec<Invocation>) {
        let (off_rate, on_rate) = self.rates();
        let lambda_max = on_rate * (1.0 + self.diurnal_amplitude);
        if lambda_max <= 0.0 {
            return;
        }
        // Burst state process, pre-sampled as alternating off/on intervals.
        let mut burst_edges: Vec<(f64, bool)> = Vec::new(); // (start, is_on)
        let mut t = 0.0;
        let mut on = false;
        // Randomise the initial phase so apps do not all start "off".
        if rng.chance(self.burst_on_secs / (self.burst_on_secs + self.burst_off_secs)) {
            on = true;
        }
        burst_edges.push((0.0, on));
        while t < self.duration_secs {
            let mean = if on {
                self.burst_on_secs
            } else {
                self.burst_off_secs
            };
            t += rng.exp(mean);
            on = !on;
            burst_edges.push((t, on));
        }
        let state_at = |time: f64| -> bool {
            match burst_edges.binary_search_by(|&(s, _)| s.partial_cmp(&time).expect("finite time"))
            {
                Ok(i) => burst_edges[i].1,
                Err(0) => burst_edges[0].1,
                Err(i) => burst_edges[i - 1].1,
            }
        };
        // Thinning: candidates at lambda_max, accepted at lambda(t)/lambda_max.
        let mut time = 0.0;
        loop {
            time += rng.exp(1.0 / lambda_max);
            if time >= self.duration_secs {
                break;
            }
            let base = if state_at(time) { on_rate } else { off_rate };
            let diurnal = 1.0
                + self.diurnal_amplitude
                    * (2.0 * std::f64::consts::PI * time / self.diurnal_period_secs).sin();
            let lambda = base * diurnal;
            if rng.chance(lambda / lambda_max) {
                out.push(Invocation {
                    id: 0, // assigned after the global sort
                    app,
                    arrival: SimTime::from_secs_f64(time),
                    tenant: app.index() as u32,
                });
            }
        }
    }
}

/// A generated invocation trace, sorted by arrival time.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trace {
    /// The invocations, sorted by arrival, with dense ids.
    pub invocations: Vec<Invocation>,
    /// The trace length.
    pub duration: SimDuration,
}

impl Trace {
    /// Number of invocations.
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// Mean arrival rate over the whole trace (req/s), across all apps.
    pub fn mean_rate(&self) -> f64 {
        self.invocations.len() as f64 / self.duration.as_secs_f64()
    }

    /// Inter-arrival coefficient of variation for one app (burstiness
    /// measure; 1.0 for Poisson, > 1 for bursty traffic).
    ///
    /// One streaming pass: gaps feed a Welford accumulator as they are
    /// encountered, so the scan allocates nothing and stays linear even on
    /// the million-function scale traces.
    pub fn interarrival_cv(&self, app: App) -> f64 {
        let mut gaps = ffs_sim::OnlineStats::new();
        let mut count = 0usize;
        let mut prev = 0.0;
        for i in self.invocations.iter().filter(|i| i.app == app) {
            let t = i.arrival.as_secs_f64();
            if count > 0 {
                gaps.push(t - prev);
            }
            prev = t;
            count += 1;
        }
        if count < 3 {
            return 0.0;
        }
        gaps.cv()
    }

    /// Invocation count per app.
    pub fn count_for(&self, app: App) -> usize {
        self.invocations.iter().filter(|i| i.app == app).count()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = AzureTraceConfig::for_workload(WorkloadClass::Medium, 120.0, 7);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a.invocations, b.invocations);
        let mut cfg2 = cfg.clone();
        cfg2.seed = 8;
        let c = cfg2.generate();
        assert_ne!(a.invocations, c.invocations);
    }

    #[test]
    fn steady_trace_hits_target_rate() {
        let cfg = AzureTraceConfig::steady(vec![App::ImageClassification], 500.0, 10.0, 3);
        let trace = cfg.generate();
        let rate = trace.mean_rate();
        assert!((rate - 10.0).abs() < 1.0, "rate {rate}");
    }

    #[test]
    fn steady_trace_is_poisson_like() {
        let cfg = AzureTraceConfig::steady(vec![App::ImageClassification], 500.0, 10.0, 3);
        let trace = cfg.generate();
        let cv = trace.interarrival_cv(App::ImageClassification);
        assert!(
            (cv - 1.0).abs() < 0.15,
            "Poisson CV should be near 1, got {cv}"
        );
    }

    #[test]
    fn bursty_trace_is_overdispersed() {
        let cfg = AzureTraceConfig::for_workload(WorkloadClass::Medium, 600.0, 11);
        let trace = cfg.generate();
        for app in WorkloadClass::Medium.apps() {
            let cv = trace.interarrival_cv(app);
            assert!(cv > 1.05, "{} CV {cv} should exceed Poisson", app.name());
        }
    }

    #[test]
    fn bursty_trace_mean_rate_matches_config() {
        let cfg = AzureTraceConfig::for_workload(WorkloadClass::Light, 1200.0, 5);
        let trace = cfg.generate();
        let per_app = trace.mean_rate() / cfg.apps.len() as f64;
        let target = cfg.mean_rps_per_app;
        assert!(
            (per_app - target).abs() / target < 0.25,
            "per-app rate {per_app} vs target {target}"
        );
    }

    #[test]
    fn invocations_sorted_with_dense_ids() {
        let cfg = AzureTraceConfig::for_workload(WorkloadClass::Heavy, 60.0, 2);
        let trace = cfg.generate();
        for (i, w) in trace.invocations.windows(2).enumerate() {
            assert!(w[0].arrival <= w[1].arrival, "unsorted at {i}");
        }
        for (i, inv) in trace.invocations.iter().enumerate() {
            assert_eq!(inv.id, i as u64);
        }
    }

    #[test]
    fn all_workload_apps_present() {
        let cfg = AzureTraceConfig::for_workload(WorkloadClass::Medium, 300.0, 9);
        let trace = cfg.generate();
        for app in WorkloadClass::Medium.apps() {
            assert!(trace.count_for(app) > 0, "{} missing", app.name());
        }
    }
}
