//! Trace characterisation: the statistics the Azure-trace substitution must
//! match (DESIGN.md) and the numbers experiment binaries print.
//!
//! Both entry points make exactly one pass over the invocation list. The
//! scale experiments characterise traces with 10⁵–10⁶ functions'
//! invocations; the earlier filter-per-app implementation re-scanned the
//! whole trace once per app, which goes quadratic in the number of
//! distinct streams.

use ffs_profile::App;
use ffs_sim::OnlineStats;

use crate::azure::Trace;

/// Per-app trace characteristics.
#[derive(Clone, Debug, PartialEq)]
pub struct AppTraceStats {
    /// The app.
    pub app: App,
    /// Invocation count.
    pub count: usize,
    /// Mean rate over the trace (req/s).
    pub mean_rps: f64,
    /// Inter-arrival coefficient of variation (1 = Poisson, >1 bursty).
    pub interarrival_cv: f64,
    /// Peak-to-mean ratio of per-second arrival counts.
    pub peak_to_mean: f64,
}

/// Streaming accumulator for one app's arrival process.
struct AppAccum {
    count: usize,
    prev: f64,
    gaps: OnlineStats,
    /// Per-second arrival bins (last bin absorbs the tail).
    bins: Vec<u32>,
}

impl AppAccum {
    fn new(duration: f64) -> Self {
        AppAccum {
            count: 0,
            prev: 0.0,
            gaps: OnlineStats::new(),
            bins: vec![0u32; (duration.ceil() as usize).max(1)],
        }
    }

    fn push(&mut self, t: f64) {
        if self.count > 0 {
            self.gaps.push(t - self.prev);
        }
        self.prev = t;
        self.count += 1;
        let b = (t as usize).min(self.bins.len() - 1);
        self.bins[b] += 1;
    }

    fn finish(self, app: App, duration: f64) -> AppTraceStats {
        let mean_rps = self.count as f64 / duration;
        // Fewer than two gaps (three arrivals) has no meaningful CV.
        let interarrival_cv = if self.gaps.count() >= 2 {
            self.gaps.cv()
        } else {
            0.0
        };
        let peak = self.bins.iter().copied().max().unwrap_or(0) as f64;
        let peak_to_mean = if mean_rps > 0.0 { peak / mean_rps } else { 0.0 };
        AppTraceStats {
            app,
            count: self.count,
            mean_rps,
            interarrival_cv,
            peak_to_mean,
        }
    }
}

/// Characterises one app's arrival stream in a single trace pass.
pub fn app_stats(trace: &Trace, app: App) -> AppTraceStats {
    let duration = trace.duration.as_secs_f64().max(1e-9);
    let mut acc = AppAccum::new(duration);
    for i in trace.invocations.iter().filter(|i| i.app == app) {
        acc.push(i.arrival.as_secs_f64());
    }
    acc.finish(app, duration)
}

/// Characterises every app present in the trace, in app-index order, with
/// one pass over the trace regardless of how many apps it carries.
pub fn all_stats(trace: &Trace) -> Vec<AppTraceStats> {
    let duration = trace.duration.as_secs_f64().max(1e-9);
    let mut accums: Vec<Option<AppAccum>> = (0..App::ALL.len()).map(|_| None).collect();
    for i in &trace.invocations {
        accums[i.app.index()]
            .get_or_insert_with(|| AppAccum::new(duration))
            .push(i.arrival.as_secs_f64());
    }
    App::ALL
        .iter()
        .zip(accums)
        .filter_map(|(&app, acc)| acc.map(|a| a.finish(app, duration)))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::azure::AzureTraceConfig;
    use crate::workload::WorkloadClass;

    #[test]
    fn bursty_trace_statistics() {
        let trace = AzureTraceConfig::for_workload(WorkloadClass::Medium, 300.0, 5).generate();
        let stats = all_stats(&trace);
        assert_eq!(stats.len(), 4);
        for s in &stats {
            assert!(s.count > 0);
            assert!(s.interarrival_cv > 1.0, "{:?}", s);
            assert!(s.peak_to_mean > 1.5, "{:?}", s);
            // Rate near the configured per-app mean.
            let target = WorkloadClass::Medium.mean_rps_per_app();
            assert!(
                (s.mean_rps - target).abs() / target < 0.4,
                "{:?} vs target {target}",
                s
            );
        }
    }

    #[test]
    fn steady_trace_statistics() {
        let trace =
            AzureTraceConfig::steady(vec![App::ImageClassification], 300.0, 8.0, 2).generate();
        let s = app_stats(&trace, App::ImageClassification);
        assert!((s.interarrival_cv - 1.0).abs() < 0.2, "{s:?}");
        assert!((s.mean_rps - 8.0).abs() < 1.0);
    }

    #[test]
    fn empty_app_is_benign() {
        let trace =
            AzureTraceConfig::steady(vec![App::ImageClassification], 10.0, 1.0, 2).generate();
        let s = app_stats(&trace, App::DepthRecognition);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_rps, 0.0);
        assert_eq!(s.peak_to_mean, 0.0);
    }

    #[test]
    fn all_stats_matches_per_app_scan() {
        let trace = AzureTraceConfig::for_workload(WorkloadClass::Medium, 120.0, 17).generate();
        for s in all_stats(&trace) {
            // The fused pass must be bit-equal to the per-app scan (same
            // pushes in the same order).
            assert_eq!(s, app_stats(&trace, s.app));
        }
    }
}
