//! Trace characterisation: the statistics the Azure-trace substitution must
//! match (DESIGN.md) and the numbers experiment binaries print.

use ffs_profile::App;
use ffs_sim::stats::coefficient_of_variation;

use crate::azure::Trace;

/// Per-app trace characteristics.
#[derive(Clone, Debug, PartialEq)]
pub struct AppTraceStats {
    /// The app.
    pub app: App,
    /// Invocation count.
    pub count: usize,
    /// Mean rate over the trace (req/s).
    pub mean_rps: f64,
    /// Inter-arrival coefficient of variation (1 = Poisson, >1 bursty).
    pub interarrival_cv: f64,
    /// Peak-to-mean ratio of per-second arrival counts.
    pub peak_to_mean: f64,
}

/// Characterises one app's arrival stream.
pub fn app_stats(trace: &Trace, app: App) -> AppTraceStats {
    let times: Vec<f64> = trace
        .invocations
        .iter()
        .filter(|i| i.app == app)
        .map(|i| i.arrival.as_secs_f64())
        .collect();
    let duration = trace.duration.as_secs_f64().max(1e-9);
    let count = times.len();
    let mean_rps = count as f64 / duration;
    let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    let interarrival_cv = if gaps.len() >= 2 {
        coefficient_of_variation(&gaps)
    } else {
        0.0
    };
    // Per-second bins.
    let bins = duration.ceil() as usize;
    let mut counts = vec![0u32; bins.max(1)];
    for &t in &times {
        let b = (t as usize).min(counts.len() - 1);
        counts[b] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(0) as f64;
    let peak_to_mean = if mean_rps > 0.0 { peak / mean_rps } else { 0.0 };
    AppTraceStats {
        app,
        count,
        mean_rps,
        interarrival_cv,
        peak_to_mean,
    }
}

/// Characterises every app present in the trace.
pub fn all_stats(trace: &Trace) -> Vec<AppTraceStats> {
    let mut apps: Vec<App> = trace.invocations.iter().map(|i| i.app).collect();
    apps.sort_by_key(|a| a.index());
    apps.dedup();
    apps.into_iter().map(|a| app_stats(trace, a)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::azure::AzureTraceConfig;
    use crate::workload::WorkloadClass;

    #[test]
    fn bursty_trace_statistics() {
        let trace = AzureTraceConfig::for_workload(WorkloadClass::Medium, 300.0, 5).generate();
        let stats = all_stats(&trace);
        assert_eq!(stats.len(), 4);
        for s in &stats {
            assert!(s.count > 0);
            assert!(s.interarrival_cv > 1.0, "{:?}", s);
            assert!(s.peak_to_mean > 1.5, "{:?}", s);
            // Rate near the configured per-app mean.
            let target = WorkloadClass::Medium.mean_rps_per_app();
            assert!(
                (s.mean_rps - target).abs() / target < 0.4,
                "{:?} vs target {target}",
                s
            );
        }
    }

    #[test]
    fn steady_trace_statistics() {
        let trace =
            AzureTraceConfig::steady(vec![App::ImageClassification], 300.0, 8.0, 2).generate();
        let s = app_stats(&trace, App::ImageClassification);
        assert!((s.interarrival_cv - 1.0).abs() < 0.2, "{s:?}");
        assert!((s.mean_rps - 8.0).abs() < 1.0);
    }

    #[test]
    fn empty_app_is_benign() {
        let trace =
            AzureTraceConfig::steady(vec![App::ImageClassification], 10.0, 1.0, 2).generate();
        let s = app_stats(&trace, App::DepthRecognition);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_rps, 0.0);
        assert_eq!(s.peak_to_mean, 0.0);
    }
}
