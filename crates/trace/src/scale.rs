//! Azure-scale multi-tenant trace synthesis, streamed per shard cell.
//!
//! The paper's testbed traces (a few apps, tens of req/s) fit comfortably
//! in one allocation. The scale experiments simulate 10⁴–10⁶ *tenant
//! functions* with heavy-tailed per-tenant rates (Shahrad et al. observe
//! that a small fraction of functions produces most invocations), against
//! fleets of thousands of GPUs split into shard cells. Materializing such
//! a trace as one `Vec` before slicing it per cell would dominate peak
//! memory, so this module generates *per cell*: [`ScaleTraceConfig::cell_trace`]
//! synthesizes only the functions homed on one cell, and the per-function
//! arrival streams are derived by [`ffs_sim::SimRng::split`] (a pure
//! function of the root seed and the function index) so the union of all
//! cells' invocations is independent of how many cells the fleet is split
//! into.
//!
//! Each tenant function is mapped onto one of the profiled [`App`]s
//! round-robin — the engine's catalog models the *execution* side, while
//! the tenant dimension shapes the *arrival* side (rates, burstiness,
//! cell placement).

use ffs_profile::App;
use ffs_sim::{SimDuration, SimRng, SimTime};

use crate::azure::Trace;
use crate::workload::{Invocation, WorkloadClass};

/// A shard cell's slice of a trace: locally dense invocation ids plus the
/// mapping back to trace-global ids, so per-cell runs can be merged into
/// one fleet-wide report.
#[derive(Clone, Debug)]
pub struct CellTrace {
    /// The cell-local trace (ids dense from 0, sorted by arrival).
    pub trace: Trace,
    /// `global_ids[local_id]` = the invocation's trace-global id.
    pub global_ids: Vec<u64>,
}

/// Splits an existing (testbed-scale) trace into per-cell traces, homing
/// each invocation on `app.index() % cells`. Global ids are the original
/// trace ids; every cell inherits the full trace duration so all cells
/// share one time horizon.
pub fn partition_trace(trace: &Trace, cells: usize) -> Vec<CellTrace> {
    assert!(cells >= 1, "need at least one cell");
    let mut out: Vec<CellTrace> = (0..cells)
        .map(|_| CellTrace {
            trace: Trace {
                invocations: Vec::new(),
                duration: trace.duration,
            },
            global_ids: Vec::new(),
        })
        .collect();
    for inv in &trace.invocations {
        let cell = &mut out[inv.app.index() % cells];
        cell.trace.invocations.push(Invocation {
            id: cell.global_ids.len() as u64,
            app: inv.app,
            arrival: inv.arrival,
            tenant: inv.tenant,
        });
        cell.global_ids.push(inv.id);
    }
    out
}

/// Configuration of the multi-tenant scale synthesizer.
#[derive(Clone, Debug)]
pub struct ScaleTraceConfig {
    /// Number of tenant functions (10⁴–10⁶ for the scale experiments).
    pub functions: usize,
    /// Apps the tenant functions execute as (round-robin by function).
    pub apps: Vec<App>,
    /// Trace length in seconds.
    pub duration_secs: f64,
    /// Aggregate arrival rate across all functions (req/s).
    pub total_rps: f64,
    /// Zipf-like tail exponent of the per-function rate distribution:
    /// function `f` gets weight `(1 + f)^-alpha`. Around 1.1 reproduces
    /// the "few hot tenants dominate" shape of production traces.
    pub alpha: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ScaleTraceConfig {
    /// The scale-experiment default: medium-workload apps and a mildly
    /// heavy tail.
    pub fn new(functions: usize, duration_secs: f64, total_rps: f64, seed: u64) -> Self {
        ScaleTraceConfig {
            functions,
            apps: WorkloadClass::Medium.apps(),
            duration_secs,
            total_rps,
            alpha: 1.1,
            seed,
        }
    }

    /// The trace-global id of occurrence `k` of function `f`: the function
    /// index in the high 32 bits, the occurrence in the low 32. Stable
    /// across any cell split, unlike a dense post-sort numbering, which
    /// is why merged reports can use it directly.
    #[inline]
    pub fn global_id(f: usize, k: u32) -> u64 {
        ((f as u64) << 32) | k as u64
    }

    /// The home cell of function `f` in a `cells`-way split.
    #[inline]
    pub fn home_cell(f: usize, cells: usize) -> usize {
        f % cells
    }

    /// Sum of the (unnormalized) per-function weights.
    fn total_weight(&self) -> f64 {
        (0..self.functions)
            .map(|f| (1.0 + f as f64).powf(-self.alpha))
            .sum()
    }

    /// Mean arrival rate (req/s) of function `f`.
    pub fn rate_of(&self, f: usize) -> f64 {
        let w = (1.0 + f as f64).powf(-self.alpha);
        self.total_rps * w / self.total_weight()
    }

    /// Synthesizes cell `cell` of a `cells`-way split: Poisson arrivals for
    /// exactly the functions homed there, sorted by `(arrival, global id)`
    /// with dense local ids. Generation cost and peak memory scale with the
    /// cell's share of the fleet, not the whole trace.
    pub fn cell_trace(&self, cell: usize, cells: usize) -> CellTrace {
        assert!(cells >= 1, "need at least one cell");
        assert!(cell < cells, "cell {cell} out of range for {cells} cells");
        assert!(!self.apps.is_empty(), "need at least one app");
        assert!(self.duration_secs > 0.0);
        assert!(self.total_rps >= 0.0);
        let root = SimRng::seed_from_u64(self.seed);
        let total_w = self.total_weight();
        // (arrival, global id, app); the global id doubles as the
        // deterministic tie-break because it encodes (function, occurrence).
        let mut raw: Vec<(SimTime, u64, App)> = Vec::new();
        for f in (cell..self.functions).step_by(cells) {
            let w = (1.0 + f as f64).powf(-self.alpha);
            let rate = self.total_rps * w / total_w;
            if rate <= 0.0 {
                continue;
            }
            // The stream depends only on (seed, f): cell membership moves
            // whole functions between cells without changing their arrivals.
            let mut rng = root.split(f as u64 + 1);
            let app = self.apps[f % self.apps.len()];
            let mut t = 0.0;
            let mut k: u32 = 0;
            loop {
                t += rng.exp(1.0 / rate);
                if t >= self.duration_secs {
                    break;
                }
                raw.push((SimTime::from_secs_f64(t), Self::global_id(f, k), app));
                k = match k.checked_add(1) {
                    Some(v) => v,
                    None => break, // 2^32 occurrences of one function: stop
                };
            }
        }
        raw.sort_unstable_by_key(|&(arrival, global, _)| (arrival, global));
        let mut invocations = Vec::with_capacity(raw.len());
        let mut global_ids = Vec::with_capacity(raw.len());
        for (local, &(arrival, global, app)) in raw.iter().enumerate() {
            invocations.push(Invocation {
                id: local as u64,
                app,
                arrival,
                tenant: app.index() as u32,
            });
            global_ids.push(global);
        }
        CellTrace {
            trace: Trace {
                invocations,
                duration: SimDuration::from_secs_f64(self.duration_secs),
            },
            global_ids,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn cfg(functions: usize, seed: u64) -> ScaleTraceConfig {
        ScaleTraceConfig::new(functions, 60.0, 50.0, seed)
    }

    #[test]
    fn deterministic_per_seed() {
        let a = cfg(128, 7).cell_trace(0, 2);
        let b = cfg(128, 7).cell_trace(0, 2);
        assert_eq!(a.trace.invocations, b.trace.invocations);
        assert_eq!(a.global_ids, b.global_ids);
        let c = cfg(128, 8).cell_trace(0, 2);
        assert_ne!(a.trace.invocations, c.trace.invocations);
    }

    #[test]
    fn union_of_cells_is_independent_of_cell_count() {
        let c = cfg(64, 3);
        let mut single: Vec<(u64, SimTime)> = c
            .cell_trace(0, 1)
            .trace
            .invocations
            .iter()
            .zip(&c.cell_trace(0, 1).global_ids)
            .map(|(inv, &g)| (g, inv.arrival))
            .collect();
        for cells in [2usize, 4, 8] {
            let mut union: Vec<(u64, SimTime)> = Vec::new();
            for cell in 0..cells {
                let ct = c.cell_trace(cell, cells);
                union.extend(
                    ct.trace
                        .invocations
                        .iter()
                        .zip(&ct.global_ids)
                        .map(|(inv, &g)| (g, inv.arrival)),
                );
            }
            union.sort_unstable();
            single.sort_unstable();
            assert_eq!(single, union, "cells={cells}");
        }
    }

    #[test]
    fn cell_traces_are_sorted_with_dense_local_ids() {
        let ct = cfg(100, 5).cell_trace(1, 4);
        assert!(!ct.trace.invocations.is_empty());
        for w in ct.trace.invocations.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for (i, inv) in ct.trace.invocations.iter().enumerate() {
            assert_eq!(inv.id, i as u64);
        }
        assert_eq!(ct.global_ids.len(), ct.trace.invocations.len());
    }

    #[test]
    fn rates_are_heavy_tailed_and_sum_to_total() {
        let c = cfg(1000, 1);
        assert!(c.rate_of(0) > 10.0 * c.rate_of(500));
        let sum: f64 = (0..c.functions).map(|f| c.rate_of(f)).sum();
        assert!((sum - c.total_rps).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn aggregate_rate_roughly_matches_target() {
        let c = ScaleTraceConfig::new(256, 120.0, 40.0, 11);
        let total: usize = (0..4).map(|cell| c.cell_trace(cell, 4).trace.len()).sum();
        let rate = total as f64 / c.duration_secs;
        assert!((rate - 40.0).abs() / 40.0 < 0.15, "rate {rate}");
    }

    #[test]
    fn global_ids_encode_function_and_occurrence() {
        let ct = cfg(32, 2).cell_trace(1, 8);
        for &g in &ct.global_ids {
            let f = (g >> 32) as usize;
            assert_eq!(f % 8, 1, "function {f} homed on the wrong cell");
        }
    }

    #[test]
    fn partition_preserves_every_invocation() {
        let trace =
            crate::azure::AzureTraceConfig::for_workload(WorkloadClass::Medium, 60.0, 9).generate();
        let parts = partition_trace(&trace, 3);
        let total: usize = parts.iter().map(|p| p.trace.len()).sum();
        assert_eq!(total, trace.len());
        for p in &parts {
            assert_eq!(p.trace.duration, trace.duration);
            for (inv, &g) in p.trace.invocations.iter().zip(&p.global_ids) {
                let orig = &trace.invocations[g as usize];
                assert_eq!(orig.arrival, inv.arrival);
                assert_eq!(orig.app, inv.app);
            }
        }
    }
}
