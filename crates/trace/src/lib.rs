//! # ffs-trace — Azure-Functions-style invocation traces and workloads
//!
//! The paper drives its evaluation with invocation frequencies and
//! intervals from the Azure Functions production traces (Shahrad et al.,
//! ATC'20). Those traces are not redistributable here, so this crate
//! generates synthetic invocation streams that reproduce the published
//! first-order characteristics the evaluation depends on: heavy-tailed
//! per-function rates, strong burstiness (inter-arrival CV > 1, from an
//! on/off Markov-modulated Poisson process), and slow diurnal modulation.
//!
//! [`workload::WorkloadClass`] maps the paper's three workloads onto the
//! app variants (§6: "light, medium, and heavy, where each application is
//! in small, medium, and large size respectively") and their request
//! rates.
//!
//! ```
//! use ffs_trace::{AzureTraceConfig, WorkloadClass};
//!
//! let cfg = AzureTraceConfig::for_workload(WorkloadClass::Medium, 60.0, 42);
//! let trace = cfg.generate();
//! assert!(!trace.invocations.is_empty());
//! // Deterministic: same seed, same trace.
//! assert_eq!(trace.invocations.len(), cfg.generate().invocations.len());
//! ```

#![warn(clippy::unwrap_used)]

pub mod azure;
pub mod fairness;
pub mod loader;
pub mod scale;
pub mod stats;
pub mod workload;

pub use azure::{AzureTraceConfig, Trace};
pub use fairness::FairnessScenario;
pub use loader::{parse_csv, to_trace, FunctionRow, LoadError};
pub use scale::{partition_trace, CellTrace, ScaleTraceConfig};
pub use stats::{all_stats, app_stats, AppTraceStats};
pub use workload::{Invocation, WorkloadClass};
