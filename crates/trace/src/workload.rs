//! Workload classes and invocation records.

use serde::{Deserialize, Serialize};

use ffs_profile::{App, Variant};
use ffs_sim::SimTime;

/// The paper's three workloads (§6): each application runs in its small,
/// medium, or large variant respectively.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// All apps in their small variants.
    Light,
    /// All apps in their medium variants.
    Medium,
    /// All apps in their large variants.
    Heavy,
}

impl WorkloadClass {
    /// All classes.
    pub const ALL: [WorkloadClass; 3] = [
        WorkloadClass::Light,
        WorkloadClass::Medium,
        WorkloadClass::Heavy,
    ];

    /// Short name.
    pub const fn name(self) -> &'static str {
        match self {
            WorkloadClass::Light => "light",
            WorkloadClass::Medium => "medium",
            WorkloadClass::Heavy => "heavy",
        }
    }

    /// The application variant this workload uses.
    pub const fn variant(self) -> Variant {
        match self {
            WorkloadClass::Light => Variant::Small,
            WorkloadClass::Medium => Variant::Medium,
            WorkloadClass::Heavy => Variant::Large,
        }
    }

    /// Mean request rate per application (requests/second), calibrated so
    /// the paper's regimes reproduce on the 2-node x 8-GPU default fleet:
    /// light stays comfortably inside every system's capacity; medium
    /// saturates the baseline's usable slices during bursts; heavy
    /// overloads the baseline (which can only run large variants on
    /// `4g.40gb` slices) while FluidFaaS still finds capacity in fragments.
    pub const fn mean_rps_per_app(self) -> f64 {
        match self {
            WorkloadClass::Light => 14.0,
            WorkloadClass::Medium => 10.0,
            WorkloadClass::Heavy => 9.0,
        }
    }

    /// The applications participating in this workload. The large expanded
    /// image classification is excluded per Table 5 (NULL row).
    pub fn apps(self) -> Vec<App> {
        App::ALL
            .iter()
            .copied()
            .filter(|a| !a.excluded_from_study(self.variant()))
            .collect()
    }
}

/// One function invocation in a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Invocation {
    /// Unique request id within the trace.
    pub id: u64,
    /// Which application is invoked.
    pub app: App,
    /// Arrival time at the platform.
    pub arrival: SimTime,
    /// Owning tenant (billing/fairness entity). Synthetic generators
    /// default it to the application index; multi-tenant scenarios
    /// assign it explicitly. Absent in pre-tenant serialized traces,
    /// hence the serde default.
    #[serde(default)]
    pub tenant: u32,
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn workload_variant_mapping_matches_paper() {
        assert_eq!(WorkloadClass::Light.variant(), Variant::Small);
        assert_eq!(WorkloadClass::Medium.variant(), Variant::Medium);
        assert_eq!(WorkloadClass::Heavy.variant(), Variant::Large);
    }

    #[test]
    fn heavy_excludes_large_expanded_app() {
        let heavy = WorkloadClass::Heavy.apps();
        assert_eq!(heavy.len(), 3);
        assert!(!heavy.contains(&App::ExpandedImageClassification));
        assert_eq!(WorkloadClass::Light.apps().len(), 4);
        assert_eq!(WorkloadClass::Medium.apps().len(), 4);
    }

    #[test]
    fn rates_are_positive() {
        for w in WorkloadClass::ALL {
            assert!(w.mean_rps_per_app() > 0.0);
        }
    }
}
