//! Multi-tenant fairness scenarios: trace shapes where fleet-wide
//! averages hide what individual tenants experience.
//!
//! Each scenario assigns one application per tenant (so per-function flow
//! state in the schedulers maps one-to-one onto tenants) and perturbs one
//! or more tenants' arrival processes:
//!
//! * **Noisy neighbor** — all tenants well-behaved and steady, except one
//!   offering several times everyone else's load.
//! * **Adversarial burst** — a tenant that is quiet on average but
//!   attacks in short synchronized bursts at many times the base rate.
//! * **Mixed SLO classes** — interactive (low-rate) tenants sharing the
//!   fleet with batch-like (high-rate) tenants; each application carries
//!   its own SLO budget, so attainment must be read per tenant.
//!
//! Generation is deterministic per `(scenario, class, duration, seed)`.

use ffs_sim::SimDuration;

use crate::azure::{AzureTraceConfig, Trace};
use crate::workload::{Invocation, WorkloadClass};

/// The three multi-tenant fairness scenarios.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FairnessScenario {
    /// One tenant offers several times everyone else's steady load.
    NoisyNeighbor,
    /// One tenant attacks in short synchronized extreme bursts.
    AdversarialBurst,
    /// Interactive low-rate tenants share the fleet with batch-like
    /// high-rate tenants.
    MixedSloClasses,
}

impl FairnessScenario {
    /// All scenarios, in reporting order.
    pub const ALL: [FairnessScenario; 3] = [
        FairnessScenario::NoisyNeighbor,
        FairnessScenario::AdversarialBurst,
        FairnessScenario::MixedSloClasses,
    ];

    /// Snake-case name (report keys, CI greps).
    pub const fn name(self) -> &'static str {
        match self {
            FairnessScenario::NoisyNeighbor => "noisy_neighbor",
            FairnessScenario::AdversarialBurst => "adversarial_burst",
            FairnessScenario::MixedSloClasses => "mixed_slo_classes",
        }
    }

    /// The tenant id this scenario's aggressor runs as, if it has one
    /// (the highest tenant id — the last application of the workload).
    pub fn aggressor(self, class: WorkloadClass) -> Option<u32> {
        match self {
            FairnessScenario::NoisyNeighbor | FairnessScenario::AdversarialBurst => {
                Some(class.apps().len() as u32 - 1)
            }
            FairnessScenario::MixedSloClasses => None,
        }
    }

    /// Generates the scenario trace: one tenant per application of
    /// `class`, arrival processes per the scenario, tenant-stamped.
    pub fn generate(self, class: WorkloadClass, duration_secs: f64, seed: u64) -> Trace {
        let apps = class.apps();
        let n = apps.len();
        let base = class.mean_rps_per_app();
        let mut invocations: Vec<Invocation> = Vec::new();
        for (i, &app) in apps.iter().enumerate() {
            // Distinct deterministic seed per (scenario, tenant).
            let tenant_seed = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((self as u64) << 32)
                .wrapping_add(i as u64 + 1);
            let aggressor = i == n - 1;
            let cfg = match self {
                FairnessScenario::NoisyNeighbor => {
                    // Steady victims; the last tenant offers 5x their load.
                    let rate = if aggressor { base * 5.0 } else { base };
                    AzureTraceConfig::steady(vec![app], duration_secs, rate, tenant_seed)
                }
                FairnessScenario::AdversarialBurst => {
                    if aggressor {
                        // Quiet on average, savage in bursts: 2x the base
                        // mean concentrated into short on-periods at 10x.
                        AzureTraceConfig {
                            apps: vec![app],
                            duration_secs,
                            mean_rps_per_app: base * 2.0,
                            burst_multiplier: 10.0,
                            burst_on_secs: duration_secs / 20.0,
                            burst_off_secs: duration_secs / 4.0,
                            diurnal_amplitude: 0.0,
                            diurnal_period_secs: duration_secs,
                            seed: tenant_seed,
                        }
                    } else {
                        AzureTraceConfig::steady(vec![app], duration_secs, base, tenant_seed)
                    }
                }
                FairnessScenario::MixedSloClasses => {
                    // Even tenants are interactive (half rate), odd tenants
                    // batch-like (double rate); each app keeps its own SLO
                    // budget, so attainment differs per class.
                    let rate = if i % 2 == 0 { base * 0.5 } else { base * 2.0 };
                    AzureTraceConfig::steady(vec![app], duration_secs, rate, tenant_seed)
                }
            };
            let sub = cfg.generate();
            invocations.extend(sub.invocations.into_iter().map(|mut inv| {
                inv.tenant = i as u32;
                inv
            }));
        }
        invocations.sort_by_key(|i| (i.arrival, i.app.index(), i.tenant));
        for (i, inv) in invocations.iter_mut().enumerate() {
            inv.id = i as u64;
        }
        Trace {
            invocations,
            duration: SimDuration::from_secs_f64(duration_secs),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        for sc in FairnessScenario::ALL {
            let a = sc.generate(WorkloadClass::Medium, 60.0, 7);
            let b = sc.generate(WorkloadClass::Medium, 60.0, 7);
            assert_eq!(a.invocations, b.invocations, "{}", sc.name());
            let c = sc.generate(WorkloadClass::Medium, 60.0, 8);
            assert_ne!(a.invocations, c.invocations, "{}", sc.name());
        }
    }

    #[test]
    fn every_tenant_present_and_stamped() {
        for sc in FairnessScenario::ALL {
            let trace = sc.generate(WorkloadClass::Light, 60.0, 3);
            let apps = WorkloadClass::Light.apps();
            for (i, &app) in apps.iter().enumerate() {
                let count = trace
                    .invocations
                    .iter()
                    .filter(|inv| inv.tenant == i as u32)
                    .count();
                assert!(count > 0, "{}: tenant {i} missing", sc.name());
                assert!(
                    trace
                        .invocations
                        .iter()
                        .filter(|inv| inv.tenant == i as u32)
                        .all(|inv| inv.app == app),
                    "{}: tenant {i} not pinned to its app",
                    sc.name()
                );
            }
        }
    }

    #[test]
    fn noisy_neighbor_dominates_load() {
        let trace = FairnessScenario::NoisyNeighbor.generate(WorkloadClass::Medium, 120.0, 1);
        let noisy = FairnessScenario::NoisyNeighbor
            .aggressor(WorkloadClass::Medium)
            .expect("noisy neighbor has an aggressor");
        let noisy_count = trace
            .invocations
            .iter()
            .filter(|i| i.tenant == noisy)
            .count();
        let victim_max = (0..noisy)
            .map(|t| trace.invocations.iter().filter(|i| i.tenant == t).count())
            .max()
            .expect("victims exist");
        assert!(
            noisy_count as f64 > 3.0 * victim_max as f64,
            "noisy {noisy_count} vs victim max {victim_max}"
        );
    }

    #[test]
    fn adversarial_burst_is_overdispersed() {
        let class = WorkloadClass::Medium;
        let trace = FairnessScenario::AdversarialBurst.generate(class, 600.0, 5);
        let apps = class.apps();
        let adversary_app = apps[apps.len() - 1];
        let victim_app = apps[0];
        let cv_adversary = trace.interarrival_cv(adversary_app);
        let cv_victim = trace.interarrival_cv(victim_app);
        assert!(
            cv_adversary > cv_victim + 0.3,
            "adversary CV {cv_adversary} vs victim CV {cv_victim}"
        );
    }

    #[test]
    fn mixed_slo_rates_differ_by_class() {
        let trace = FairnessScenario::MixedSloClasses.generate(WorkloadClass::Light, 300.0, 2);
        let interactive = trace.invocations.iter().filter(|i| i.tenant == 0).count();
        let batch = trace.invocations.iter().filter(|i| i.tenant == 1).count();
        assert!(
            batch as f64 > 2.5 * interactive as f64,
            "batch {batch} vs interactive {interactive}"
        );
    }

    #[test]
    fn ids_dense_and_sorted() {
        let trace = FairnessScenario::NoisyNeighbor.generate(WorkloadClass::Heavy, 60.0, 4);
        for (i, inv) in trace.invocations.iter().enumerate() {
            assert_eq!(inv.id, i as u64);
        }
        for w in trace.invocations.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }
}
