//! Quick span-cost probe: ns per enter/exit pair, flat and nested.
use std::hint::black_box;
use std::time::Instant;

fn main() {
    ffs_telemetry::set_enabled(true);
    const N: u64 = 5_000_000;
    // Flat leaf spans under one root.
    let root = ffs_telemetry::span(ffs_telemetry::Phase::RunOther);
    let t0 = Instant::now();
    for i in 0..N {
        let _g = ffs_telemetry::span(ffs_telemetry::Phase::RouteIndexMaint);
        black_box(i);
    }
    let flat = t0.elapsed().as_nanos() as f64 / N as f64;
    drop(root);
    // Two-level nesting per iteration.
    let root = ffs_telemetry::span(ffs_telemetry::Phase::RunOther);
    let t0 = Instant::now();
    for i in 0..N {
        let _a = ffs_telemetry::span(ffs_telemetry::Phase::BatchDispatch);
        let _b = ffs_telemetry::span(ffs_telemetry::Phase::RoutingScan);
        black_box(i);
    }
    let nested = t0.elapsed().as_nanos() as f64 / N as f64;
    drop(root);
    println!("flat span pair: {flat:.1} ns; two nested pairs: {nested:.1} ns");
}
