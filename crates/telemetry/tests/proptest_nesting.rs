//! Property test: the profiler's self-time accounting telescopes.
//!
//! For an arbitrary tree of nested spans under one root guard, the sum
//! of every phase's *self*-time must equal the root span's wall time
//! (each parent is charged `elapsed − children`, so the child terms
//! cancel pairwise up the tree). If a span's time were double-counted
//! or lost, phase shares could no longer be compared against the
//! harness's `busy_secs` — the invariant the CI coverage gate relies on.
//!
//! The merged profile is process-global, so every test here serializes
//! on one lock and resets the profiler before measuring.

use std::sync::Mutex;

use ffs_telemetry::{clock, span, Phase, PhaseGuard, PHASE_COUNT};
use proptest::prelude::*;

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Spin until at least `n` cycles elapsed (real work under the timer).
fn burn(n: u64) {
    let t0 = clock::now_cycles();
    while clock::now_cycles().saturating_sub(t0) < n {
        std::hint::spin_loop();
    }
}

/// Interprets `prog` as a tree of spans under an already-open root:
/// `op % 3 == 2` pops the innermost open span, anything else pushes a
/// span of phase `op % PHASE_COUNT` (depth-capped so the profiler never
/// overflows). Returns how many spans were opened per phase.
fn run_program(prog: &[u8], max_depth: usize) -> [u64; PHASE_COUNT] {
    let mut opened = [0u64; PHASE_COUNT];
    let mut stack: Vec<PhaseGuard> = Vec::new();
    for &op in prog {
        if op % 3 == 2 {
            if let Some(g) = stack.pop() {
                drop(g);
            }
        } else if stack.len() < max_depth {
            let phase = Phase::ALL[op as usize % PHASE_COUNT];
            stack.push(span(phase));
            opened[phase as usize] += 1;
            burn(2_000);
        } else {
            burn(1_000);
        }
    }
    while let Some(g) = stack.pop() {
        drop(g); // innermost first: guards require LIFO drop order
    }
    opened
}

proptest! {
    /// Sum of self-times over all phases == the root span's wall time
    /// (within the root guard's own enter/exit bookkeeping, which lies
    /// just outside its measured window), and per-phase call counts
    /// match the spans the program actually opened.
    #[test]
    fn self_times_telescope_to_root_wall(
        prog in proptest::collection::vec(0u8..=255u8, 0..24),
    ) {
        let _lock = TEST_LOCK.lock().unwrap();
        ffs_telemetry::set_enabled(true);
        ffs_telemetry::reset_for_tests();

        let t0 = clock::now_cycles();
        let opened = {
            let _root = span(Phase::RunOther);
            // Root occupies one depth level; cap the tree below the
            // profiler's limit so no span overflows.
            run_program(&prog, 6)
        };
        let wall = clock::now_cycles().saturating_sub(t0);

        ffs_telemetry::flush_thread();
        let snap = ffs_telemetry::snapshot();
        prop_assert_eq!(snap.depth_overflows, 0);
        for p in Phase::ALL {
            let want = opened[p as usize] + u64::from(p == Phase::RunOther);
            prop_assert_eq!(snap.calls[p as usize], want, "phase {}", p.name());
        }

        let total = snap.total_cycles();
        // The root's measured window is inside [t0, wall]: its clock
        // reads happen after enter- and before exit-bookkeeping.
        prop_assert!(total <= wall, "self sum {} > wall {}", total, wall);
        prop_assert!(
            wall - total <= 20_000,
            "self sum {} leaves {} cycles of wall {} unaccounted",
            total, wall - total, wall
        );

        // The per-path table partitions the same cycles.
        let path_sum: u64 = snap.paths.iter().map(|p| p.cycles).sum();
        prop_assert_eq!(path_sum + snap.dropped_path_cycles, total);
    }

    /// Unbalanced programs (more pops than pushes, spans left open at
    /// the end) never corrupt the accounting: dropped guards outside
    /// their parents are impossible by construction, and the LIFO drain
    /// closes the rest.
    #[test]
    fn arbitrary_programs_keep_calls_consistent(
        prog in proptest::collection::vec(0u8..=255u8, 0..64),
    ) {
        let _lock = TEST_LOCK.lock().unwrap();
        ffs_telemetry::set_enabled(true);
        ffs_telemetry::reset_for_tests();
        let opened = run_program(&prog, 8);
        ffs_telemetry::flush_thread();
        let snap = ffs_telemetry::snapshot();
        let want: u64 = opened.iter().sum();
        let got: u64 = snap.calls.iter().sum();
        prop_assert_eq!(got, want);
        let path_calls: u64 = snap.paths.iter().map(|p| p.calls).sum();
        prop_assert_eq!(path_calls, want);
    }
}
