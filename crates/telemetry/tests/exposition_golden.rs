//! Format goldens for the Prometheus text exposition.
//!
//! Scrape pipelines parse this output with line regexes, so the exact
//! shape — HELP/TYPE headers, label quoting, cumulative `_bucket{le=}`
//! series, `_sum`/`_count` — is a compatibility surface. These tests pin
//! it byte-for-byte on a private registry and a hand-built snapshot
//! (never the process-global state, which other tests mutate).

use ffs_telemetry::{render_phase_exposition, Phase, PhaseSnapshot, Registry};

#[test]
fn registry_render_matches_golden() {
    let r = Registry::new();
    r.counter("ffs_demo_requests_total", "Requests accepted")
        .add(3);
    r.gauge("ffs_demo_queue_depth", "Pending requests").set(7);
    let h = r.histogram("ffs_demo_latency_ns", "Request latency");
    h.record(0);
    h.record(1);
    h.record(5);
    h.record(5);
    let golden = "\
# HELP ffs_demo_latency_ns Request latency
# TYPE ffs_demo_latency_ns histogram
ffs_demo_latency_ns_bucket{le=\"0\"} 1
ffs_demo_latency_ns_bucket{le=\"1\"} 2
ffs_demo_latency_ns_bucket{le=\"7\"} 4
ffs_demo_latency_ns_bucket{le=\"+Inf\"} 4
ffs_demo_latency_ns_sum 11
ffs_demo_latency_ns_count 4
# HELP ffs_demo_queue_depth Pending requests
# TYPE ffs_demo_queue_depth gauge
ffs_demo_queue_depth 7
# HELP ffs_demo_requests_total Requests accepted
# TYPE ffs_demo_requests_total counter
ffs_demo_requests_total 3
";
    assert_eq!(r.render(), golden);
}

#[test]
fn phase_exposition_matches_golden() {
    let mut snap = PhaseSnapshot::default();
    snap.cycles[Phase::WheelDrain as usize] = 1200;
    snap.calls[Phase::WheelDrain as usize] = 3;
    snap.cycles[Phase::BatchDispatch as usize] = 800;
    snap.calls[Phase::BatchDispatch as usize] = 40;
    snap.depth_overflows = 2;
    let golden = "\
# HELP ffs_phase_self_cycles_total Self-time cycles charged to each engine phase
# TYPE ffs_phase_self_cycles_total counter
ffs_phase_self_cycles_total{phase=\"trace_synth\"} 0
ffs_phase_self_cycles_total{phase=\"engine_setup\"} 0
ffs_phase_self_cycles_total{phase=\"wheel_drain\"} 1200
ffs_phase_self_cycles_total{phase=\"batch_dispatch\"} 800
ffs_phase_self_cycles_total{phase=\"routing_scan\"} 0
ffs_phase_self_cycles_total{phase=\"plan_cache_lookup\"} 0
ffs_phase_self_cycles_total{phase=\"policy_call\"} 0
ffs_phase_self_cycles_total{phase=\"autoscaler_tick\"} 0
ffs_phase_self_cycles_total{phase=\"obs_fold\"} 0
ffs_phase_self_cycles_total{phase=\"run_other\"} 0
ffs_phase_self_cycles_total{phase=\"shard_route\"} 0
ffs_phase_self_cycles_total{phase=\"epoch_barrier\"} 0
ffs_phase_self_cycles_total{phase=\"route_index_maint\"} 0
ffs_phase_self_cycles_total{phase=\"vt_update\"} 0
# HELP ffs_phase_calls_total Completed spans per engine phase
# TYPE ffs_phase_calls_total counter
ffs_phase_calls_total{phase=\"trace_synth\"} 0
ffs_phase_calls_total{phase=\"engine_setup\"} 0
ffs_phase_calls_total{phase=\"wheel_drain\"} 3
ffs_phase_calls_total{phase=\"batch_dispatch\"} 40
ffs_phase_calls_total{phase=\"routing_scan\"} 0
ffs_phase_calls_total{phase=\"plan_cache_lookup\"} 0
ffs_phase_calls_total{phase=\"policy_call\"} 0
ffs_phase_calls_total{phase=\"autoscaler_tick\"} 0
ffs_phase_calls_total{phase=\"obs_fold\"} 0
ffs_phase_calls_total{phase=\"run_other\"} 0
ffs_phase_calls_total{phase=\"shard_route\"} 0
ffs_phase_calls_total{phase=\"epoch_barrier\"} 0
ffs_phase_calls_total{phase=\"route_index_maint\"} 0
ffs_phase_calls_total{phase=\"vt_update\"} 0
# HELP ffs_phase_depth_overflows_total Spans dropped for nesting deeper than the profiler tracks
# TYPE ffs_phase_depth_overflows_total counter
ffs_phase_depth_overflows_total 2
";
    assert_eq!(render_phase_exposition(&snap), golden);
}
