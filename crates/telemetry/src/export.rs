//! Exporters: Prometheus-style text exposition and collapsed stacks.
//!
//! The collapsed-stack format is one line per distinct call path —
//! `frame;frame;frame value` — consumable directly by
//! `inferno-flamegraph` or Brendan Gregg's `flamegraph.pl`:
//!
//! ```text
//! cargo run --release -p ffs-experiments --bin exp_all
//! inferno-flamegraph < telemetry.folded > engine_flame.svg
//! ```
//!
//! Values are self-cycles, so frame widths in the rendered flamegraph
//! are exact cycle shares; every path is rooted at a synthetic `ffs`
//! frame so the graph has a single base.

use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

use crate::clock;
use crate::phase::{Phase, PhaseSnapshot};
use crate::registry;

/// Renders the per-phase profile as Prometheus exposition: one labelled
/// sample per phase under two counter families (`self cycles` and
/// `calls`), plus the drop diagnostics. Deterministic for a given
/// snapshot — the format-golden test pins it down.
pub fn render_phase_exposition(snap: &PhaseSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP ffs_phase_self_cycles_total Self-time cycles charged to each engine phase"
    );
    let _ = writeln!(out, "# TYPE ffs_phase_self_cycles_total counter");
    for p in Phase::ALL {
        let _ = writeln!(
            out,
            "ffs_phase_self_cycles_total{{phase=\"{}\"}} {}",
            p.name(),
            snap.cycles[p as usize]
        );
    }
    let _ = writeln!(
        out,
        "# HELP ffs_phase_calls_total Completed spans per engine phase"
    );
    let _ = writeln!(out, "# TYPE ffs_phase_calls_total counter");
    for p in Phase::ALL {
        let _ = writeln!(
            out,
            "ffs_phase_calls_total{{phase=\"{}\"}} {}",
            p.name(),
            snap.calls[p as usize]
        );
    }
    let _ = writeln!(
        out,
        "# HELP ffs_phase_depth_overflows_total Spans dropped for nesting deeper than the profiler tracks"
    );
    let _ = writeln!(out, "# TYPE ffs_phase_depth_overflows_total counter");
    let _ = writeln!(
        out,
        "ffs_phase_depth_overflows_total {}",
        snap.depth_overflows
    );
    out
}

/// Renders the full process exposition: the default registry's metrics,
/// the merged phase profile, and the calibrated cycle rate. Flush
/// threads of interest first ([`crate::flush_thread`]).
pub fn render_prometheus() -> String {
    let mut out = registry::default_registry().render();
    out.push_str(&render_phase_exposition(&crate::snapshot()));
    let _ = writeln!(
        out,
        "# HELP ffs_telemetry_cycles_per_sec Calibrated profiler clock rate"
    );
    let _ = writeln!(out, "# TYPE ffs_telemetry_cycles_per_sec gauge");
    let _ = writeln!(
        out,
        "ffs_telemetry_cycles_per_sec {:.0}",
        clock::cycles_per_sec()
    );
    out
}

/// Writes [`render_prometheus`] to `path`.
pub fn write_prometheus_file(path: &Path) -> io::Result<()> {
    std::fs::write(path, render_prometheus())
}

/// Writes the snapshot's call paths in collapsed-stack format (self
/// cycles per path, one line each, rooted at a synthetic `ffs` frame).
pub fn write_collapsed<W: Write>(w: &mut W, snap: &PhaseSnapshot) -> io::Result<()> {
    // Deterministic order: by path, not by weight (diff-friendly).
    let mut lines: Vec<(String, u64)> = snap
        .paths
        .iter()
        .filter(|p| p.cycles > 0)
        .map(|p| {
            let mut frames = String::from("ffs");
            for ph in &p.path {
                frames.push(';');
                frames.push_str(ph.name());
            }
            (frames, p.cycles)
        })
        .collect();
    lines.sort();
    for (frames, cycles) in lines {
        writeln!(w, "{frames} {cycles}")?;
    }
    if snap.dropped_path_cycles > 0 {
        writeln!(w, "ffs;[paths_dropped] {}", snap.dropped_path_cycles)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PathStat;

    fn fixed_snapshot() -> PhaseSnapshot {
        let mut snap = PhaseSnapshot::default();
        snap.cycles[Phase::WheelDrain as usize] = 1200;
        snap.calls[Phase::WheelDrain as usize] = 3;
        snap.cycles[Phase::BatchDispatch as usize] = 800;
        snap.calls[Phase::BatchDispatch as usize] = 40;
        snap.paths = vec![
            PathStat {
                path: vec![Phase::WheelDrain],
                cycles: 1200,
                calls: 3,
            },
            PathStat {
                path: vec![Phase::WheelDrain, Phase::BatchDispatch],
                cycles: 800,
                calls: 40,
            },
        ];
        snap
    }

    #[test]
    fn collapsed_stacks_are_semicolon_separated_and_sorted() {
        let mut buf = Vec::new();
        write_collapsed(&mut buf, &fixed_snapshot()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(
            text,
            "ffs;wheel_drain 1200\nffs;wheel_drain;batch_dispatch 800\n"
        );
    }

    #[test]
    fn full_exposition_includes_registry_and_phases() {
        let text = render_prometheus();
        assert!(text.contains("# TYPE ffs_phase_self_cycles_total counter"));
        assert!(text.contains("ffs_telemetry_cycles_per_sec "));
    }
}
