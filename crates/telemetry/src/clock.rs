//! The profiler's clock: raw CPU cycles, calibrated to wall time once at
//! export.
//!
//! On x86-64 [`now_cycles`] is a single `rdtsc` (~10 ns, monotonic per
//! core on every post-2008 part via the invariant TSC). Elsewhere it
//! falls back to `Instant`, reporting nanoseconds as "cycles". Either
//! way the unit is opaque until [`cycles_per_sec`] — measured once
//! against `Instant` over a short window — converts totals for human
//! display; the hot path never pays for the conversion.

use std::sync::OnceLock;
use std::time::Instant;

/// The current cycle count (x86-64: `rdtsc`; elsewhere: `Instant` nanos).
#[inline(always)]
pub fn now_cycles() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `rdtsc` has no preconditions; it is unprivileged and
        // available on every x86-64 CPU.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        static START: OnceLock<Instant> = OnceLock::new();
        START.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Cycles per wall-clock second, calibrated once against `Instant` over a
/// few milliseconds. Accurate to well under a percent — fine for reports,
/// which is the only place cycles are converted.
pub fn cycles_per_sec() -> f64 {
    static HZ: OnceLock<f64> = OnceLock::new();
    *HZ.get_or_init(|| {
        let t0 = Instant::now();
        let c0 = now_cycles();
        // Busy-wait ~2 ms: immune to sleep granularity, cheap enough for
        // a once-per-process cost.
        while t0.elapsed().as_micros() < 2_000 {
            std::hint::spin_loop();
        }
        let cycles = now_cycles().saturating_sub(c0);
        let secs = t0.elapsed().as_secs_f64();
        if secs > 0.0 && cycles > 0 {
            cycles as f64 / secs
        } else {
            1e9 // degenerate clock; pretend 1 cycle == 1 ns
        }
    })
}

/// The irreducible cycles a [`span`](crate::span)/drop pair *measures*
/// when the guarded scope does nothing: the latency of the clock-read
/// pair itself. Calibrated once at startup as the median over many
/// back-to-back reads — the median rejects the interrupt/migration tail
/// like a minimum would, but unlike the minimum (which out-of-order
/// execution lets overlap to an unrealistically small value) it matches
/// the typical pair latency spans actually measure in situ.
///
/// Without this correction every span's `end - start` is inflated by the
/// clock-pair latency. The inflation telescopes away for a parent with
/// one child, but a parent whose children's summed inflation exceeds its
/// own self-time clamps at zero (`saturating_sub`) and the excess leaks
/// into the profile — which is exactly how millions of tight nested
/// spans pushed `covered_busy_frac` past 1.0. A few cycles of residual
/// over-subtraction on outlier spans only undercounts (each span clamps
/// at zero), which the coverage band's lower bound absorbs.
pub fn guard_overhead_cycles() -> u64 {
    static OVERHEAD: OnceLock<u64> = OnceLock::new();
    *OVERHEAD.get_or_init(|| {
        let mut samples = [0u64; 4096];
        for s in samples.iter_mut() {
            let a = now_cycles();
            let b = now_cycles();
            *s = b.saturating_sub(a);
        }
        samples.sort_unstable();
        samples[samples.len() / 2]
    })
}

/// Converts a cycle count to seconds using the calibrated rate.
pub fn cycles_to_secs(cycles: u64) -> f64 {
    cycles as f64 / cycles_per_sec()
}

/// Converts a cycle count to nanoseconds using the calibrated rate.
pub fn cycles_to_nanos(cycles: u64) -> f64 {
    cycles_to_secs(cycles) * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_advance_monotonically_enough() {
        let a = now_cycles();
        let mut b = now_cycles();
        for _ in 0..1000 {
            b = now_cycles();
        }
        assert!(b > a, "cycle counter did not advance: {a} -> {b}");
    }

    #[test]
    fn calibration_is_sane() {
        let hz = cycles_per_sec();
        // Anything from an embedded fallback (1e9 exactly) to a 6 GHz
        // turbo is plausible; catch only order-of-magnitude nonsense.
        assert!(hz > 1e8 && hz < 1e11, "implausible cycle rate {hz}");
        assert_eq!(cycles_per_sec(), hz, "calibration must be cached");
        let secs = cycles_to_secs((hz * 0.5) as u64);
        assert!((secs - 0.5).abs() < 1e-3);
    }
}
