//! Engine self-observation: an always-compiled-in phase profiler plus a
//! static metrics registry.
//!
//! The other observability crates watch the *simulated system*: `ffs-obs`
//! records control-plane decisions, `ffs-metrics` scores the paper's
//! evaluation figures. This crate watches the *engine itself* — where the
//! host CPU cycles of a sweep actually go — cheaply enough to stay on in
//! every run:
//!
//! * **Phase profiler** ([`span`], [`Phase`]) — a fixed enum of hot
//!   phases, timed with scoped guards over a raw cycle counter
//!   (`rdtsc` on x86-64). Guards nest; each one charges **self-time
//!   only** (its elapsed cycles minus its children's), so per-phase
//!   totals sum to the root span's wall time instead of double counting.
//!   All hot-path state is per-thread, fixed-size and allocation-free
//!   (const-initialised TLS, an open-addressed path table), preserving
//!   the engine's zero-allocation steady state. Harness threads fold
//!   their accumulators into a process-wide snapshot via
//!   [`flush_thread`] / [`snapshot`].
//! * **Metrics registry** ([`counter`], [`gauge`], [`histogram`]) —
//!   named process-wide counters, gauges and mergeable log2-bucket
//!   histograms ([`Log2Histogram`]), registered once and updated with
//!   relaxed atomics.
//! * **Exporters** — Prometheus-style text exposition
//!   ([`render_prometheus`]) and a collapsed-stack file
//!   ([`write_collapsed`]) consumable by `inferno` / `flamegraph.pl`.
//!
//! Profiling defaults to **on**; set `FFS_TELEMETRY=0` (or `off` /
//! `false`) to reduce every guard to a single relaxed atomic load.
//! Telemetry only ever *reads* clocks — it feeds nothing back into the
//! simulation, so runs are bit-identical with profiling on or off.

use std::sync::atomic::{AtomicU8, Ordering};

pub mod clock;
mod export;
mod phase;
mod registry;

pub use export::{
    render_phase_exposition, render_prometheus, write_collapsed, write_prometheus_file,
};
pub use phase::{
    flush_thread, reset_for_tests, snapshot, span, PathStat, Phase, PhaseGuard, PhaseSnapshot,
    PHASE_COUNT,
};
pub use registry::{
    counter, default_registry, gauge, histogram, Counter, Gauge, Log2Histogram, Registry,
};

/// Tri-state switch: 0 = unresolved (consult the environment), 1 = on,
/// 2 = off. Resolved lazily so the first guard pays the env lookup, not
/// crate load.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether phase profiling is active. Defaults to on; `FFS_TELEMETRY=0`
/// (or `off` / `false`) disables it. One relaxed load on the hot path.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => resolve_enabled(),
    }
}

#[cold]
fn resolve_enabled() -> bool {
    let off = std::env::var("FFS_TELEMETRY")
        .map(|v| matches!(v.trim(), "0" | "off" | "false"))
        .unwrap_or(false);
    STATE.store(if off { 2 } else { 1 }, Ordering::Relaxed);
    !off
}

/// Force profiling on or off, overriding the environment (tests and
/// binaries that want an explicit baseline).
pub fn set_enabled(on: bool) {
    STATE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_toggle_round_trips() {
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
