//! The phase profiler: a fixed phase alphabet, scoped self-time guards,
//! and per-thread fixed-size accumulators.
//!
//! Hot-path design constraints, in order:
//!
//! 1. **No allocation.** Guards run inside the engine's zero-allocation
//!    steady state (`fluidfaas`'s counting-allocator test), so all
//!    per-thread state is const-initialised TLS with fixed-size arrays —
//!    including the call-path table, which is open-addressed over a
//!    fixed slot count rather than a `HashMap`.
//! 2. **Self-time only.** A guard charges its phase `elapsed − children`,
//!    so summing the per-phase totals of a tree of nested spans yields
//!    exactly the root span's wall time (telescoping) — phase shares are
//!    directly comparable to the harness's `busy_secs`.
//! 3. **Cheap when off.** A disabled guard is one relaxed atomic load.
//!
//! Call paths are encoded as a `u64`, one byte per level (phase index
//! plus one; zero terminates), root in the most significant occupied
//! byte. [`MAX_DEPTH`] is 8; deeper spans are counted but dropped from
//! the profile (the engine's instrumentation nests at most 5 deep).

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::Mutex;

use crate::clock;

/// Number of phases in the fixed alphabet.
pub const PHASE_COUNT: usize = 14;

/// Deepest span nesting the path encoding can represent.
const MAX_DEPTH: usize = 8;

/// Slots in the per-thread call-path table. The instrumented engine
/// produces well under 64 distinct paths; collisions fall back to linear
/// probing, and a full table drops into an overflow counter rather than
/// allocating.
const PATH_SLOTS: usize = 256;

/// The fixed alphabet of engine phases the profiler distinguishes.
///
/// Kept deliberately small and flat: a phase is a *place in the engine*,
/// not a dynamic label, so per-thread accumulators can be plain arrays
/// indexed by discriminant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Generating an arrival trace (Azure-style synthesis).
    TraceSynth = 0,
    /// Building engine state: catalog, fleet, slab, scheduler preload.
    EngineSetup = 1,
    /// The batch event loop's wheel machinery: deadline probes, cursor
    /// advances, batch extraction (`run_until` minus its children).
    WheelDrain = 2,
    /// Draining one timestamp batch through `World::handle` (event
    /// handler bodies outside the more specific phases below).
    BatchDispatch = 3,
    /// Router dispatch: scanning instances/pool for a home for a request.
    RoutingScan = 4,
    /// Launch-plan cache lookups (including miss-path planning).
    PlanCacheLookup = 5,
    /// Policy trait calls on the scale tick: autoscaler scale/keep-alive,
    /// shared-pool maintain, migrator.
    PolicyCall = 6,
    /// Scale-tick bookkeeping outside the policy calls: demand window
    /// rollover, inactive-function sweep, next-tick scheduling.
    AutoscalerTick = 7,
    /// Folding observability + metrics state at run end: finalize,
    /// hub surrender, report assembly, trace export.
    ObsFold = 8,
    /// Everything else inside a harness run (the per-run root span).
    RunOther = 9,
    /// Cross-shard routing at an epoch boundary: backlog census, starving
    /// function scan, message sequencing, adoption into peer shards.
    ShardRoute = 10,
    /// Waiting at the lock-step epoch barrier for peer lanes to finish
    /// their shards' epoch (pure synchronization time, no work).
    EpochBarrier = 11,
    /// Maintaining the per-function admissible-instance routing index at
    /// slab mutation points (admit, stage finish, phase transitions).
    RouteIndexMaint = 12,
    /// MQFQ virtual-time maintenance: advancing the global virtual clock
    /// over the backlogged flows before a fair-queueing dispatch.
    VtUpdate = 13,
}

impl Phase {
    /// Every phase, in discriminant order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::TraceSynth,
        Phase::EngineSetup,
        Phase::WheelDrain,
        Phase::BatchDispatch,
        Phase::RoutingScan,
        Phase::PlanCacheLookup,
        Phase::PolicyCall,
        Phase::AutoscalerTick,
        Phase::ObsFold,
        Phase::RunOther,
        Phase::ShardRoute,
        Phase::EpochBarrier,
        Phase::RouteIndexMaint,
        Phase::VtUpdate,
    ];

    /// Stable snake_case name (used as the Prometheus `phase` label and
    /// the flamegraph frame name).
    pub const fn name(self) -> &'static str {
        match self {
            Phase::TraceSynth => "trace_synth",
            Phase::EngineSetup => "engine_setup",
            Phase::WheelDrain => "wheel_drain",
            Phase::BatchDispatch => "batch_dispatch",
            Phase::RoutingScan => "routing_scan",
            Phase::PlanCacheLookup => "plan_cache_lookup",
            Phase::PolicyCall => "policy_call",
            Phase::AutoscalerTick => "autoscaler_tick",
            Phase::ObsFold => "obs_fold",
            Phase::RunOther => "run_other",
            Phase::ShardRoute => "shard_route",
            Phase::EpochBarrier => "epoch_barrier",
            Phase::RouteIndexMaint => "route_index_maint",
            Phase::VtUpdate => "vt_update",
        }
    }

    fn from_index(i: u8) -> Option<Phase> {
        Phase::ALL.get(i as usize).copied()
    }
}

/// Fixed-size open-addressed map from path key to (self-cycles, calls).
/// Key 0 is the empty marker; a real path key always has a non-zero low
/// byte (phase index + 1 of the innermost span).
struct PathTable {
    keys: [u64; PATH_SLOTS],
    cycles: [u64; PATH_SLOTS],
    calls: [u64; PATH_SLOTS],
    /// Slot of the most recently exited path (hot-exit fast path).
    cached_slot: usize,
    /// Self-cycles that found no free slot (table full) and were dropped
    /// from the per-path profile (per-phase totals still count them).
    dropped_cycles: u64,
}

impl PathTable {
    const fn new() -> Self {
        PathTable {
            keys: [0; PATH_SLOTS],
            cycles: [0; PATH_SLOTS],
            calls: [0; PATH_SLOTS],
            cached_slot: 0,
            dropped_cycles: 0,
        }
    }

    #[inline]
    fn add(&mut self, key: u64, cycles: u64) {
        // Hot spans exit millions of times with the same stack, so the
        // slot of the last exited path is cached: the common case is one
        // compare instead of a hash and probe.
        let c = self.cached_slot;
        if self.keys[c] == key {
            self.cycles[c] += cycles;
            self.calls[c] += 1;
            return;
        }
        // Fibonacci hash to a slot, then linear probe.
        let mut i = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 56) as usize % PATH_SLOTS;
        for _ in 0..PATH_SLOTS {
            if self.keys[i] == key {
                self.cycles[i] += cycles;
                self.calls[i] += 1;
                self.cached_slot = i;
                return;
            }
            if self.keys[i] == 0 {
                self.keys[i] = key;
                self.cycles[i] = cycles;
                self.calls[i] = 1;
                self.cached_slot = i;
                return;
            }
            i = (i + 1) % PATH_SLOTS;
        }
        self.dropped_cycles += cycles;
    }

    fn clear(&mut self) {
        self.keys = [0; PATH_SLOTS];
        self.cycles = [0; PATH_SLOTS];
        self.calls = [0; PATH_SLOTS];
        self.cached_slot = 0;
        self.dropped_cycles = 0;
    }
}

/// Per-thread profiler state: the open span stack and the accumulators.
struct ThreadProf {
    /// Open (entered, not yet exited) span count.
    depth: u8,
    /// Path key of the currently open span stack.
    path: u64,
    /// `child[d]` = cycles consumed by completed children of the span
    /// open at depth `d`.
    child: [u64; MAX_DEPTH],
    /// Self-cycles per phase.
    cycles: [u64; PHASE_COUNT],
    /// Completed spans per phase.
    calls: [u64; PHASE_COUNT],
    /// Self-cycles per call path.
    table: PathTable,
    /// Spans that would have nested deeper than [`MAX_DEPTH`].
    depth_overflows: u64,
}

impl ThreadProf {
    const fn new() -> Self {
        ThreadProf {
            depth: 0,
            path: 0,
            child: [0; MAX_DEPTH],
            cycles: [0; PHASE_COUNT],
            calls: [0; PHASE_COUNT],
            table: PathTable::new(),
            depth_overflows: 0,
        }
    }

    #[inline]
    fn enter(&mut self, phase: Phase) -> bool {
        let d = self.depth as usize;
        if d >= MAX_DEPTH {
            self.depth_overflows += 1;
            return false;
        }
        self.child[d] = 0;
        self.path = (self.path << 8) | (phase as u64 + 1);
        self.depth += 1;
        true
    }

    #[inline]
    fn exit(&mut self, phase: Phase, start: u64, end: u64) {
        debug_assert!(self.depth > 0, "span exit without matching enter");
        self.depth -= 1;
        let d = self.depth as usize;
        // Deduct the clock-pair latency the measurement itself costs, so
        // a span's total reflects only the guarded work. Done before the
        // parent's child-accounting: an uncorrected child total would
        // overcharge the parent's children and (via the saturating
        // subtraction below) leak phantom cycles into the profile.
        let total = end
            .saturating_sub(start)
            .saturating_sub(clock::guard_overhead_cycles());
        let own = total.saturating_sub(self.child[d]);
        self.cycles[phase as usize] += own;
        self.calls[phase as usize] += 1;
        self.table.add(self.path, own);
        self.path >>= 8;
        if d > 0 {
            self.child[d - 1] += total;
        }
    }
}

thread_local! {
    /// Per-thread profiler state. An `UnsafeCell` rather than a `RefCell`:
    /// every accessor goes through [`with_prof`], whose contract keeps the
    /// borrow unique, and the enter/exit pair is the hottest few-
    /// nanosecond path in the profiler — the borrow-flag bookkeeping was
    /// measurable against it.
    static PROF: UnsafeCell<ThreadProf> = const { UnsafeCell::new(ThreadProf::new()) };
}

/// Runs `f` with exclusive access to the thread's profiler state.
///
/// SAFETY contract (checked by inspection, not the type system): `f`
/// must not call back into anything that touches `PROF`. All four
/// callers pass straight-line array-bookkeeping closures; the only
/// external call any of them makes is `with_merged`, which locks the
/// process-wide accumulator and never touches thread state.
#[inline]
fn with_prof<R>(f: impl FnOnce(&mut ThreadProf) -> R) -> R {
    // SAFETY: per the contract above, `f` cannot re-enter `PROF`, so this
    // is the only live reference for the duration of the call.
    PROF.with(|p| f(unsafe { &mut *p.get() }))
}

/// Times one phase for the enclosing scope, charging self-time on drop.
///
/// Guards must be dropped in LIFO order — bind to a local (`let _g = ...`)
/// and let scope ends do the rest; never `let _ = ...` (which drops
/// immediately and times nothing).
#[must_use = "a phase span times the scope it is bound in; dropping it immediately times nothing"]
pub struct PhaseGuard {
    start: u64,
    phase: Phase,
    live: bool,
}

/// Opens a [`PhaseGuard`] for `phase`. When profiling is disabled this is
/// a single relaxed atomic load and the guard is inert.
#[inline]
pub fn span(phase: Phase) -> PhaseGuard {
    if !crate::enabled() {
        return PhaseGuard {
            start: 0,
            phase,
            live: false,
        };
    }
    let live = with_prof(|p| p.enter(phase));
    // Read the clock *after* the bookkeeping, so enter overhead lands in
    // the parent's self-time rather than inflating this span.
    PhaseGuard {
        start: clock::now_cycles(),
        phase,
        live,
    }
}

impl Drop for PhaseGuard {
    #[inline]
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        // Clock first: exit bookkeeping is charged to the parent.
        let end = clock::now_cycles();
        with_prof(|p| p.exit(self.phase, self.start, end));
    }
}

/// Per-path totals in a [`PhaseSnapshot`]: the span stack root-first plus
/// the self-cycles and call count charged at exactly that stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathStat {
    /// The call path, outermost span first.
    pub path: Vec<Phase>,
    /// Self-cycles charged with exactly this stack open.
    pub cycles: u64,
    /// Completed spans with exactly this stack open.
    pub calls: u64,
}

/// A merged, process-wide view of the profile.
#[derive(Clone, Debug, Default)]
pub struct PhaseSnapshot {
    /// Self-cycles per phase, indexed by `Phase as usize`.
    pub cycles: [u64; PHASE_COUNT],
    /// Completed spans per phase.
    pub calls: [u64; PHASE_COUNT],
    /// Per-call-path totals, sorted by descending cycles (ties broken by
    /// path for determinism).
    pub paths: Vec<PathStat>,
    /// Spans dropped because they nested deeper than the profiler tracks.
    pub depth_overflows: u64,
    /// Self-cycles dropped from `paths` because a thread's path table
    /// filled up (still present in `cycles`).
    pub dropped_path_cycles: u64,
}

impl PhaseSnapshot {
    /// Total self-cycles across all phases (== wall cycles spanned by the
    /// root guards, by the self-time telescoping property).
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }
}

#[derive(Default)]
struct Merged {
    cycles: [u64; PHASE_COUNT],
    calls: [u64; PHASE_COUNT],
    paths: HashMap<u64, (u64, u64)>,
    depth_overflows: u64,
    dropped_path_cycles: u64,
}

static MERGED: Mutex<Option<Merged>> = Mutex::new(None);

fn with_merged<R>(f: impl FnOnce(&mut Merged) -> R) -> R {
    let mut guard = MERGED.lock().expect("telemetry accumulator poisoned");
    f(guard.get_or_insert_with(Merged::default))
}

/// Folds the calling thread's accumulators into the process-wide profile
/// and resets them. Open spans are untouched (their self-time lands in a
/// later flush), so this is safe anywhere — harness workers call it at
/// the end of each stint.
pub fn flush_thread() {
    with_prof(|p| {
        if p.calls.iter().all(|&c| c == 0) && p.depth_overflows == 0 {
            return;
        }
        with_merged(|m| {
            for i in 0..PHASE_COUNT {
                m.cycles[i] += p.cycles[i];
                m.calls[i] += p.calls[i];
            }
            for i in 0..PATH_SLOTS {
                if p.table.keys[i] != 0 {
                    let e = m.paths.entry(p.table.keys[i]).or_insert((0, 0));
                    e.0 += p.table.cycles[i];
                    e.1 += p.table.calls[i];
                }
            }
            m.depth_overflows += p.depth_overflows;
            m.dropped_path_cycles += p.table.dropped_cycles;
        });
        p.cycles = [0; PHASE_COUNT];
        p.calls = [0; PHASE_COUNT];
        p.depth_overflows = 0;
        p.table.clear();
    });
}

/// Decodes a path key into phases, outermost first.
fn decode_path(mut key: u64) -> Vec<Phase> {
    let mut inner_first = Vec::new();
    while key != 0 {
        let code = (key & 0xFF) as u8;
        if let Some(p) = Phase::from_index(code.wrapping_sub(1)) {
            inner_first.push(p);
        }
        key >>= 8;
    }
    inner_first.reverse();
    inner_first
}

/// The process-wide profile merged so far. Callers flush their own thread
/// first ([`flush_thread`]) if they want their latest spans included.
pub fn snapshot() -> PhaseSnapshot {
    with_merged(|m| {
        let mut paths: Vec<PathStat> = m
            .paths
            .iter()
            .map(|(&key, &(cycles, calls))| PathStat {
                path: decode_path(key),
                cycles,
                calls,
            })
            .collect();
        paths.sort_by(|a, b| b.cycles.cmp(&a.cycles).then_with(|| a.path.cmp(&b.path)));
        PhaseSnapshot {
            cycles: m.cycles,
            calls: m.calls,
            paths,
            depth_overflows: m.depth_overflows,
            dropped_path_cycles: m.dropped_path_cycles,
        }
    })
}

/// Clears the process-wide profile *and* the calling thread's local
/// accumulators. Test isolation only — production code never resets.
pub fn reset_for_tests() {
    with_prof(|p| {
        p.cycles = [0; PHASE_COUNT];
        p.calls = [0; PHASE_COUNT];
        p.depth_overflows = 0;
        p.table.clear();
    });
    with_merged(|m| *m = Merged::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Spin until at least `n` cycles elapsed (real work for the timer).
    fn burn(n: u64) {
        let t0 = clock::now_cycles();
        while clock::now_cycles().saturating_sub(t0) < n {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nested_spans_charge_self_time_only() {
        crate::set_enabled(true);
        reset_for_tests();
        {
            let _root = span(Phase::RunOther);
            burn(20_000);
            {
                let _inner = span(Phase::RoutingScan);
                burn(20_000);
            }
            burn(20_000);
        }
        flush_thread();
        let s = snapshot();
        let root = s.cycles[Phase::RunOther as usize];
        let inner = s.cycles[Phase::RoutingScan as usize];
        assert_eq!(s.calls[Phase::RunOther as usize], 1);
        assert_eq!(s.calls[Phase::RoutingScan as usize], 1);
        assert!(inner >= 20_000, "inner self {inner}");
        // Root burned ~40k itself; its child's 20k must NOT be included.
        assert!(root >= 40_000, "root self {root}");
        assert!(
            root < 40_000 + 15_000,
            "root self {root} appears to include child time"
        );
    }

    #[test]
    fn paths_decode_root_first() {
        crate::set_enabled(true);
        reset_for_tests();
        {
            let _a = span(Phase::WheelDrain);
            let _b = span(Phase::BatchDispatch);
            let _c = span(Phase::RoutingScan);
        }
        flush_thread();
        let s = snapshot();
        let deep = s
            .paths
            .iter()
            .find(|p| p.path.len() == 3)
            .expect("three-deep path recorded");
        assert_eq!(
            deep.path,
            vec![Phase::WheelDrain, Phase::BatchDispatch, Phase::RoutingScan]
        );
        assert_eq!(deep.calls, 1);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        crate::set_enabled(false);
        flush_thread(); // drain anything earlier tests on this thread left
        let before = snapshot().total_cycles();
        {
            let _g = span(Phase::PolicyCall);
        }
        flush_thread();
        let after = snapshot().total_cycles();
        crate::set_enabled(true);
        assert_eq!(before, after);
    }

    #[test]
    fn flush_is_idempotent_and_additive() {
        crate::set_enabled(true);
        reset_for_tests();
        {
            let _g = span(Phase::ObsFold);
        }
        flush_thread();
        let once = snapshot().calls[Phase::ObsFold as usize];
        flush_thread(); // nothing new: second flush must not double count
        assert_eq!(snapshot().calls[Phase::ObsFold as usize], once);
        {
            let _g = span(Phase::ObsFold);
        }
        flush_thread();
        assert_eq!(snapshot().calls[Phase::ObsFold as usize], once + 1);
    }

    #[test]
    fn depth_overflow_is_counted_not_lost() {
        crate::set_enabled(true);
        reset_for_tests();
        let mut guards: Vec<PhaseGuard> = (0..MAX_DEPTH + 2)
            .map(|_| span(Phase::BatchDispatch))
            .collect();
        while let Some(g) = guards.pop() {
            drop(g); // innermost first: guards require LIFO drop order
        }
        flush_thread();
        let s = snapshot();
        assert_eq!(s.depth_overflows, 2);
        assert_eq!(s.calls[Phase::BatchDispatch as usize], MAX_DEPTH as u64);
    }
}
