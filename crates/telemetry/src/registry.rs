//! The static metrics registry: named counters, gauges and mergeable
//! log2-bucket histograms.
//!
//! Handles are `&'static` — registered once (leaked), then updated with
//! relaxed atomics, so hot paths hold a handle in a `OnceLock` and never
//! touch the registry lock again. Names follow the Prometheus
//! convention: `ffs_<area>_<what>[_<unit>][_total]`, snake_case, with
//! the `_total` suffix reserved for counters.
//!
//! Histograms use power-of-two buckets (`[2^(b-1), 2^b)`), which makes
//! shard merging a plain element-wise add — the property `ffs-metrics`'s
//! evaluation-grade `LogHistogram` (5% buckets) shares, and the two are
//! bridged by `LogHistogram::to_log2` for export through this registry.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count of [`Log2Histogram`]: one bucket per bit length of a
/// `u64`, plus bucket 0 for the value zero.
pub const LOG2_BUCKETS: usize = 65;

/// A fixed-size, lock-free, mergeable histogram with power-of-two
/// buckets: bucket `b > 0` holds values of bit length `b`, i.e. the
/// range `[2^(b-1), 2^b)`; bucket 0 holds exactly zero. Coarser than
/// `ffs-metrics::LogHistogram` (whose 5% buckets score the paper's SLO
/// figures) but updatable from any thread without a lock and mergeable
/// by element-wise addition — the shape an online scrape wants.
#[derive(Debug)]
pub struct Log2Histogram {
    buckets: [AtomicU64; LOG2_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Log2Histogram {
            buckets: [const { AtomicU64::new(0) }; LOG2_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index `v` lands in (its bit length).
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The inclusive upper bound of bucket `b` (`2^b − 1`), or `None`
    /// for the last bucket (`+Inf` in exposition).
    pub fn bucket_le(b: usize) -> Option<u64> {
        if b + 1 >= LOG2_BUCKETS {
            None
        } else {
            Some((1u64 << b) - 1)
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records `n` occurrences of `v` at once (bulk folds, e.g. the
    /// `LogHistogram::to_log2` bridge projecting pre-bucketed counts).
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values (saturation-free for realistic totals).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Snapshot of the raw bucket counts.
    pub fn bucket_counts(&self) -> [u64; LOG2_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Folds another histogram in: element-wise bucket addition (the
    /// sharded-aggregation path).
    pub fn merge(&self, other: &Log2Histogram) {
        for i in 0..LOG2_BUCKETS {
            let n = other.buckets[i].load(Ordering::Relaxed);
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Log2Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A set of named metrics. Most code uses the process-wide
/// [`default_registry`] via the free functions [`counter`] / [`gauge`] /
/// [`histogram`]; tests build private registries so exposition goldens
/// see only their own metrics.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<&'static str, (&'static str, Metric)>>,
}

fn assert_valid_name(name: &str) {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
    assert!(
        head_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
        "invalid metric name {name:?}: must match [a-zA-Z_:][a-zA-Z0-9_:]*"
    );
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Registry {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// The counter registered under `name`, creating it on first use.
    /// Panics if `name` is already registered as a different type.
    pub fn counter(&self, name: &'static str, help: &'static str) -> &'static Counter {
        assert_valid_name(name);
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        let (_, metric) = map
            .entry(name)
            .or_insert_with(|| (help, Metric::Counter(Box::leak(Box::new(Counter::new())))));
        match metric {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    /// Panics if `name` is already registered as a different type.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> &'static Gauge {
        assert_valid_name(name);
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        let (_, metric) = map
            .entry(name)
            .or_insert_with(|| (help, Metric::Gauge(Box::leak(Box::new(Gauge::new())))));
        match metric {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// The histogram registered under `name`, creating it on first use.
    /// Panics if `name` is already registered as a different type.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> &'static Log2Histogram {
        assert_valid_name(name);
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        let (_, metric) = map.entry(name).or_insert_with(|| {
            (
                help,
                Metric::Histogram(Box::leak(Box::new(Log2Histogram::new()))),
            )
        });
        match metric {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format, names in lexicographic order.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let map = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, (help, metric)) in map.iter() {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let counts = h.bucket_counts();
                    let mut cumulative = 0u64;
                    for (b, &n) in counts.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        cumulative += n;
                        if let Some(le) = Log2Histogram::bucket_le(b) {
                            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                        }
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }
}

/// The process-wide registry.
pub fn default_registry() -> &'static Registry {
    static REGISTRY: Registry = Registry::new();
    &REGISTRY
}

/// [`Registry::counter`] on the [`default_registry`].
pub fn counter(name: &'static str, help: &'static str) -> &'static Counter {
    default_registry().counter(name, help)
}

/// [`Registry::gauge`] on the [`default_registry`].
pub fn gauge(name: &'static str, help: &'static str) -> &'static Gauge {
    default_registry().gauge(name, help)
}

/// [`Registry::histogram`] on the [`default_registry`].
pub fn histogram(name: &'static str, help: &'static str) -> &'static Log2Histogram {
    default_registry().histogram(name, help)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once() {
        let r = Registry::new();
        let c = r.counter("ffs_test_total", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("ffs_test_total", "ignored dup help").get(), 5);
        let g = r.gauge("ffs_test_gauge", "a gauge");
        g.set(17);
        assert_eq!(r.gauge("ffs_test_gauge", "").get(), 17);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn type_confusion_panics() {
        let r = Registry::new();
        let _ = r.counter("ffs_twice", "counter first");
        let _ = r.gauge("ffs_twice", "gauge second");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_names_are_rejected() {
        let r = Registry::new();
        let _ = r.counter("ffs bad name", "spaces are not allowed");
    }

    #[test]
    fn log2_buckets_partition_by_bit_length() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_le(0), Some(0));
        assert_eq!(Log2Histogram::bucket_le(2), Some(3));
        assert_eq!(Log2Histogram::bucket_le(64), None);
    }

    #[test]
    fn histogram_merge_is_elementwise() {
        let a = Log2Histogram::new();
        let b = Log2Histogram::new();
        for v in [0, 1, 5, 1000] {
            a.record(v);
        }
        for v in [5, 7, 1 << 40] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.sum(), 1 + 5 + 1000 + 5 + 7 + (1u64 << 40));
        let counts = a.bucket_counts();
        assert_eq!(counts[Log2Histogram::bucket_of(5)], 3); // 5, 5, 7
        assert_eq!(counts[Log2Histogram::bucket_of(1 << 40)], 1);
    }
}
