//! `ffs-obs` — structured decision tracing and live runtime counters for
//! the FluidFaaS control plane.
//!
//! Design goals, in priority order:
//!
//! 1. **Determinism.** Instrumentation observes the simulation, never
//!    steers it: no wall clocks, no randomness, no allocation on the hot
//!    path when disabled. Simulation outputs are byte-identical with
//!    tracing on or off.
//! 2. **Near-zero disabled cost.** Every instrumentation site is gated on
//!    [`enabled`], a single relaxed atomic load; the event-construction
//!    closure passed to [`record`] only runs when tracing is on.
//! 3. **Parallel-run safety.** The experiment harness runs many
//!    simulations concurrently on a thread pool, one run per worker
//!    thread. The active recorder is therefore *thread-local* (installed
//!    with [`install`] around each run), so concurrent runs trace into
//!    disjoint buffers with no cross-talk.
//! 4. **No dependencies.** Hand-rolled on `std` only, so leaf crates
//!    (`ffs-sim`, `ffs-mig`) can emit events without cycles and the
//!    workspace keeps building offline.
//!
//! Timestamps are simulation time in microseconds. The simulation engine
//! publishes the current sim time through [`set_now_us`] before
//! dispatching each event, so crates with no notion of time (e.g. the MIG
//! fleet) can still stamp their events via the ambient clock.

mod counters;
mod event;
mod export;
mod recorder;

pub use counters::Counters;
pub use event::{
    escape_json, EvictionReason, KaCause, KaState, ObsEvent, RejectReason, RejectedCandidate,
    ServePathKind, SliceRef,
};
pub use export::{
    export_chrome_trace, export_jsonl, format_counter_summary, write_chrome_trace, write_jsonl,
    ExportError,
};
pub use recorder::{Recorder, Recording, Stamped, DEFAULT_CAPACITY};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Process-wide master switch. Relaxed is sufficient: the flag is set once
/// at startup before any simulation work begins, and a stale read merely
/// skips (or takes) the trace branch on a thread that has no recorder
/// installed anyway.
static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static CURRENT: RefCell<Option<Arc<Recorder>>> = const { RefCell::new(None) };
    static NOW_US: Cell<u64> = const { Cell::new(0) };
}

/// Turns tracing on or off process-wide. Instrumentation sites still need
/// a thread-local recorder ([`install`]) to actually retain events.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// The single-branch gate every instrumentation site checks first.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `rec` as this thread's active recorder, returning the previous
/// one (if any) so callers can nest.
pub fn install(rec: Arc<Recorder>) -> Option<Arc<Recorder>> {
    CURRENT.with(|c| c.borrow_mut().replace(rec))
}

/// Removes and returns this thread's active recorder.
pub fn uninstall() -> Option<Arc<Recorder>> {
    CURRENT.with(|c| c.borrow_mut().take())
}

/// Clones a handle to this thread's active recorder, if one is installed.
pub fn current() -> Option<Arc<Recorder>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Publishes the current simulation time (µs); called by the engine before
/// dispatching each event so ambient-time recording works everywhere.
#[inline]
pub fn set_now_us(t_us: u64) {
    NOW_US.with(|n| n.set(t_us));
}

/// The last published simulation time (µs) on this thread.
#[inline]
pub fn now_us() -> u64 {
    NOW_US.with(|n| n.get())
}

/// Records an event stamped with the ambient sim time. The closure only
/// runs when tracing is enabled *and* a recorder is installed, so callers
/// may do arbitrary work inside it without perturbing untraced runs.
#[inline]
pub fn record<F: FnOnce() -> ObsEvent>(f: F) {
    if !enabled() {
        return;
    }
    record_at(now_us(), f);
}

/// Records an event with an explicit timestamp (µs).
#[inline]
pub fn record_at<F: FnOnce() -> ObsEvent>(t_us: u64, f: F) {
    if !enabled() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow().as_ref() {
            rec.push(t_us, f());
        }
    });
}

/// Offers a scheduler queue-depth sample to the active recorder (the
/// recorder's deterministic stride decides whether it materializes).
#[inline]
pub fn sample_queue_depth(t_us: u64, pending: u64) {
    if !enabled() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow().as_ref() {
            rec.offer_queue_depth(t_us, pending);
        }
    });
}

/// Process-wide count of past-scheduling attempts the simulation scheduler
/// clamped to `now`. Unconditional (not gated on [`enabled`]): a clamp is a
/// logic error that must stay visible in release builds without tracing.
static SCHEDULE_CLAMPS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Counts one past-scheduling clamp (called by `ffs-sim`'s `Scheduler::at`).
#[inline]
pub fn note_schedule_clamp() {
    SCHEDULE_CLAMPS.fetch_add(1, Ordering::Relaxed);
}

/// Total past-scheduling clamps observed in this process.
pub fn schedule_clamps() -> u64 {
    SCHEDULE_CLAMPS.load(Ordering::Relaxed)
}

/// Process-wide count of per-tick arrival-counter saturations (pathological
/// traces overflowing a `u32` within one scale tick). Unconditional, like
/// [`schedule_clamps`].
static ARRIVAL_SATURATIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Counts one arrival-counter saturation.
#[inline]
pub fn note_arrival_saturation() {
    ARRIVAL_SATURATIONS.fetch_add(1, Ordering::Relaxed);
}

/// Total arrival-counter saturations observed in this process.
pub fn arrival_saturations() -> u64 {
    ARRIVAL_SATURATIONS.load(Ordering::Relaxed)
}

/// Process-wide count of negative-interval clamps in the metrics layer
/// (`saturating_since` on an interval whose end precedes its start). A
/// nonzero count in a fault-free run indicates an event-ordering bug;
/// fault-injected runs legitimately clamp when failures cut intervals
/// short. Unconditional, like [`schedule_clamps`].
static METRIC_CLAMPS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Counts one negative-interval clamp (called by `ffs-metrics`).
#[inline]
pub fn note_metric_clamp() {
    METRIC_CLAMPS.fetch_add(1, Ordering::Relaxed);
}

/// Total metric-interval clamps observed in this process.
pub fn metric_clamps() -> u64 {
    METRIC_CLAMPS.load(Ordering::Relaxed)
}

/// Process-wide count of non-finite latency samples dropped while building
/// CDFs (`LatencyCdf::new` in `ffs-metrics`). A nonzero count indicates an
/// upstream latency-accounting bug — the samples are silently excluded
/// from percentiles, so this counter is the only trace they leave.
/// Unconditional, like [`schedule_clamps`].
static NONFINITE_LATENCY_SAMPLES: std::sync::atomic::AtomicU64 =
    std::sync::atomic::AtomicU64::new(0);

/// Counts one dropped non-finite latency sample.
#[inline]
pub fn note_nonfinite_latency_sample() {
    NONFINITE_LATENCY_SAMPLES.fetch_add(1, Ordering::Relaxed);
}

/// Total non-finite latency samples dropped in this process.
pub fn nonfinite_latency_samples() -> u64 {
    NONFINITE_LATENCY_SAMPLES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enabled flag and the thread-local recorder are process/thread
    // shared state; serialize the tests that touch them.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn record_is_noop_without_enable_or_recorder() {
        let _g = LOCK.lock().unwrap();
        set_enabled(false);
        let mut ran = false;
        record(|| {
            ran = true;
            ObsEvent::QueueDepth { pending: 0 }
        });
        assert!(!ran, "closure must not run when disabled");

        set_enabled(true);
        let _ = uninstall();
        record(|| ObsEvent::QueueDepth { pending: 0 });
        set_enabled(false);
    }

    #[test]
    fn record_routes_to_installed_recorder_with_ambient_time() {
        let _g = LOCK.lock().unwrap();
        set_enabled(true);
        let rec = Arc::new(Recorder::with_capacity(16));
        let prev = install(Arc::clone(&rec));
        assert!(prev.is_none());
        set_now_us(1234);
        record(|| ObsEvent::RequestArrived { req: 1, func: 2 });
        record_at(99, || ObsEvent::RequestArrived { req: 2, func: 2 });
        let got = uninstall().expect("recorder installed");
        set_enabled(false);
        let recording = got.drain();
        assert_eq!(recording.events.len(), 2);
        assert_eq!(recording.events[0].t_us, 1234);
        assert_eq!(recording.events[1].t_us, 99);
        drop(rec);
    }

    #[test]
    fn install_nests() {
        let _g = LOCK.lock().unwrap();
        let a = Arc::new(Recorder::with_capacity(4));
        let b = Arc::new(Recorder::with_capacity(4));
        assert!(install(Arc::clone(&a)).is_none());
        let prev = install(Arc::clone(&b)).expect("a was installed");
        assert!(Arc::ptr_eq(&prev, &a));
        let cur = uninstall().expect("b was installed");
        assert!(Arc::ptr_eq(&cur, &b));
    }
}
