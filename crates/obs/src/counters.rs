//! Monotonic counters and gauges derived from the event stream.
//!
//! Counters are applied automatically when an event is pushed into the
//! recorder, so instrumentation sites never update them by hand — the
//! counter state is always consistent with the events that produced it and
//! can be snapshotted at any sim time.

use crate::event::{EvictionReason, ObsEvent};

/// Live counter state owned by a [`crate::Recorder`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Requests that arrived.
    pub requests_arrived: u64,
    /// Requests dispatched to a worker.
    pub requests_dispatched: u64,
    /// Requests completed.
    pub requests_completed: u64,
    /// Requests that never completed.
    pub requests_abandoned: u64,
    /// Completed requests that missed their SLO.
    pub slo_violations: u64,
    /// Evictions caused by shared-slice contention (LRU).
    pub evictions_contention: u64,
    /// Evictions caused by keep-alive expiry.
    pub evictions_keepalive: u64,
    /// Plan decisions taken by the invoker.
    pub plan_decisions: u64,
    /// Launch-plan cache hits.
    pub plan_cache_hits: u64,
    /// Launch-plan cache misses.
    pub plan_cache_misses: u64,
    /// Keep-alive state transitions.
    pub keepalive_transitions: u64,
    /// Exclusive instance launches.
    pub instances_launched: u64,
    /// Exclusive instance retirements.
    pub instances_retired: u64,
    /// Pipeline migrations started.
    pub migrations: u64,
    /// MIG repartition operations.
    pub mig_reconfigs: u64,
    /// Shared-pool growth events.
    pub pool_grows: u64,
    /// Shared-pool shrink events.
    pub pool_shrinks: u64,
    /// Last sampled scheduler queue depth (gauge).
    pub queue_depth_last: u64,
    /// Maximum sampled scheduler queue depth.
    pub queue_depth_max: u64,
    /// MIG slice failures injected.
    pub slice_failures: u64,
    /// Whole-GPU failures injected.
    pub gpu_failures: u64,
    /// Requests re-queued for retry after their instance died.
    pub request_retries: u64,
    /// Pipelines rebuilt on surviving slices after a failure.
    pub pipeline_rebuilds: u64,
    /// Failed slices recovered back into placement.
    pub slice_recoveries: u64,
}

impl Counters {
    /// Folds one event into the counter state.
    pub fn apply(&mut self, ev: &ObsEvent) {
        match ev {
            ObsEvent::RequestArrived { .. } => self.requests_arrived += 1,
            ObsEvent::RequestDispatched { .. } => self.requests_dispatched += 1,
            ObsEvent::RequestCompleted { slo_met, .. } => {
                self.requests_completed += 1;
                if !slo_met {
                    self.slo_violations += 1;
                }
            }
            ObsEvent::RequestAbandoned { .. } => self.requests_abandoned += 1,
            ObsEvent::PlanDecision { .. } => self.plan_decisions += 1,
            ObsEvent::PlanCacheLookup { hit, .. } => {
                if *hit {
                    self.plan_cache_hits += 1;
                } else {
                    self.plan_cache_misses += 1;
                }
            }
            ObsEvent::KeepAliveTransition { .. } => self.keepalive_transitions += 1,
            ObsEvent::Eviction { reason, .. } => match reason {
                EvictionReason::SliceContention => self.evictions_contention += 1,
                EvictionReason::KeepAliveExpired => self.evictions_keepalive += 1,
            },
            ObsEvent::InstanceLaunched { .. } => self.instances_launched += 1,
            ObsEvent::InstanceRetired { .. } => self.instances_retired += 1,
            ObsEvent::MigrationStarted { .. } => self.migrations += 1,
            ObsEvent::MigReconfig { .. } => self.mig_reconfigs += 1,
            ObsEvent::PoolGrow { .. } => self.pool_grows += 1,
            ObsEvent::PoolShrink { .. } => self.pool_shrinks += 1,
            ObsEvent::QueueDepth { pending } => {
                self.queue_depth_last = *pending;
                self.queue_depth_max = self.queue_depth_max.max(*pending);
            }
            ObsEvent::SliceFailed { .. } => self.slice_failures += 1,
            ObsEvent::GpuFailed { .. } => self.gpu_failures += 1,
            ObsEvent::RequestRetried { .. } => self.request_retries += 1,
            ObsEvent::PipelineRebuilt { .. } => self.pipeline_rebuilds += 1,
            ObsEvent::SliceRecovered { .. } => self.slice_recoveries += 1,
            ObsEvent::RunStart { .. }
            | ObsEvent::RunEnd { .. }
            | ObsEvent::SliceAllocated { .. }
            | ObsEvent::SliceReleased { .. }
            | ObsEvent::SliceActive { .. }
            | ObsEvent::SliceIdle { .. }
            | ObsEvent::ExecutorSubmit { .. }
            | ObsEvent::ExecutorComplete { .. } => {}
        }
    }

    /// Renders the counter state as a complete JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"requests_arrived\":{},\"requests_dispatched\":{},",
                "\"requests_completed\":{},\"requests_abandoned\":{},",
                "\"slo_violations\":{},\"evictions_contention\":{},",
                "\"evictions_keepalive\":{},\"plan_decisions\":{},",
                "\"plan_cache_hits\":{},\"plan_cache_misses\":{},",
                "\"keepalive_transitions\":{},\"instances_launched\":{},",
                "\"instances_retired\":{},\"migrations\":{},",
                "\"mig_reconfigs\":{},\"pool_grows\":{},\"pool_shrinks\":{},",
                "\"queue_depth_last\":{},\"queue_depth_max\":{},",
                "\"slice_failures\":{},\"gpu_failures\":{},",
                "\"request_retries\":{},\"pipeline_rebuilds\":{},",
                "\"slice_recoveries\":{}}}"
            ),
            self.requests_arrived,
            self.requests_dispatched,
            self.requests_completed,
            self.requests_abandoned,
            self.slo_violations,
            self.evictions_contention,
            self.evictions_keepalive,
            self.plan_decisions,
            self.plan_cache_hits,
            self.plan_cache_misses,
            self.keepalive_transitions,
            self.instances_launched,
            self.instances_retired,
            self.migrations,
            self.mig_reconfigs,
            self.pool_grows,
            self.pool_shrinks,
            self.queue_depth_last,
            self.queue_depth_max,
            self.slice_failures,
            self.gpu_failures,
            self.request_retries,
            self.pipeline_rebuilds,
            self.slice_recoveries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SliceRef;

    #[test]
    fn counters_fold_events() {
        let mut c = Counters::default();
        c.apply(&ObsEvent::RequestArrived { req: 0, func: 0 });
        c.apply(&ObsEvent::RequestCompleted {
            req: 0,
            app: 0,
            latency_ms: 90.0,
            slo_ms: 50.0,
            slo_met: false,
        });
        c.apply(&ObsEvent::Eviction {
            func: 1,
            reason: EvictionReason::SliceContention,
            slice: SliceRef::new(0, 3),
        });
        c.apply(&ObsEvent::QueueDepth { pending: 9 });
        c.apply(&ObsEvent::QueueDepth { pending: 4 });
        assert_eq!(c.requests_arrived, 1);
        assert_eq!(c.slo_violations, 1);
        assert_eq!(c.evictions_contention, 1);
        assert_eq!(c.queue_depth_last, 4);
        assert_eq!(c.queue_depth_max, 9);
    }

    #[test]
    fn counter_json_is_parseable_shape() {
        let c = Counters::default();
        let j = c.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"slo_violations\":0"));
    }
}
