//! The typed event alphabet of the control-plane trace.
//!
//! Every scheduler decision the paper's mechanisms make (§5.2–§5.3) has a
//! variant here: plan selection (including the rejected higher-ranked
//! partitions and the free-slice signature the invoker saw), keep-alive
//! transitions with their eviction reason, pipeline migration, MIG
//! reconfiguration, plan-cache lookups and the request lifecycle. The enum
//! is deliberately primitive-typed (no workspace types) so the leaf crates
//! — `ffs-sim`, `ffs-mig` — can emit events without dependency cycles.

/// Location of a MIG slice: GPU plus slice index within its layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SliceRef {
    /// Global GPU index.
    pub gpu: u16,
    /// Slice index within the GPU's partition layout.
    pub index: u8,
}

impl SliceRef {
    /// Creates a slice reference.
    pub const fn new(gpu: u16, index: u8) -> Self {
        SliceRef { gpu, index }
    }
}

/// Mirror of the keep-alive states of Figure 8 (`fluidfaas::KeepAliveState`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KaState {
    /// No instance exists.
    Cold,
    /// Resident on a shared slice, evictable.
    TimeSharing,
    /// Pinned to exclusive slices, eviction-exempt.
    ExclusiveHot,
    /// Evicted to CPU memory.
    Warm,
}

impl KaState {
    /// Stable lowercase name for exports.
    pub const fn as_str(self) -> &'static str {
        match self {
            KaState::Cold => "cold",
            KaState::TimeSharing => "time_sharing",
            KaState::ExclusiveHot => "exclusive_hot",
            KaState::Warm => "warm",
        }
    }
}

/// What drove a keep-alive transition (mirror of `fluidfaas::Transition`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KaCause {
    /// A request arrived (① from cold, or a warm reload).
    RequestArrived,
    /// Utilization crossed the promote threshold (②).
    UtilizationHigh,
    /// Utilization dropped below the demote threshold (③).
    UtilizationLow,
    /// The resident was evicted from its shared slice (④).
    Evicted,
    /// The keep-alive timer expired (⑤).
    IdleTimeout,
}

impl KaCause {
    /// Stable lowercase name for exports.
    pub const fn as_str(self) -> &'static str {
        match self {
            KaCause::RequestArrived => "request_arrived",
            KaCause::UtilizationHigh => "utilization_high",
            KaCause::UtilizationLow => "utilization_low",
            KaCause::Evicted => "evicted",
            KaCause::IdleTimeout => "idle_timeout",
        }
    }
}

/// Why a resident's model was dropped from GPU memory.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvictionReason {
    /// LRU-evicted so another function could use the shared slice (§5.3's
    /// eviction-based time sharing).
    SliceContention,
    /// The keep-alive timer expired while the model was still on-slice and
    /// the lineage terminated to cold (⑤).
    KeepAliveExpired,
}

impl EvictionReason {
    /// Stable lowercase name for exports.
    pub const fn as_str(self) -> &'static str {
        match self {
            EvictionReason::SliceContention => "slice_contention",
            EvictionReason::KeepAliveExpired => "keep_alive_expired",
        }
    }
}

/// How a dispatched request is served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServePathKind {
    /// A single-stage exclusive instance.
    Monolithic,
    /// A multi-stage pipelined exclusive instance.
    Pipelined,
    /// The function's time-sharing instance on a shared slice.
    TimeShared,
}

impl ServePathKind {
    /// Stable lowercase name for exports.
    pub const fn as_str(self) -> &'static str {
        match self {
            ServePathKind::Monolithic => "monolithic",
            ServePathKind::Pipelined => "pipelined",
            ServePathKind::TimeShared => "time_shared",
        }
    }
}

/// Why a higher-ranked partition was passed over at plan time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Some stage's memory footprint exceeds every free slice.
    MemoryNoFit,
    /// The monolithic compute floor (Table 5) was unmet by the fitting
    /// slices.
    ComputeFloor,
    /// Enough slice *kinds* exist but not enough distinct free slices
    /// (resource fragmentation).
    Fragmentation,
}

impl RejectReason {
    /// Stable lowercase name for exports.
    pub const fn as_str(self) -> &'static str {
        match self {
            RejectReason::MemoryNoFit => "memory_no_fit",
            RejectReason::ComputeFloor => "compute_floor",
            RejectReason::Fragmentation => "fragmentation",
        }
    }
}

/// A CV-ranked partition the invoker considered and rejected before the
/// one it deployed.
#[derive(Clone, Debug, PartialEq)]
pub struct RejectedCandidate {
    /// Rank in the CV-ordered list (0 = best balanced, the monolith).
    pub rank: u32,
    /// Stage count of the rejected partition.
    pub stages: u32,
    /// Its CV balance score.
    pub cv: f64,
    /// Why it could not be hosted on the free slices.
    pub reason: RejectReason,
}

/// One structured control-plane event.
#[derive(Clone, Debug, PartialEq)]
pub enum ObsEvent {
    /// A run begins (emitted by the trace runner).
    RunStart {
        /// Invocations in the driving trace.
        invocations: u64,
        /// GPUs in the fleet.
        gpus: u32,
    },
    /// A run finished draining.
    RunEnd {
        /// Simulated end time in seconds.
        sim_secs: f64,
    },
    /// A request reached the controller.
    RequestArrived {
        /// Trace-wide request id.
        req: u64,
        /// Function index.
        func: u32,
    },
    /// A request was routed to a worker.
    RequestDispatched {
        /// Trace-wide request id.
        req: u64,
        /// Function index.
        func: u32,
        /// The serving path.
        path: ServePathKind,
        /// Instance id (exclusive paths) or shared-slot index.
        target: u64,
    },
    /// A request completed.
    RequestCompleted {
        /// Trace-wide request id.
        req: u64,
        /// Application index.
        app: u32,
        /// End-to-end latency.
        latency_ms: f64,
        /// The SLO budget.
        slo_ms: f64,
        /// Whether the SLO was met.
        slo_met: bool,
    },
    /// A request never completed (dropped / unfinished at run end).
    RequestAbandoned {
        /// Trace-wide request id.
        req: u64,
        /// Application index.
        app: u32,
    },
    /// The invoker chose a deployment plan (§5.2): the decision record the
    /// paper's goodput claims hinge on.
    PlanDecision {
        /// Function index.
        func: u32,
        /// Node the plan deploys on.
        node: u16,
        /// Canonical free-slice multiset signature at decision time
        /// (see `fluidfaas::plancache::slice_signature`).
        free_signature: u64,
        /// Rank of the chosen partition in the CV-ordered list.
        chosen_rank: u32,
        /// Stage count of the chosen plan.
        stages: u32,
        /// CV balance score of the chosen partition.
        cv: f64,
        /// Total GPCs the plan consumes.
        gpcs: u32,
        /// Higher-ranked partitions that were rejected first.
        rejected: Vec<RejectedCandidate>,
    },
    /// A launch-plan cache lookup.
    PlanCacheLookup {
        /// Function index.
        func: u32,
        /// Node probed.
        node: u16,
        /// Whether the memoized plan was reused.
        hit: bool,
    },
    /// A keep-alive lineage changed state (Figure 8).
    KeepAliveTransition {
        /// Function index.
        func: u32,
        /// State before.
        from: KaState,
        /// State after.
        to: KaState,
        /// The driving transition.
        cause: KaCause,
    },
    /// A resident model was dropped from GPU memory.
    Eviction {
        /// The evicted function.
        func: u32,
        /// Why it was evicted.
        reason: EvictionReason,
        /// The shared slice it was evicted from.
        slice: SliceRef,
    },
    /// An exclusive instance launched.
    InstanceLaunched {
        /// Instance id.
        inst: u64,
        /// Function index.
        func: u32,
        /// Hosting node.
        node: u16,
        /// Stage count (1 = monolithic).
        stages: u32,
        /// True for pipelined deployments.
        pipelined: bool,
        /// Cold-start latency charged.
        cold_ms: f64,
    },
    /// An exclusive instance retired and released its slices.
    InstanceRetired {
        /// Instance id.
        inst: u64,
        /// Function index.
        func: u32,
    },
    /// A pipelined instance started draining in favour of a monolithic
    /// replacement (§5.3 pipeline migration).
    MigrationStarted {
        /// Function index.
        func: u32,
        /// The draining pipelined instance.
        drained: u64,
    },
    /// A MIG slice was allocated (fleet-level, any scheduler).
    SliceAllocated {
        /// The slice.
        slice: SliceRef,
        /// Its GPC count.
        gpcs: u32,
    },
    /// A MIG slice was released.
    SliceReleased {
        /// The slice.
        slice: SliceRef,
    },
    /// A slice started executing (a stage of) a request.
    SliceActive {
        /// The slice.
        slice: SliceRef,
        /// Function index.
        func: u32,
        /// The request.
        req: u64,
    },
    /// A slice went idle.
    SliceIdle {
        /// The slice.
        slice: SliceRef,
    },
    /// The shared (time-sharing) pool grew by one slice.
    PoolGrow {
        /// The added slice.
        slice: SliceRef,
        /// The function whose demand triggered the growth.
        func: u32,
    },
    /// The shared pool released an idle slice.
    PoolShrink {
        /// The removed slice.
        slice: SliceRef,
    },
    /// A GPU was repartitioned through the NVML facade (several minutes of
    /// downtime — the cost that motivates the paper's design).
    MigReconfig {
        /// The GPU.
        gpu: u16,
        /// Seconds the reconfiguration took.
        secs: u64,
    },
    /// A MIG slice failed (fault injection): instances on it are killed and
    /// the slice leaves placement until recovered.
    SliceFailed {
        /// The failed slice.
        slice: SliceRef,
    },
    /// A whole GPU failed (XID-style): every slice on it fails at once.
    GpuFailed {
        /// The failed GPU.
        gpu: u16,
    },
    /// An in-flight request was re-queued for retry after its serving
    /// instance died, with capped exponential backoff.
    RequestRetried {
        /// Trace-wide request id.
        req: u64,
        /// Retry attempt number (1 = first retry).
        attempt: u32,
        /// Backoff delay before re-dispatch.
        delay_ms: u64,
    },
    /// A pipelined function was rebuilt from the best-ranked partition
    /// that fits the surviving slices after a failure.
    PipelineRebuilt {
        /// Function index.
        func: u32,
        /// The replacement instance.
        inst: u64,
        /// Stage count of the rebuilt plan.
        stages: u32,
    },
    /// A failed slice finished its repair + reconfiguration and re-entered
    /// placement.
    SliceRecovered {
        /// The recovered slice.
        slice: SliceRef,
    },
    /// Sampled scheduler queue depth (emitted by the engine hook).
    QueueDepth {
        /// Pending events in the simulation queue.
        pending: u64,
    },
    /// A request entered the live pipeline executor.
    ExecutorSubmit {
        /// Caller-assigned request id.
        req: u64,
    },
    /// A request left the live pipeline executor.
    ExecutorComplete {
        /// Caller-assigned request id.
        req: u64,
        /// Wall-clock end-to-end latency.
        total_ms: f64,
    },
}

/// Writes a finite float as JSON (non-finite values become `null`).
pub(crate) fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{}` prints the shortest round-trip representation; integers get
        // a trailing ".0" appended so the field stays a JSON number with a
        // stable type.
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains('.') && !s.contains('e') && !s.contains("inf") {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Escapes a string for inclusion in a JSON document.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl ObsEvent {
    /// Stable snake_case kind tag used by both exporters.
    pub const fn kind(&self) -> &'static str {
        match self {
            ObsEvent::RunStart { .. } => "run_start",
            ObsEvent::RunEnd { .. } => "run_end",
            ObsEvent::RequestArrived { .. } => "request_arrived",
            ObsEvent::RequestDispatched { .. } => "request_dispatched",
            ObsEvent::RequestCompleted { .. } => "request_completed",
            ObsEvent::RequestAbandoned { .. } => "request_abandoned",
            ObsEvent::PlanDecision { .. } => "plan_decision",
            ObsEvent::PlanCacheLookup { .. } => "plan_cache_lookup",
            ObsEvent::KeepAliveTransition { .. } => "keepalive_transition",
            ObsEvent::Eviction { .. } => "eviction",
            ObsEvent::InstanceLaunched { .. } => "instance_launched",
            ObsEvent::InstanceRetired { .. } => "instance_retired",
            ObsEvent::MigrationStarted { .. } => "migration_started",
            ObsEvent::SliceAllocated { .. } => "slice_allocated",
            ObsEvent::SliceReleased { .. } => "slice_released",
            ObsEvent::SliceActive { .. } => "slice_active",
            ObsEvent::SliceIdle { .. } => "slice_idle",
            ObsEvent::PoolGrow { .. } => "pool_grow",
            ObsEvent::PoolShrink { .. } => "pool_shrink",
            ObsEvent::MigReconfig { .. } => "mig_reconfig",
            ObsEvent::SliceFailed { .. } => "slice_failed",
            ObsEvent::GpuFailed { .. } => "gpu_failed",
            ObsEvent::RequestRetried { .. } => "request_retried",
            ObsEvent::PipelineRebuilt { .. } => "pipeline_rebuilt",
            ObsEvent::SliceRecovered { .. } => "slice_recovered",
            ObsEvent::QueueDepth { .. } => "queue_depth",
            ObsEvent::ExecutorSubmit { .. } => "executor_submit",
            ObsEvent::ExecutorComplete { .. } => "executor_complete",
        }
    }

    /// Renders the event's payload as the *inner* fields of a JSON object
    /// (comma-separated `"key":value` pairs, no surrounding braces), shared
    /// by the JSONL exporter (flattened) and the Chrome exporter (`args`).
    pub fn fields_json(&self) -> String {
        let mut s = String::new();
        match self {
            ObsEvent::RunStart { invocations, gpus } => {
                s.push_str(&format!("\"invocations\":{invocations},\"gpus\":{gpus}"));
            }
            ObsEvent::RunEnd { sim_secs } => {
                s.push_str("\"sim_secs\":");
                push_f64(&mut s, *sim_secs);
            }
            ObsEvent::RequestArrived { req, func } => {
                s.push_str(&format!("\"req\":{req},\"func\":{func}"));
            }
            ObsEvent::RequestDispatched {
                req,
                func,
                path,
                target,
            } => {
                s.push_str(&format!(
                    "\"req\":{req},\"func\":{func},\"path\":\"{}\",\"target\":{target}",
                    path.as_str()
                ));
            }
            ObsEvent::RequestCompleted {
                req,
                app,
                latency_ms,
                slo_ms,
                slo_met,
            } => {
                s.push_str(&format!("\"req\":{req},\"app\":{app},\"latency_ms\":"));
                push_f64(&mut s, *latency_ms);
                s.push_str(",\"slo_ms\":");
                push_f64(&mut s, *slo_ms);
                s.push_str(&format!(",\"slo_met\":{slo_met}"));
            }
            ObsEvent::RequestAbandoned { req, app } => {
                s.push_str(&format!("\"req\":{req},\"app\":{app}"));
            }
            ObsEvent::PlanDecision {
                func,
                node,
                free_signature,
                chosen_rank,
                stages,
                cv,
                gpcs,
                rejected,
            } => {
                s.push_str(&format!(
                    "\"func\":{func},\"node\":{node},\"free_signature\":{free_signature},\"chosen_rank\":{chosen_rank},\"stages\":{stages},\"cv\":"
                ));
                push_f64(&mut s, *cv);
                s.push_str(&format!(",\"gpcs\":{gpcs},\"rejected\":["));
                for (i, r) in rejected.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"rank\":{},\"stages\":{},\"cv\":",
                        r.rank, r.stages
                    ));
                    push_f64(&mut s, r.cv);
                    s.push_str(&format!(",\"reason\":\"{}\"}}", r.reason.as_str()));
                }
                s.push(']');
            }
            ObsEvent::PlanCacheLookup { func, node, hit } => {
                s.push_str(&format!("\"func\":{func},\"node\":{node},\"hit\":{hit}"));
            }
            ObsEvent::KeepAliveTransition {
                func,
                from,
                to,
                cause,
            } => {
                s.push_str(&format!(
                    "\"func\":{func},\"from\":\"{}\",\"to\":\"{}\",\"cause\":\"{}\"",
                    from.as_str(),
                    to.as_str(),
                    cause.as_str()
                ));
            }
            ObsEvent::Eviction {
                func,
                reason,
                slice,
            } => {
                s.push_str(&format!(
                    "\"func\":{func},\"reason\":\"{}\",\"gpu\":{},\"slice\":{}",
                    reason.as_str(),
                    slice.gpu,
                    slice.index
                ));
            }
            ObsEvent::InstanceLaunched {
                inst,
                func,
                node,
                stages,
                pipelined,
                cold_ms,
            } => {
                s.push_str(&format!(
                    "\"inst\":{inst},\"func\":{func},\"node\":{node},\"stages\":{stages},\"pipelined\":{pipelined},\"cold_ms\":"
                ));
                push_f64(&mut s, *cold_ms);
            }
            ObsEvent::InstanceRetired { inst, func } => {
                s.push_str(&format!("\"inst\":{inst},\"func\":{func}"));
            }
            ObsEvent::MigrationStarted { func, drained } => {
                s.push_str(&format!("\"func\":{func},\"drained\":{drained}"));
            }
            ObsEvent::SliceAllocated { slice, gpcs } => {
                s.push_str(&format!(
                    "\"gpu\":{},\"slice\":{},\"gpcs\":{gpcs}",
                    slice.gpu, slice.index
                ));
            }
            ObsEvent::SliceReleased { slice } => {
                s.push_str(&format!("\"gpu\":{},\"slice\":{}", slice.gpu, slice.index));
            }
            ObsEvent::SliceActive { slice, func, req } => {
                s.push_str(&format!(
                    "\"gpu\":{},\"slice\":{},\"func\":{func},\"req\":{req}",
                    slice.gpu, slice.index
                ));
            }
            ObsEvent::SliceIdle { slice } => {
                s.push_str(&format!("\"gpu\":{},\"slice\":{}", slice.gpu, slice.index));
            }
            ObsEvent::PoolGrow { slice, func } => {
                s.push_str(&format!(
                    "\"gpu\":{},\"slice\":{},\"func\":{func}",
                    slice.gpu, slice.index
                ));
            }
            ObsEvent::PoolShrink { slice } => {
                s.push_str(&format!("\"gpu\":{},\"slice\":{}", slice.gpu, slice.index));
            }
            ObsEvent::MigReconfig { gpu, secs } => {
                s.push_str(&format!("\"gpu\":{gpu},\"secs\":{secs}"));
            }
            ObsEvent::SliceFailed { slice } => {
                s.push_str(&format!("\"gpu\":{},\"slice\":{}", slice.gpu, slice.index));
            }
            ObsEvent::GpuFailed { gpu } => {
                s.push_str(&format!("\"gpu\":{gpu}"));
            }
            ObsEvent::RequestRetried {
                req,
                attempt,
                delay_ms,
            } => {
                s.push_str(&format!(
                    "\"req\":{req},\"attempt\":{attempt},\"delay_ms\":{delay_ms}"
                ));
            }
            ObsEvent::PipelineRebuilt { func, inst, stages } => {
                s.push_str(&format!(
                    "\"func\":{func},\"inst\":{inst},\"stages\":{stages}"
                ));
            }
            ObsEvent::SliceRecovered { slice } => {
                s.push_str(&format!("\"gpu\":{},\"slice\":{}", slice.gpu, slice.index));
            }
            ObsEvent::QueueDepth { pending } => {
                s.push_str(&format!("\"pending\":{pending}"));
            }
            ObsEvent::ExecutorSubmit { req } => {
                s.push_str(&format!("\"req\":{req}"));
            }
            ObsEvent::ExecutorComplete { req, total_ms } => {
                s.push_str(&format!("\"req\":{req},\"total_ms\":"));
                push_f64(&mut s, *total_ms);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_snake_case() {
        let ev = ObsEvent::PlanDecision {
            func: 1,
            node: 0,
            free_signature: 7,
            chosen_rank: 2,
            stages: 3,
            cv: 0.25,
            gpcs: 3,
            rejected: vec![],
        };
        assert_eq!(ev.kind(), "plan_decision");
        assert_eq!(ObsEvent::QueueDepth { pending: 1 }.kind(), "queue_depth");
    }

    #[test]
    fn fields_render_as_json_fragments() {
        let ev = ObsEvent::KeepAliveTransition {
            func: 4,
            from: KaState::TimeSharing,
            to: KaState::Warm,
            cause: KaCause::Evicted,
        };
        assert_eq!(
            ev.fields_json(),
            "\"func\":4,\"from\":\"time_sharing\",\"to\":\"warm\",\"cause\":\"evicted\""
        );
    }

    #[test]
    fn rejected_candidates_render_inline() {
        let ev = ObsEvent::PlanDecision {
            func: 0,
            node: 1,
            free_signature: 0x1002,
            chosen_rank: 1,
            stages: 2,
            cv: 0.5,
            gpcs: 2,
            rejected: vec![RejectedCandidate {
                rank: 0,
                stages: 1,
                cv: 0.0,
                reason: RejectReason::MemoryNoFit,
            }],
        };
        let f = ev.fields_json();
        assert!(f.contains("\"chosen_rank\":1"), "{f}");
        assert!(f.contains("\"reason\":\"memory_no_fit\""), "{f}");
        assert!(f.contains("\"free_signature\":4098"), "{f}");
    }

    #[test]
    fn floats_round_trip_and_nonfinite_is_null() {
        let mut s = String::new();
        push_f64(&mut s, 2.0);
        assert_eq!(s, "2.0");
        let mut s = String::new();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
