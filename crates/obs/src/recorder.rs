//! The preallocated ring-buffer recorder.
//!
//! A [`Recorder`] owns a fixed-capacity ring of timestamped events plus the
//! [`Counters`] folded from every event ever pushed (counters survive ring
//! overflow). Pushing takes one short mutex hold; the mutex is uncontended
//! in practice because each simulation run executes on a single worker
//! thread and installs its own recorder thread-locally.

use std::sync::Mutex;

use crate::counters::Counters;
use crate::event::ObsEvent;

/// Default ring capacity: enough for a multi-minute paper-scale run while
/// bounding memory to a few hundred MB worst-case.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// One recorded event with its simulation timestamp.
#[derive(Clone, Debug, PartialEq)]
pub struct Stamped {
    /// Simulation time in microseconds.
    pub t_us: u64,
    /// Monotonic sequence number (gap-free even across ring overflow).
    pub seq: u64,
    /// The event payload.
    pub event: ObsEvent,
}

struct Inner {
    ring: Vec<Stamped>,
    /// Next slot to write; wraps at `capacity`.
    head: usize,
    /// Events currently held (≤ capacity).
    len: usize,
    /// Events discarded because the ring was full.
    dropped: u64,
    /// Next sequence number.
    seq: u64,
    counters: Counters,
    /// Emit one `QueueDepth` event per this many samples offered.
    queue_sample_every: u64,
    queue_samples_seen: u64,
}

/// A fixed-capacity, counter-folding event recorder.
pub struct Recorder {
    inner: Mutex<Inner>,
}

/// The drained contents of a recorder: an ordered event log plus final
/// counter state, ready for export.
#[derive(Clone, Debug)]
pub struct Recording {
    /// Events in push order (oldest first). If `dropped > 0` the oldest
    /// events were overwritten and this holds only the tail.
    pub events: Vec<Stamped>,
    /// Final counter state folded over *all* events, including dropped ones.
    pub counters: Counters,
    /// Events lost to ring overflow.
    pub dropped: u64,
}

impl Recorder {
    /// Creates a recorder with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates a recorder holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "recorder capacity must be positive");
        Recorder {
            inner: Mutex::new(Inner {
                ring: Vec::with_capacity(capacity),
                head: 0,
                len: 0,
                dropped: 0,
                seq: 0,
                counters: Counters::default(),
                queue_sample_every: 64,
                queue_samples_seen: 0,
            }),
        }
    }

    /// Sets the queue-depth sampling stride (every `n`-th offered sample is
    /// recorded; `n = 0` disables queue-depth events entirely).
    pub fn set_queue_sample_every(&self, n: u64) {
        self.inner.lock().unwrap().queue_sample_every = n;
    }

    /// Pushes an event stamped with simulation time `t_us`.
    pub fn push(&self, t_us: u64, event: ObsEvent) {
        let mut g = self.inner.lock().unwrap();
        g.counters.apply(&event);
        let seq = g.seq;
        g.seq += 1;
        let cap = g.ring.capacity();
        let stamped = Stamped { t_us, seq, event };
        if g.len < cap {
            g.ring.push(stamped);
            g.len += 1;
            g.head = g.len % cap;
        } else {
            let head = g.head;
            g.ring[head] = stamped;
            g.head = (head + 1) % cap;
            g.dropped += 1;
        }
    }

    /// Offers a scheduler queue-depth sample; only every configured n-th
    /// call materializes an event (deterministic, count-based stride).
    pub fn offer_queue_depth(&self, t_us: u64, pending: u64) {
        let should = {
            let mut g = self.inner.lock().unwrap();
            if g.queue_sample_every == 0 {
                return;
            }
            let take = g.queue_samples_seen.is_multiple_of(g.queue_sample_every);
            g.queue_samples_seen += 1;
            take
        };
        if should {
            self.push(t_us, ObsEvent::QueueDepth { pending });
        }
    }

    /// Snapshot of the counter state at this moment.
    pub fn counters(&self) -> Counters {
        self.inner.lock().unwrap().counters.clone()
    }

    /// Number of events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events lost to ring overflow so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Drains the recorder into an ordered [`Recording`], resetting the
    /// ring (counters are returned and reset too).
    pub fn drain(&self) -> Recording {
        let mut g = self.inner.lock().unwrap();
        let cap = g.ring.capacity();
        let mut events = Vec::with_capacity(g.len);
        if g.len < cap {
            events.append(&mut g.ring);
        } else {
            // Ring is full: oldest entry sits at `head`.
            let head = g.head;
            let ring = std::mem::take(&mut g.ring);
            let (tail, front) = ring.split_at(head);
            events.extend_from_slice(front);
            events.extend_from_slice(tail);
            g.ring = Vec::with_capacity(cap);
        }
        g.head = 0;
        g.len = 0;
        let dropped = std::mem::take(&mut g.dropped);
        g.seq = 0;
        g.queue_samples_seen = 0;
        let counters = std::mem::take(&mut g.counters);
        Recording {
            events,
            counters,
            dropped,
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(req: u64) -> ObsEvent {
        ObsEvent::RequestArrived { req, func: 0 }
    }

    #[test]
    fn push_and_drain_preserve_order() {
        let r = Recorder::with_capacity(8);
        for i in 0..5u64 {
            r.push(i * 10, arrival(i));
        }
        let rec = r.drain();
        assert_eq!(rec.events.len(), 5);
        assert_eq!(rec.dropped, 0);
        assert_eq!(rec.counters.requests_arrived, 5);
        let times: Vec<u64> = rec.events.iter().map(|s| s.t_us).collect();
        assert_eq!(times, vec![0, 10, 20, 30, 40]);
        let seqs: Vec<u64> = rec.events.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_keeps_tail_and_counts_drops() {
        let r = Recorder::with_capacity(4);
        for i in 0..10u64 {
            r.push(i, arrival(i));
        }
        assert_eq!(r.dropped(), 6);
        let rec = r.drain();
        assert_eq!(rec.events.len(), 4);
        assert_eq!(rec.dropped, 6);
        // Counters fold all ten events even though six were overwritten.
        assert_eq!(rec.counters.requests_arrived, 10);
        let times: Vec<u64> = rec.events.iter().map(|s| s.t_us).collect();
        assert_eq!(times, vec![6, 7, 8, 9]);
    }

    #[test]
    fn drain_resets_state() {
        let r = Recorder::with_capacity(4);
        r.push(1, arrival(0));
        let _ = r.drain();
        assert!(r.is_empty());
        assert_eq!(r.counters(), Counters::default());
        r.push(2, arrival(1));
        let rec = r.drain();
        assert_eq!(rec.events.len(), 1);
        assert_eq!(rec.events[0].seq, 0);
    }

    #[test]
    fn queue_depth_sampling_is_strided() {
        let r = Recorder::with_capacity(64);
        r.set_queue_sample_every(4);
        for i in 0..9u64 {
            r.offer_queue_depth(i, i);
        }
        let rec = r.drain();
        // Samples 0, 4 and 8 materialize.
        assert_eq!(rec.events.len(), 3);
        assert_eq!(rec.counters.queue_depth_max, 8);
    }

    #[test]
    fn queue_depth_sampling_can_be_disabled() {
        let r = Recorder::with_capacity(8);
        r.set_queue_sample_every(0);
        r.offer_queue_depth(0, 5);
        assert!(r.is_empty());
    }
}
