//! Exporters: JSON-lines and Chrome trace-event format.
//!
//! The JSONL export is one flat object per line — easy to grep and to load
//! into pandas/duckdb. The Chrome export follows the trace-event format's
//! JSON-array flavour, loadable in Perfetto / `chrome://tracing`: each GPU
//! becomes a process and each slice index a thread, so busy intervals show
//! as one track per GPU slice; control-plane decisions appear as instants
//! on a dedicated "control plane" process and the sampled scheduler queue
//! depth as a counter track.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::counters::Counters;
use crate::event::{ObsEvent, SliceRef};
use crate::recorder::{Recording, Stamped};

/// What went wrong writing a trace artifact, and where. The writer-generic
/// `write_*` functions below return plain [`io::Result`]; the path-based
/// exporters wrap their failures in this type so callers can report the
/// offending file without string-matching.
#[derive(Debug)]
pub enum ExportError {
    /// The output file could not be created.
    Create {
        /// The path that failed to open.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// Writing or flushing the artifact failed mid-stream.
    Write {
        /// The path being written.
        path: PathBuf,
        /// The underlying I/O error.
        source: io::Error,
    },
}

impl ExportError {
    /// The path of the artifact that failed.
    pub fn path(&self) -> &Path {
        match self {
            ExportError::Create { path, .. } | ExportError::Write { path, .. } => path,
        }
    }
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExportError::Create { path, source } => {
                write!(f, "cannot create {}: {source}", path.display())
            }
            ExportError::Write { path, source } => {
                write!(f, "cannot write {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ExportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExportError::Create { source, .. } | ExportError::Write { source, .. } => Some(source),
        }
    }
}

/// Runs one buffered export to `path`: creates the file, hands the
/// `BufWriter` to `body`, flushes. Every step maps into a typed
/// [`ExportError`] carrying the path.
fn export_to_path(
    path: &Path,
    body: impl FnOnce(&mut BufWriter<std::fs::File>) -> io::Result<()>,
) -> Result<(), ExportError> {
    let file = std::fs::File::create(path).map_err(|source| ExportError::Create {
        path: path.to_path_buf(),
        source,
    })?;
    let mut w = BufWriter::new(file);
    body(&mut w)
        .and_then(|()| w.flush())
        .map_err(|source| ExportError::Write {
            path: path.to_path_buf(),
            source,
        })
}

/// Writes a recording as JSON lines to `path` (buffered; see
/// [`write_jsonl`] for the format).
pub fn export_jsonl(path: &Path, rec: &Recording) -> Result<(), ExportError> {
    export_to_path(path, |w| write_jsonl(w, rec))
}

/// Writes a recording in Chrome trace-event format to `path` (buffered;
/// see [`write_chrome_trace`] for the mapping).
pub fn export_chrome_trace(path: &Path, rec: &Recording) -> Result<(), ExportError> {
    export_to_path(path, |w| write_chrome_trace(w, rec))
}

/// Writes a recording as JSON lines: one event object per line, followed by
/// a final `counters` summary line.
pub fn write_jsonl<W: Write>(w: &mut W, rec: &Recording) -> io::Result<()> {
    for s in &rec.events {
        write_jsonl_event(w, s)?;
    }
    writeln!(
        w,
        "{{\"kind\":\"counters\",\"dropped\":{},\"counters\":{}}}",
        rec.dropped,
        rec.counters.to_json()
    )
}

fn write_jsonl_event<W: Write>(w: &mut W, s: &Stamped) -> io::Result<()> {
    let fields = s.event.fields_json();
    if fields.is_empty() {
        writeln!(
            w,
            "{{\"kind\":\"{}\",\"t_us\":{},\"seq\":{}}}",
            s.event.kind(),
            s.t_us,
            s.seq
        )
    } else {
        writeln!(
            w,
            "{{\"kind\":\"{}\",\"t_us\":{},\"seq\":{},{}}}",
            s.event.kind(),
            s.t_us,
            s.seq,
            fields
        )
    }
}

/// Process id used for control-plane (non-slice) tracks in the Chrome
/// export. GPU `g` maps to pid `g + 1`.
const CONTROL_PID: u32 = 0;

fn slice_of(ev: &ObsEvent) -> Option<SliceRef> {
    match ev {
        ObsEvent::SliceActive { slice, .. }
        | ObsEvent::SliceIdle { slice }
        | ObsEvent::SliceAllocated { slice, .. }
        | ObsEvent::SliceReleased { slice }
        | ObsEvent::PoolGrow { slice, .. }
        | ObsEvent::PoolShrink { slice }
        | ObsEvent::Eviction { slice, .. } => Some(*slice),
        _ => None,
    }
}

/// Writes a recording in Chrome trace-event JSON-array format.
///
/// Mapping:
/// - metadata (`M`) events name each GPU process and slice thread;
/// - `SliceActive` → `SliceIdle` pairs become complete (`X`) duration
///   events named after the function, one track per GPU slice;
/// - `QueueDepth` samples become a counter (`C`) track;
/// - every other event becomes an instant (`i`) on its slice's track, or on
///   the control-plane process when it has no slice.
pub fn write_chrome_trace<W: Write>(w: &mut W, rec: &Recording) -> io::Result<()> {
    write!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    let mut emit = |w: &mut W, s: &str| -> io::Result<()> {
        if first {
            first = false;
        } else {
            write!(w, ",")?;
        }
        write!(w, "{s}")
    };

    // Name the control-plane process and every slice track that appears.
    emit(
        w,
        &format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{CONTROL_PID},\"tid\":0,\"args\":{{\"name\":\"control plane\"}}}}"
        ),
    )?;
    let mut slices: BTreeSet<(u16, u8)> = BTreeSet::new();
    for s in &rec.events {
        if let Some(sl) = slice_of(&s.event) {
            slices.insert((sl.gpu, sl.index));
        }
    }
    let mut named_gpus: BTreeSet<u16> = BTreeSet::new();
    for &(gpu, index) in &slices {
        let pid = gpu as u32 + 1;
        if named_gpus.insert(gpu) {
            emit(
                w,
                &format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":\"GPU {gpu}\"}}}}"
                ),
            )?;
        }
        emit(
            w,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{index},\"args\":{{\"name\":\"slice {index}\"}}}}"
            ),
        )?;
    }

    // Open SliceActive intervals awaiting their SliceIdle.
    let mut open: HashMap<(u16, u8), (u64, u32, u64)> = HashMap::new();
    let mut last_t = 0u64;
    for s in &rec.events {
        last_t = last_t.max(s.t_us);
        match &s.event {
            ObsEvent::SliceActive { slice, func, req } => {
                open.insert((slice.gpu, slice.index), (s.t_us, *func, *req));
            }
            ObsEvent::SliceIdle { slice } => {
                if let Some((t0, func, req)) = open.remove(&(slice.gpu, slice.index)) {
                    let dur = s.t_us.saturating_sub(t0);
                    emit(
                        w,
                        &format!(
                            "{{\"name\":\"f{func}\",\"cat\":\"exec\",\"ph\":\"X\",\"ts\":{t0},\"dur\":{dur},\"pid\":{},\"tid\":{},\"args\":{{\"func\":{func},\"req\":{req}}}}}",
                            slice.gpu as u32 + 1,
                            slice.index
                        ),
                    )?;
                }
            }
            ObsEvent::QueueDepth { pending } => {
                emit(
                    w,
                    &format!(
                        "{{\"name\":\"sched queue\",\"cat\":\"sched\",\"ph\":\"C\",\"ts\":{},\"pid\":{CONTROL_PID},\"tid\":0,\"args\":{{\"pending\":{pending}}}}}",
                        s.t_us
                    ),
                )?;
            }
            ev => {
                let (pid, tid) = match slice_of(ev) {
                    Some(sl) => (sl.gpu as u32 + 1, sl.index as u32),
                    None => (CONTROL_PID, 0),
                };
                let fields = ev.fields_json();
                let args = if fields.is_empty() {
                    String::from("{}")
                } else {
                    format!("{{{fields}}}")
                };
                emit(
                    w,
                    &format!(
                        "{{\"name\":\"{}\",\"cat\":\"ctrl\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{pid},\"tid\":{tid},\"args\":{args}}}",
                        ev.kind(),
                        s.t_us
                    ),
                )?;
            }
        }
    }

    // Close any interval still open at end of trace.
    let mut leftovers: Vec<_> = open.into_iter().collect();
    leftovers.sort_unstable_by_key(|&(k, _)| k);
    for ((gpu, index), (t0, func, req)) in leftovers {
        let dur = last_t.saturating_sub(t0);
        emit(
            w,
            &format!(
                "{{\"name\":\"f{func}\",\"cat\":\"exec\",\"ph\":\"X\",\"ts\":{t0},\"dur\":{dur},\"pid\":{},\"tid\":{index},\"args\":{{\"func\":{func},\"req\":{req},\"truncated\":true}}}}",
                gpu as u32 + 1
            ),
        )?;
    }

    write!(
        w,
        "],\"otherData\":{{\"dropped\":{},\"counters\":{}}}}}",
        rec.dropped,
        rec.counters.to_json()
    )
}

/// Renders a counter snapshot as a human-oriented multi-line summary.
pub fn format_counter_summary(c: &Counters) -> String {
    format!(
        concat!(
            "requests: {} arrived, {} dispatched, {} completed, {} abandoned ({} SLO violations)\n",
            "plans: {} decisions, plan-cache {} hits / {} misses\n",
            "keep-alive: {} transitions, evictions {} contention / {} expiry\n",
            "fleet: {} launches, {} retirements, {} migrations, {} MIG reconfigs, pool +{}/-{}\n",
            "sched queue depth: last {}, max {}"
        ),
        c.requests_arrived,
        c.requests_dispatched,
        c.requests_completed,
        c.requests_abandoned,
        c.slo_violations,
        c.plan_decisions,
        c.plan_cache_hits,
        c.plan_cache_misses,
        c.keepalive_transitions,
        c.evictions_contention,
        c.evictions_keepalive,
        c.instances_launched,
        c.instances_retired,
        c.migrations,
        c.mig_reconfigs,
        c.pool_grows,
        c.pool_shrinks,
        c.queue_depth_last,
        c.queue_depth_max,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    fn sample_recording() -> Recording {
        let r = Recorder::with_capacity(64);
        r.push(
            0,
            ObsEvent::RunStart {
                invocations: 2,
                gpus: 1,
            },
        );
        r.push(5, ObsEvent::RequestArrived { req: 0, func: 3 });
        r.push(
            10,
            ObsEvent::SliceActive {
                slice: SliceRef::new(0, 2),
                func: 3,
                req: 0,
            },
        );
        r.push(
            30,
            ObsEvent::SliceIdle {
                slice: SliceRef::new(0, 2),
            },
        );
        r.push(31, ObsEvent::QueueDepth { pending: 4 });
        r.push(40, ObsEvent::RunEnd { sim_secs: 0.00004 });
        r.drain()
    }

    #[test]
    fn jsonl_has_one_object_per_line_plus_counters() {
        let rec = sample_recording();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &rec).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), rec.events.len() + 1);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"kind\":\"run_start\""));
        assert!(lines.last().unwrap().contains("\"kind\":\"counters\""));
    }

    #[test]
    fn chrome_trace_pairs_active_idle_into_complete_events() {
        let rec = sample_recording();
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &rec).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with('{') && text.ends_with('}'));
        // The 20 µs busy interval on GPU 0 slice 2 becomes one X event.
        assert!(
            text.contains("\"ph\":\"X\",\"ts\":10,\"dur\":20,\"pid\":1,\"tid\":2"),
            "{text}"
        );
        assert!(text.contains("\"ph\":\"C\""), "{text}");
        assert!(text.contains("\"name\":\"GPU 0\""), "{text}");
        assert!(text.contains("\"name\":\"slice 2\""), "{text}");
    }

    #[test]
    fn chrome_trace_closes_truncated_intervals() {
        let r = Recorder::with_capacity(8);
        r.push(
            10,
            ObsEvent::SliceActive {
                slice: SliceRef::new(1, 0),
                func: 7,
                req: 9,
            },
        );
        r.push(50, ObsEvent::QueueDepth { pending: 1 });
        let rec = r.drain();
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &rec).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"truncated\":true"), "{text}");
    }

    #[test]
    fn path_exporters_report_the_failing_path() {
        let rec = sample_recording();
        let missing = Path::new("/nonexistent-ffs-obs-test-dir/trace.jsonl");
        let err = export_jsonl(missing, &rec).expect_err("directory does not exist");
        assert_eq!(err.path(), missing);
        assert!(matches!(err, ExportError::Create { .. }), "{err:?}");
        assert!(err.to_string().contains("/nonexistent-ffs-obs-test-dir"));
        let err = export_chrome_trace(missing, &rec).expect_err("directory does not exist");
        assert!(matches!(err, ExportError::Create { .. }), "{err:?}");
        use std::error::Error;
        assert!(err.source().is_some(), "underlying io::Error is preserved");
    }

    #[test]
    fn path_exporters_round_trip() {
        let rec = sample_recording();
        let dir = std::env::temp_dir().join("ffs_obs_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        let jsonl = dir.join("t.jsonl");
        export_jsonl(&jsonl, &rec).unwrap();
        let text = std::fs::read_to_string(&jsonl).unwrap();
        assert_eq!(text.lines().count(), rec.events.len() + 1);
        let chrome = dir.join("t.chrome.json");
        export_chrome_trace(&chrome, &rec).unwrap();
        let text = std::fs::read_to_string(&chrome).unwrap();
        assert!(text.starts_with('{') && text.ends_with('}'));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn counter_summary_mentions_cache() {
        let rec = sample_recording();
        let s = format_counter_summary(&rec.counters);
        assert!(s.contains("plan-cache 0 hits / 0 misses"), "{s}");
    }
}
