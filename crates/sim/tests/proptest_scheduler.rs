//! Property tests: the timer-wheel scheduler executes arbitrary event
//! programs in exactly the order of a reference binary-heap scheduler.
//!
//! The reference implementation below is the pre-wheel scheduler: one
//! `BinaryHeap` ordered by `(time, insertion-seq)`. Both schedulers run
//! the same randomly generated program — a mix of absolute pushes (with
//! clustered timestamps to force same-instant ties, window-edge and
//! epoch-crossing gaps), handler-driven chains of `immediately` and
//! `after`, and multi-deadline `run_until` sequences including deadlines
//! that land exactly on event timestamps — and must produce identical
//! `(time, event)` logs, clocks, and pending counts.

use proptest::prelude::*;

use ffs_sim::{run_until, Scheduler, SimDuration, SimTime, StopReason, World};

// ---------------------------------------------------------------------
// Reference scheduler: (time, seq)-ordered BinaryHeap, the exact
// structure the timer wheel replaced.
// ---------------------------------------------------------------------

struct RefScheduled {
    at: u64,
    seq: u64,
    ev: u32,
}

impl PartialEq for RefScheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for RefScheduled {}
impl PartialOrd for RefScheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RefScheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct RefScheduler {
    now: u64,
    seq: u64,
    heap: std::collections::BinaryHeap<RefScheduled>,
}

impl RefScheduler {
    fn at(&mut self, at: u64, ev: u32) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(RefScheduled { at, seq, ev });
    }

    /// Reference `run_until`: pops strictly-before-deadline events in
    /// `(time, seq)` order, feeding each into `chain`, which may schedule
    /// follow-ups exactly like a `World` handler.
    fn run_until(
        &mut self,
        until: u64,
        log: &mut Vec<(u64, u32)>,
        chain: impl Fn(&mut RefScheduler, u64, u32),
    ) -> StopReason {
        loop {
            match self.heap.peek() {
                None => return StopReason::QueueEmpty,
                Some(top) if top.at >= until => {
                    self.now = until;
                    return StopReason::DeadlineReached;
                }
                Some(_) => {}
            }
            let sch = self.heap.pop().expect("peeked non-empty");
            self.now = sch.at;
            log.push((sch.at, sch.ev));
            chain(self, sch.at, sch.ev);
        }
    }
}

// ---------------------------------------------------------------------
// The event program both schedulers execute.
// ---------------------------------------------------------------------

/// The handler chain: some events schedule follow-ups, exercising
/// same-instant `immediately` chains and relative `after` pushes whose
/// deltas cross window and epoch boundaries.
fn chain_spec(ev: u32) -> Option<(u64, u32)> {
    match ev % 7 {
        // Same-instant chain (delta 0): the follow-up must run after every
        // event already queued at this timestamp.
        0 => Some((0, ev + 1000)),
        // Short hop within the L0 window.
        1 => Some((100, ev + 2000)),
        // Exactly one window (4096 µs) ahead.
        2 => Some((4096, ev + 3000)),
        // Beyond the current epoch (> 2^24 µs).
        3 => Some((1 << 25, ev + 4000)),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Fault-injection program: cancellation via tombstones + requeue.
//
// The platform's chaos layer cannot delete events already inside the
// timer wheel; it tombstones the dead target and requeues the work as a
// fresh event (see `fluidfaas::platform::engine`). These tests pin the
// scheduler-level contract that pattern relies on: a tombstone set
// consulted at delivery time, applied identically over the wheel and the
// reference heap, yields identical logs, clocks and pending counts.
// ---------------------------------------------------------------------

/// Canceller ids: `CANCEL_BASE + v` tombstones victim `v` and requeues it.
const CANCEL_BASE: u32 = 10_000;
/// Requeued-copy ids.
const REQUEUE_BASE: u32 = 20_000;
/// Log marker for a victim delivered after its tombstone (skipped work).
const SKIP_BASE: u32 = 30_000;
/// Backoff before a requeued copy runs (µs); off the strata in
/// `arb_time` so requeues interleave with unrelated events.
const REQUEUE_DELAY: u64 = 257;

/// One delivery under the tombstone protocol, shared verbatim by both
/// schedulers. Returns a follow-up `(delay, id)` to schedule, if any.
fn chaos_step(
    now: u64,
    ev: u32,
    tomb: &mut std::collections::HashSet<u32>,
    log: &mut Vec<(u64, u32)>,
) -> Option<(u64, u32)> {
    if (CANCEL_BASE..REQUEUE_BASE).contains(&ev) {
        let victim = ev - CANCEL_BASE;
        log.push((now, ev));
        // First cancellation wins; a duplicate canceller is a no-op (the
        // engine never requeues the same dead instance's work twice).
        if tomb.insert(victim) {
            return Some((REQUEUE_DELAY, REQUEUE_BASE + victim));
        }
        None
    } else if ev >= REQUEUE_BASE {
        log.push((now, ev));
        None
    } else if tomb.contains(&ev) {
        // A tombstoned victim still *arrives* (the wheel has no delete);
        // the handler records it as skipped and does no work.
        log.push((now, SKIP_BASE + ev));
        None
    } else {
        log.push((now, ev));
        None
    }
}

struct ChaosWorld {
    log: Vec<(u64, u32)>,
    tomb: std::collections::HashSet<u32>,
}

impl World for ChaosWorld {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        if let Some((delta, next)) = chaos_step(now.as_micros(), ev, &mut self.tomb, &mut self.log)
        {
            sched.after(SimDuration::from_micros(delta), next);
        }
    }
}

/// Reference `run_until` under the tombstone protocol.
fn ref_run_chaos(
    r: &mut RefScheduler,
    until: u64,
    tomb: &mut std::collections::HashSet<u32>,
    log: &mut Vec<(u64, u32)>,
) -> StopReason {
    loop {
        match r.heap.peek() {
            None => return StopReason::QueueEmpty,
            Some(top) if top.at >= until => {
                r.now = until;
                return StopReason::DeadlineReached;
            }
            Some(_) => {}
        }
        let sch = r.heap.pop().expect("peeked non-empty");
        r.now = sch.at;
        if let Some((delta, next)) = chaos_step(sch.at, sch.ev, tomb, log) {
            r.at(sch.at + delta, next);
        }
    }
}

struct WheelWorld {
    log: Vec<(u64, u32)>,
}

impl World for WheelWorld {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        self.log.push((now.as_micros(), ev));
        // Chain only one generation deep (ids < 1000) so programs stay
        // finite while still exercising handler-driven scheduling.
        if ev < 1000 {
            if let Some((delta, next)) = chain_spec(ev) {
                if delta == 0 {
                    sched.immediately(next);
                } else {
                    sched.after(SimDuration::from_micros(delta), next);
                }
            }
        }
    }
}

fn ref_chain(r: &mut RefScheduler, now: u64, ev: u32) {
    if ev < 1000 {
        if let Some((delta, next)) = chain_spec(ev) {
            r.at(now + delta, next);
        }
    }
}

/// Timestamps drawn to collide often and to straddle the wheel's
/// boundaries: slot-sized, window-sized and epoch-sized strata.
fn arb_time() -> impl Strategy<Value = u64> {
    prop_oneof![
        // Dense cluster inside one L0 window — forces FIFO ties.
        0u64..16,
        // Around the 4096 µs window edge.
        4090u64..4102,
        // Anywhere in the first epoch.
        0u64..(1 << 24),
        // Later epochs (far-heap territory).
        (1u64 << 24)..(1 << 28),
    ]
}

proptest! {
    /// Arbitrary pushes + handler chains execute in identical (time, seq)
    /// order on the wheel and the reference heap.
    #[test]
    fn wheel_matches_reference_heap(times in proptest::collection::vec(arb_time(), 1..40)) {
        let mut wheel_world = WheelWorld { log: vec![] };
        let mut wheel = Scheduler::new();
        let mut reference = RefScheduler::default();
        let mut ref_log = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            wheel.at(SimTime::from_micros(t), i as u32);
            reference.at(t, i as u32);
        }
        let wheel_stop = run_until(&mut wheel_world, &mut wheel, SimTime::MAX);
        let ref_stop = reference.run_until(u64::MAX, &mut ref_log, ref_chain);
        prop_assert_eq!(wheel_stop, ref_stop);
        prop_assert_eq!(&wheel_world.log, &ref_log);
        prop_assert_eq!(wheel.pending(), 0);
    }

    /// Multi-deadline runs agree too, including deadlines that land exactly
    /// on queued timestamps (boundary events stay queued on both sides) and
    /// pushes interleaved between segments.
    #[test]
    fn segmented_runs_match_reference(
        times in proptest::collection::vec(arb_time(), 1..24),
        deadlines in proptest::collection::vec(arb_time(), 1..6),
        extra in proptest::collection::vec(arb_time(), 3),
    ) {
        let mut deadlines = deadlines;
        // Make some deadlines exact event times (index-linked, arbitrary),
        // then sort: run_until deadlines are non-decreasing by contract.
        if let Some(d) = deadlines.first_mut() {
            *d = times[0];
        }
        deadlines.sort_unstable();

        let mut wheel_world = WheelWorld { log: vec![] };
        let mut wheel = Scheduler::new();
        let mut reference = RefScheduler::default();
        let mut ref_log = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            wheel.at(SimTime::from_micros(t), i as u32);
            reference.at(t, i as u32);
        }
        for (k, &until) in deadlines.iter().enumerate() {
            let ws = run_until(&mut wheel_world, &mut wheel, SimTime::from_micros(until));
            let rs = reference.run_until(until, &mut ref_log, ref_chain);
            prop_assert_eq!(ws, rs, "stop reason diverged at deadline {}", k);
            prop_assert_eq!(&wheel_world.log, &ref_log);
            prop_assert_eq!(wheel.now().as_micros(), reference.now);
            prop_assert_eq!(wheel.pending(), reference.heap.len());
            // Interleave a push between segments; past times clamp to now
            // on both sides.
            let t = extra[k % extra.len()];
            let id = 500 + k as u32;
            wheel.at(SimTime::from_micros(t), id);
            reference.at(t, id);
        }
        let ws = run_until(&mut wheel_world, &mut wheel, SimTime::MAX);
        let rs = reference.run_until(u64::MAX, &mut ref_log, ref_chain);
        prop_assert_eq!(ws, rs);
        prop_assert_eq!(&wheel_world.log, &ref_log);
        prop_assert_eq!(wheel.pending(), 0);
    }

    /// The sorted bulk-load path is indistinguishable from individual
    /// pushes of the same sorted batch.
    #[test]
    fn preload_matches_pushes(times in proptest::collection::vec(arb_time(), 1..32)) {
        let mut times = times;
        times.sort_unstable();
        let mut a_world = WheelWorld { log: vec![] };
        let mut a = Scheduler::new();
        a.preload_sorted(
            times
                .iter()
                .enumerate()
                .map(|(i, &t)| (SimTime::from_micros(t), i as u32)),
        );
        let mut b_world = WheelWorld { log: vec![] };
        let mut b = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            b.at(SimTime::from_micros(t), i as u32);
        }
        run_until(&mut a_world, &mut a, SimTime::MAX);
        run_until(&mut b_world, &mut b, SimTime::MAX);
        prop_assert_eq!(&a_world.log, &b_world.log);
    }

    /// Tombstone cancellation + requeue under fault injection: victims,
    /// cancellers (which tombstone a victim and requeue a copy), and
    /// post-tombstone deliveries (skipped) execute identically on the
    /// wheel and the reference heap, across a mid-run deadline.
    #[test]
    fn tombstone_cancellation_matches_reference(
        victims in proptest::collection::vec(arb_time(), 1..24),
        cancels in proptest::collection::vec((arb_time(), 0usize..24), 0..12),
        mid in arb_time(),
    ) {
        let mut world = ChaosWorld { log: vec![], tomb: Default::default() };
        let mut wheel = Scheduler::new();
        let mut reference = RefScheduler::default();
        let mut ref_tomb = std::collections::HashSet::new();
        let mut ref_log = Vec::new();
        for (i, &t) in victims.iter().enumerate() {
            wheel.at(SimTime::from_micros(t), i as u32);
            reference.at(t, i as u32);
        }
        for &(t, k) in &cancels {
            // Cancellers may land before, at, or after their victim's
            // delivery time — all three orders must agree.
            let id = CANCEL_BASE + (k % victims.len()) as u32;
            wheel.at(SimTime::from_micros(t), id);
            reference.at(t, id);
        }
        // Stop mid-run: pending counts must agree while tombstoned
        // victims and requeued copies are still in flight.
        let ws = run_until(&mut world, &mut wheel, SimTime::from_micros(mid));
        let rs = ref_run_chaos(&mut reference, mid, &mut ref_tomb, &mut ref_log);
        prop_assert_eq!(ws, rs);
        prop_assert_eq!(&world.log, &ref_log);
        prop_assert_eq!(wheel.now().as_micros(), reference.now);
        prop_assert_eq!(wheel.pending(), reference.heap.len());
        let ws = run_until(&mut world, &mut wheel, SimTime::MAX);
        let rs = ref_run_chaos(&mut reference, u64::MAX, &mut ref_tomb, &mut ref_log);
        prop_assert_eq!(ws, rs);
        prop_assert_eq!(&world.log, &ref_log);
        prop_assert_eq!(&world.tomb, &ref_tomb);
        prop_assert_eq!(wheel.pending(), 0);
        // Every cancelled victim produced exactly one requeued copy.
        let requeues = world.log.iter().filter(|(_, e)| *e >= REQUEUE_BASE && *e < SKIP_BASE).count();
        prop_assert_eq!(requeues, world.tomb.len());
    }
}
