//! Unit suite for the cross-shard epoch sequencer.
//!
//! The sharded engine's determinism argument leans on three properties of
//! [`Sequencer`]: delivery order is the canonical `(dst, src, seq)` total
//! order regardless of enqueue order, same-epoch ties between sources are
//! broken by source index (and within a source by emission order), and an
//! empty epoch drains without sorting or allocating. Each is pinned here.

use ffs_sim::{Envelope, Sequencer};

fn keys<M>(out: &[Envelope<M>]) -> Vec<(usize, usize, u64)> {
    out.iter().map(|e| (e.dst, e.src, e.seq)).collect()
}

#[test]
fn messages_group_by_destination_in_order() {
    let mut s: Sequencer<u32> = Sequencer::new(4);
    // Interleave destinations to prove grouping is imposed, not inherited.
    s.send(0, 3, 30);
    s.send(0, 1, 10);
    s.send(0, 3, 31);
    s.send(0, 0, 0);
    s.send(0, 2, 20);
    let out = s.drain_epoch();
    assert_eq!(
        keys(&out),
        vec![(0, 0, 3), (1, 0, 1), (2, 0, 4), (3, 0, 0), (3, 0, 2)]
    );
    let payloads: Vec<u32> = out.iter().map(|e| e.msg).collect();
    assert_eq!(payloads, vec![0, 10, 20, 30, 31]);
}

#[test]
fn same_epoch_ties_break_by_source_then_sequence() {
    let mut s: Sequencer<&str> = Sequencer::new(3);
    // Three sources all target shard 1; enqueue in reverse source order so a
    // FIFO would get it wrong.
    s.send(2, 1, "from-2 #0");
    s.send(1, 1, "from-1 #0");
    s.send(0, 1, "from-0 #0");
    s.send(2, 1, "from-2 #1");
    s.send(0, 1, "from-0 #1");
    let out = s.drain_epoch();
    let payloads: Vec<&str> = out.iter().map(|e| e.msg).collect();
    assert_eq!(
        payloads,
        vec![
            "from-0 #0",
            "from-0 #1",
            "from-1 #0",
            "from-2 #0",
            "from-2 #1"
        ]
    );
}

#[test]
fn per_source_emission_order_is_preserved_within_destination() {
    let mut s: Sequencer<u64> = Sequencer::new(2);
    for i in 0..100 {
        s.send(0, 1, i);
    }
    let out = s.drain_epoch();
    let payloads: Vec<u64> = out.iter().map(|e| e.msg).collect();
    assert_eq!(payloads, (0..100).collect::<Vec<_>>());
}

#[test]
fn empty_epoch_fast_path_allocates_nothing() {
    let mut s: Sequencer<String> = Sequencer::new(8);
    for _ in 0..3 {
        let out = s.drain_epoch();
        assert!(out.is_empty());
        assert_eq!(out.capacity(), 0, "empty drain must not allocate");
    }
    assert!(s.is_empty());
    assert_eq!(s.len(), 0);
}

#[test]
fn sequence_counters_reset_between_epochs() {
    let mut s: Sequencer<()> = Sequencer::new(2);
    s.send(0, 1, ());
    s.send(0, 1, ());
    let first = s.drain_epoch();
    assert_eq!(keys(&first), vec![(1, 0, 0), (1, 0, 1)]);

    // A fresh epoch restarts the per-source counter at zero, so the
    // canonical order of an epoch never depends on earlier epochs.
    s.send(0, 1, ());
    let second = s.drain_epoch();
    assert_eq!(keys(&second), vec![(1, 0, 0)]);
}

#[test]
fn drain_is_invariant_to_enqueue_interleaving() {
    // Two enqueue schedules that produce the same per-source message
    // sequences must drain identically, whatever the interleaving.
    let mut a: Sequencer<u32> = Sequencer::new(3);
    a.send(0, 2, 1);
    a.send(1, 2, 2);
    a.send(0, 1, 3);
    a.send(1, 0, 4);

    let mut b: Sequencer<u32> = Sequencer::new(3);
    b.send(1, 2, 2);
    b.send(1, 0, 4);
    b.send(0, 2, 1);
    b.send(0, 1, 3);

    assert_eq!(a.drain_epoch(), b.drain_epoch());
}
