//! Property tests of the event engine's ordering guarantees.

use proptest::prelude::*;

use ffs_sim::{run_until, Scheduler, SimDuration, SimTime, World};

#[derive(Default)]
struct Recorder {
    log: Vec<(SimTime, u32)>,
}

impl World for Recorder {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, _s: &mut Scheduler<u32>) {
        self.log.push((now, ev));
    }
}

proptest! {
    /// Events always execute in non-decreasing time order, and same-time
    /// events in insertion order.
    #[test]
    fn time_order_and_fifo_ties(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut w = Recorder::default();
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.at(SimTime::from_micros(t), i as u32);
        }
        run_until(&mut w, &mut s, SimTime::MAX);
        prop_assert_eq!(w.log.len(), times.len());
        for pair in w.log.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time order");
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1, "FIFO among ties");
            }
        }
    }

    /// Splitting a run at an arbitrary deadline never changes the executed
    /// sequence.
    #[test]
    fn run_splitting_is_transparent(
        times in proptest::collection::vec(0u64..1_000, 1..100),
        split in 0u64..1_000,
    ) {
        let mut w1 = Recorder::default();
        let mut s1 = Scheduler::new();
        let mut w2 = Recorder::default();
        let mut s2 = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s1.at(SimTime::from_micros(t), i as u32);
            s2.at(SimTime::from_micros(t), i as u32);
        }
        run_until(&mut w1, &mut s1, SimTime::MAX);
        run_until(&mut w2, &mut s2, SimTime::from_micros(split));
        run_until(&mut w2, &mut s2, SimTime::MAX);
        prop_assert_eq!(w1.log, w2.log);
    }

    /// `after` never schedules into the past and executed counts match.
    #[test]
    fn after_is_relative(delays in proptest::collection::vec(1u64..10_000, 1..50)) {
        struct Chain {
            delays: Vec<u64>,
            idx: usize,
            last: SimTime,
        }
        impl World for Chain {
            type Event = ();
            fn handle(&mut self, now: SimTime, _ev: (), s: &mut Scheduler<()>) {
                assert!(now >= self.last);
                self.last = now;
                if self.idx < self.delays.len() {
                    s.after(SimDuration::from_micros(self.delays[self.idx]), ());
                    self.idx += 1;
                }
            }
        }
        let total: u64 = delays.iter().sum();
        let n = delays.len();
        let mut w = Chain { delays, idx: 0, last: SimTime::ZERO };
        let mut s = Scheduler::new();
        s.at(SimTime::ZERO, ());
        run_until(&mut w, &mut s, SimTime::MAX);
        prop_assert_eq!(s.executed(), n as u64 + 1);
        prop_assert_eq!(w.last, SimTime::from_micros(total));
    }
}
