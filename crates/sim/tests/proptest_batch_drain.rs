//! Property tests: the batched drive loop (`run_until`, which drains one
//! L0 slot per iteration and dispatches the whole same-timestamp batch
//! under a single clock update) is observationally identical to the
//! per-event loop (`run_until_stepwise`, the pre-batching `pop_next`
//! loop it replaced).
//!
//! Both loops run the same randomly generated program on two independent
//! schedulers and must produce identical `(time, event)` logs, clocks,
//! pending counts and stop reasons. The programs deliberately hit the
//! batch loop's tricky spots:
//!
//! * same-instant pushes from inside a batch (the refreshed slot must be
//!   taken as the *next* batch, after the borrowed one finishes, in seq
//!   order behind its surviving siblings),
//! * past-time pushes that clamp to `now` (joining the in-flight
//!   timestamp from behind),
//! * tombstone cancellation + requeue (delivery-time filtering, exactly
//!   as the chaos layer does it),
//! * deadlines landing exactly on queued timestamps (the boundary batch
//!   stays queued on both sides).

use proptest::prelude::*;

use ffs_sim::{run_until, run_until_stepwise, Scheduler, SimDuration, SimTime, StopReason, World};

/// Canceller ids: `CANCEL_BASE + v` tombstones victim `v` and requeues it.
const CANCEL_BASE: u32 = 10_000;
/// Requeued-copy ids.
const REQUEUE_BASE: u32 = 20_000;
/// Log marker for a victim delivered after its tombstone.
const SKIP_BASE: u32 = 30_000;

/// One delivery of the shared program. Victim/canceller ids follow the
/// tombstone protocol from `proptest_scheduler.rs`; plain ids < 1000
/// additionally chain follow-ups, including same-instant pushes and
/// absolute pushes into the past (which clamp to `now`).
struct Program {
    log: Vec<(u64, u32)>,
    tomb: std::collections::HashSet<u32>,
}

impl Program {
    fn new() -> Self {
        Program {
            log: Vec::new(),
            tomb: Default::default(),
        }
    }

    fn step(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        let t = now.as_micros();
        if (CANCEL_BASE..REQUEUE_BASE).contains(&ev) {
            let victim = ev - CANCEL_BASE;
            self.log.push((t, ev));
            if self.tomb.insert(victim) {
                sched.after(SimDuration::from_micros(257), REQUEUE_BASE + victim);
            }
        } else if ev >= REQUEUE_BASE {
            self.log.push((t, ev));
        } else if self.tomb.contains(&ev) {
            self.log.push((t, SKIP_BASE + ev));
        } else {
            self.log.push((t, ev));
            if ev < 1000 {
                match ev % 5 {
                    // Same-instant follow-up: lands in the slot currently
                    // being drained as a batch; must run *after* every
                    // event already queued at this timestamp.
                    0 => sched.immediately(ev + 1000),
                    // Absolute push into the past: clamps to `now`, i.e.
                    // joins the in-flight timestamp exactly like the
                    // same-instant case.
                    1 => sched.at(
                        SimTime::from_micros(t.saturating_sub(1 + ev as u64)),
                        ev + 2000,
                    ),
                    // Short hop within the L0 window.
                    2 => sched.after(SimDuration::from_micros(100), ev + 3000),
                    // Exactly one window ahead (cursor wrap).
                    3 => sched.after(SimDuration::from_micros(4096), ev + 4000),
                    _ => {}
                }
            }
        }
    }
}

struct ProgramWorld(Program);

impl World for ProgramWorld {
    type Event = u32;
    fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        self.0.step(now, ev, sched);
    }
}

/// The same program behind a nontrivial `kind_of`, so a multi-event batch
/// splits into several kind-homogeneous runs (the default `kind_of` is
/// constant and would hand `handle_run` the whole batch as one run). The
/// custom `handle_run` checks the engine's run contract — every event in
/// a run has the announced kind, runs are never empty — and counts events
/// seen on each dispatch path (single-event batches bypass `handle_run`
/// via the `handle` fast path), while delegating every event to the same
/// `step` as the reference world, so the observable log must stay
/// byte-identical to the per-event loop.
struct KindedWorld {
    program: Program,
    runs: u64,
    run_events: u64,
    single_events: u64,
}

impl World for KindedWorld {
    type Event = u32;

    fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
        self.single_events += 1;
        self.program.step(now, ev, sched);
    }

    fn kind_of(&self, ev: &u32) -> u16 {
        (ev % 3) as u16
    }

    fn handle_run(
        &mut self,
        now: SimTime,
        kind: u16,
        run: std::vec::Drain<'_, u32>,
        sched: &mut Scheduler<u32>,
    ) {
        self.runs += 1;
        let mut len = 0u64;
        for ev in run {
            assert_eq!((ev % 3) as u16, kind, "run is not kind-homogeneous");
            len += 1;
            self.program.step(now, ev, sched);
        }
        assert!(len >= 1, "handle_run called with an empty run");
        self.run_events += len;
    }
}

/// Timestamps drawn to collide often (forcing multi-event batches) and to
/// straddle the wheel's window and epoch boundaries.
fn arb_time() -> impl Strategy<Value = u64> {
    prop_oneof![
        // Dense cluster — most draws share a handful of timestamps, so
        // batches of 3+ events are the common case, not the exception.
        0u64..8,
        // Around the 4096 µs window edge.
        4090u64..4102,
        // Anywhere in the first epoch.
        0u64..(1 << 24),
        // Later epochs (far-heap territory).
        (1u64 << 24)..(1 << 28),
    ]
}

/// Builds the two identically-loaded schedulers for a program.
fn load(victims: &[u64], cancels: &[(u64, usize)]) -> (Scheduler<u32>, Scheduler<u32>) {
    let mut a = Scheduler::new();
    let mut b = Scheduler::new();
    for (i, &t) in victims.iter().enumerate() {
        a.at(SimTime::from_micros(t), i as u32);
        b.at(SimTime::from_micros(t), i as u32);
    }
    for &(t, k) in cancels {
        let id = CANCEL_BASE + (k % victims.len()) as u32;
        a.at(SimTime::from_micros(t), id);
        b.at(SimTime::from_micros(t), id);
    }
    (a, b)
}

proptest! {
    /// Batch drain and per-event drain execute arbitrary programs —
    /// including same-instant chains, past-time clamps and tombstone
    /// requeues — in identical order with identical final state.
    #[test]
    fn batch_drain_matches_stepwise(
        victims in proptest::collection::vec(arb_time(), 1..32),
        cancels in proptest::collection::vec((arb_time(), 0usize..32), 0..10),
    ) {
        let (mut batched, mut stepwise) = load(&victims, &cancels);
        let mut wb = ProgramWorld(Program::new());
        let mut ws = ProgramWorld(Program::new());
        let sb = run_until(&mut wb, &mut batched, SimTime::MAX);
        let ss = run_until_stepwise(&mut ws, &mut stepwise, SimTime::MAX);
        prop_assert_eq!(sb, ss);
        prop_assert_eq!(sb, StopReason::QueueEmpty);
        prop_assert_eq!(&wb.0.log, &ws.0.log);
        prop_assert_eq!(&wb.0.tomb, &ws.0.tomb);
        prop_assert_eq!(batched.now(), stepwise.now());
        prop_assert_eq!(batched.pending(), 0);
        prop_assert_eq!(stepwise.pending(), 0);
        prop_assert_eq!(batched.clamps(), stepwise.clamps());
    }

    /// Kind-grouped dispatch (nontrivial `kind_of`, custom `handle_run`)
    /// stays byte-identical to the per-event loop: splitting batches into
    /// homogeneous runs changes how events are *handed over*, never the
    /// order they execute in.
    #[test]
    fn kinded_dispatch_matches_stepwise(
        victims in proptest::collection::vec(arb_time(), 1..32),
        cancels in proptest::collection::vec((arb_time(), 0usize..32), 0..10),
    ) {
        let (mut batched, mut stepwise) = load(&victims, &cancels);
        let mut wb = KindedWorld {
            program: Program::new(),
            runs: 0,
            run_events: 0,
            single_events: 0,
        };
        let mut ws = ProgramWorld(Program::new());
        let sb = run_until(&mut wb, &mut batched, SimTime::MAX);
        let ss = run_until_stepwise(&mut ws, &mut stepwise, SimTime::MAX);
        prop_assert_eq!(sb, ss);
        prop_assert_eq!(&wb.program.log, &ws.0.log);
        prop_assert_eq!(&wb.program.tomb, &ws.0.tomb);
        prop_assert_eq!(batched.now(), stepwise.now());
        prop_assert_eq!(batched.pending(), 0);
        prop_assert_eq!(batched.clamps(), stepwise.clamps());
        // Every executed event went through exactly one dispatch path:
        // singleton batches via `handle`, multi-event batches via
        // kind-homogeneous `handle_run` calls (so runs never outnumber
        // run events, and each run holds >= 2 events on average only if
        // batches do — the per-run minimum of 1 is asserted inline).
        prop_assert_eq!(
            wb.run_events + wb.single_events,
            wb.program.log.len() as u64
        );
        prop_assert!(wb.runs <= wb.run_events);
    }

    /// Segmented runs agree at every deadline, including deadlines placed
    /// exactly on queued timestamps and pushes interleaved mid-run.
    #[test]
    fn segmented_batch_drain_matches_stepwise(
        victims in proptest::collection::vec(arb_time(), 1..24),
        cancels in proptest::collection::vec((arb_time(), 0usize..24), 0..8),
        deadlines in proptest::collection::vec(arb_time(), 1..5),
        extra in proptest::collection::vec(arb_time(), 3),
    ) {
        let mut deadlines = deadlines;
        // Pin one deadline to an exact event time: the boundary batch must
        // stay queued (strictly-before semantics) on both sides.
        if let Some(d) = deadlines.first_mut() {
            *d = victims[0];
        }
        deadlines.sort_unstable();

        let (mut batched, mut stepwise) = load(&victims, &cancels);
        let mut wb = ProgramWorld(Program::new());
        let mut ws = ProgramWorld(Program::new());
        for (k, &until) in deadlines.iter().enumerate() {
            let until = SimTime::from_micros(until);
            let sb = run_until(&mut wb, &mut batched, until);
            let ss = run_until_stepwise(&mut ws, &mut stepwise, until);
            prop_assert_eq!(sb, ss, "stop reason diverged at deadline {}", k);
            prop_assert_eq!(&wb.0.log, &ws.0.log);
            prop_assert_eq!(batched.now(), stepwise.now());
            prop_assert_eq!(batched.pending(), stepwise.pending());
            // Interleave a push between segments; past times clamp to now
            // identically on both sides.
            let t = SimTime::from_micros(extra[k % extra.len()]);
            let id = 500 + k as u32;
            batched.at(t, id);
            stepwise.at(t, id);
        }
        let sb = run_until(&mut wb, &mut batched, SimTime::MAX);
        let ss = run_until_stepwise(&mut ws, &mut stepwise, SimTime::MAX);
        prop_assert_eq!(sb, ss);
        prop_assert_eq!(&wb.0.log, &ws.0.log);
        prop_assert_eq!(&wb.0.tomb, &ws.0.tomb);
        prop_assert_eq!(batched.pending(), 0);
        prop_assert_eq!(stepwise.pending(), 0);
        prop_assert_eq!(batched.clamps(), stepwise.clamps());
    }
}
