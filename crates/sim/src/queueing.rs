//! Small queueing-theory toolbox: Erlang B/C and M/M/c waiting times.
//!
//! The reactive autoscaler in `fluidfaas` provisions by measured demand
//! versus capacity; a model-based alternative (and several tests) want the
//! classical formulas: given arrival rate λ, service rate μ and `c`
//! servers, what is the probability a request waits, and how long?

/// Offered load in Erlangs: `lambda / mu`.
pub fn offered_load(lambda: f64, mu: f64) -> f64 {
    assert!(mu > 0.0);
    lambda / mu
}

/// Erlang-B blocking probability for `c` servers at offered load `a`
/// (computed by the stable recurrence).
pub fn erlang_b(c: u32, a: f64) -> f64 {
    assert!(a >= 0.0);
    let mut b = 1.0;
    for k in 1..=c {
        b = a * b / (k as f64 + a * b);
    }
    b
}

/// Erlang-C probability that an arrival must wait, for `c` servers at
/// offered load `a`. Returns 1.0 when the system is unstable (`a >= c`).
pub fn erlang_c(c: u32, a: f64) -> f64 {
    if a >= c as f64 {
        return 1.0;
    }
    let b = erlang_b(c, a);
    let rho = a / c as f64;
    b / (1.0 - rho + rho * b)
}

/// Mean waiting time in an M/M/c queue (same units as `1/mu`). `None` when
/// unstable.
pub fn mmc_mean_wait(lambda: f64, mu: f64, c: u32) -> Option<f64> {
    let a = offered_load(lambda, mu);
    if a >= c as f64 {
        return None;
    }
    let pw = erlang_c(c, a);
    Some(pw / (c as f64 * mu - lambda))
}

/// The minimum number of servers for which the probability of waiting is at
/// most `target_pw` (a model-based sizing rule for autoscalers).
pub fn servers_for_wait_probability(lambda: f64, mu: f64, target_pw: f64) -> u32 {
    assert!((0.0..1.0).contains(&target_pw) && target_pw > 0.0);
    let a = offered_load(lambda, mu);
    let mut c = a.ceil().max(1.0) as u32;
    while erlang_c(c, a) > target_pw {
        c += 1;
        debug_assert!(c < 100_000, "sizing diverged");
    }
    c
}

/// The minimum number of servers keeping the mean wait below
/// `target_wait` (same units as `1/mu`).
pub fn servers_for_mean_wait(lambda: f64, mu: f64, target_wait: f64) -> u32 {
    assert!(target_wait > 0.0);
    let a = offered_load(lambda, mu);
    let mut c = (a + 1.0).ceil() as u32;
    loop {
        if let Some(w) = mmc_mean_wait(lambda, mu, c) {
            if w <= target_wait {
                return c;
            }
        }
        c += 1;
        debug_assert!(c < 100_000, "sizing diverged");
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn erlang_b_known_values() {
        // Classic table values: c=10, a=5 -> B ~ 0.018.
        let b = erlang_b(10, 5.0);
        assert!((b - 0.0184).abs() < 0.001, "B {b}");
        // Single server: B = a / (1 + a).
        assert!((erlang_b(1, 2.0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(erlang_b(5, 0.0), 0.0);
    }

    #[test]
    fn erlang_c_known_values() {
        // c=2, a=1 (rho=0.5): C = 1/3.
        let c = erlang_c(2, 1.0);
        assert!((c - 1.0 / 3.0).abs() < 1e-9, "C {c}");
        // Unstable -> certain wait.
        assert_eq!(erlang_c(2, 2.5), 1.0);
        // More servers, less waiting.
        assert!(erlang_c(12, 8.0) < erlang_c(9, 8.0));
    }

    #[test]
    fn mmc_wait_matches_mm1_closed_form() {
        // M/M/1: W_q = rho / (mu - lambda).
        let (lambda, mu) = (0.5, 1.0);
        let w = mmc_mean_wait(lambda, mu, 1).unwrap();
        assert!((w - 0.5 / 0.5).abs() < 1e-9);
        assert_eq!(mmc_mean_wait(2.0, 1.0, 1), None);
    }

    #[test]
    fn sizing_rules_are_minimal() {
        let (lambda, mu) = (40.0, 5.0); // a = 8 Erlangs
        let c = servers_for_wait_probability(lambda, mu, 0.2);
        assert!(erlang_c(c, 8.0) <= 0.2);
        assert!(erlang_c(c - 1, 8.0) > 0.2, "c={c} not minimal");
        let c = servers_for_mean_wait(lambda, mu, 0.05);
        assert!(mmc_mean_wait(lambda, mu, c).unwrap() <= 0.05);
        assert!(mmc_mean_wait(lambda, mu, c - 1).is_none_or(|w| w > 0.05));
    }

    #[test]
    fn sizing_scales_with_load() {
        let low = servers_for_wait_probability(10.0, 5.0, 0.1);
        let high = servers_for_wait_probability(50.0, 5.0, 0.1);
        assert!(high > low);
    }
}
