//! The event loop: a time-ordered queue with deterministic tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A simulated system: receives events, mutates state, schedules more events.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handles one event at simulation time `now`.
    fn handle(&mut self, now: SimTime, ev: Self::Event, sched: &mut Scheduler<Self::Event>);
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first. Ties broken by
        // insertion sequence so execution order is deterministic and FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pending-event set and simulation clock.
///
/// Handlers receive `&mut Scheduler` and may enqueue future events with
/// [`Scheduler::at`] or [`Scheduler::after`]. Scheduling into the past is a
/// logic error and panics in debug builds; in release it clamps to `now`.
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Scheduled<E>>,
    executed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty scheduler with pre-allocated heap space for `cap`
    /// pending events. Callers that know the event volume up front (e.g. a
    /// run over a generated trace) avoid the heap's growth reallocations.
    pub fn with_capacity(cap: usize) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::with_capacity(cap),
            executed: 0,
        }
    }

    /// The current simulation time (the timestamp of the event being
    /// processed, or zero before the first event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedules `ev` at absolute time `at`.
    #[inline]
    pub fn at(&mut self, at: SimTime, ev: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, ev });
    }

    /// Schedules `ev` a relative duration after the current time.
    #[inline]
    pub fn after(&mut self, d: crate::time::SimDuration, ev: E) {
        let at = self.now.saturating_add(d);
        self.at(at, ev);
    }

    /// Schedules `ev` at the current instant (runs after all events already
    /// queued for this instant, preserving FIFO order).
    pub fn immediately(&mut self, ev: E) {
        self.at(self.now, ev);
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.ev))
    }
}

/// Why [`run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained before the deadline.
    QueueEmpty,
    /// The next event lies at or beyond the deadline; it remains queued.
    DeadlineReached,
}

/// Runs the world until the queue empties or the clock reaches `until`.
///
/// Events scheduled exactly at `until` are *not* executed, so consecutive
/// calls with increasing deadlines partition time unambiguously.
pub fn run_until<W: World>(
    world: &mut W,
    sched: &mut Scheduler<W::Event>,
    until: SimTime,
) -> StopReason {
    loop {
        // Peek first: popping and re-queueing a boundary event would give it
        // a fresh sequence number and reorder it behind same-timestamp peers
        // (a bug the engine's property tests guard against).
        match sched.heap.peek() {
            None => return StopReason::QueueEmpty,
            Some(s) if s.at >= until => {
                sched.now = until;
                return StopReason::DeadlineReached;
            }
            Some(_) => {}
        }
        let (at, ev) = sched.pop().expect("peeked non-empty");
        sched.now = at;
        sched.executed += 1;
        // Observability hook: publish the sim clock to the thread-local
        // ambient time (so time-unaware crates can stamp events) and offer a
        // queue-depth sample. Pure observation — world state is untouched, so
        // execution is byte-identical with tracing on or off.
        if ffs_obs::enabled() {
            ffs_obs::set_now_us(at.as_micros());
            ffs_obs::sample_queue_depth(at.as_micros(), sched.heap.len() as u64);
        }
        world.handle(at, ev, sched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct Recorder {
        log: Vec<(SimTime, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.log.push((now, ev));
            if ev == 1 {
                // Chain: event 1 schedules events 10 and 11 at the same instant.
                sched.immediately(10);
                sched.immediately(11);
                sched.after(SimDuration::from_secs(5), 99);
            }
        }
    }

    #[test]
    fn events_run_in_time_order_with_fifo_ties() {
        let mut w = Recorder { log: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::from_secs(2), 2);
        s.at(SimTime::from_secs(1), 1);
        s.at(SimTime::from_secs(2), 3); // same time as 2, inserted later
        let reason = run_until(&mut w, &mut s, SimTime::from_secs(100));
        assert_eq!(reason, StopReason::QueueEmpty);
        let evs: Vec<u32> = w.log.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![1, 10, 11, 2, 3, 99]);
    }

    #[test]
    fn deadline_excludes_boundary_event() {
        let mut w = Recorder { log: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::from_secs(1), 1);
        let reason = run_until(&mut w, &mut s, SimTime::from_secs(6));
        assert_eq!(reason, StopReason::DeadlineReached);
        // Event 99 (at t=6) must still be pending.
        assert_eq!(s.pending(), 1);
        assert_eq!(s.now(), SimTime::from_secs(6));
        // Resuming executes it.
        let reason = run_until(&mut w, &mut s, SimTime::from_secs(7));
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(w.log.last().unwrap().1, 99);
    }

    #[test]
    fn immediately_runs_after_already_queued_same_instant_events() {
        struct W {
            order: Vec<u32>,
        }
        impl World for W {
            type Event = u32;
            fn handle(&mut self, _t: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                self.order.push(ev);
                if ev == 0 {
                    sched.immediately(5);
                }
            }
        }
        let mut w = W { order: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::ZERO, 0);
        s.at(SimTime::ZERO, 1);
        run_until(&mut w, &mut s, SimTime::MAX);
        assert_eq!(w.order, vec![0, 1, 5]);
    }

    #[test]
    fn executed_counter_counts() {
        let mut w = Recorder { log: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::ZERO, 7);
        run_until(&mut w, &mut s, SimTime::MAX);
        assert_eq!(s.executed(), 1);
    }

    #[test]
    fn empty_queue_returns_immediately() {
        let mut w = Recorder { log: vec![] };
        let mut s: Scheduler<u32> = Scheduler::new();
        assert_eq!(
            run_until(&mut w, &mut s, SimTime::from_secs(1)),
            StopReason::QueueEmpty
        );
    }
}
