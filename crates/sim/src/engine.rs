//! The event loop: a time-ordered queue with deterministic tie-breaking.
//!
//! The pending-event set is a two-level hierarchical timer wheel with a
//! binary-heap overflow for far-future events:
//!
//! * **L0** — 4096 slots of 1 µs each, covering the 4096 µs window that
//!   contains the execution frontier. Within the window every slot maps to
//!   exactly one timestamp, so a slot is a plain FIFO queue and FIFO order
//!   *is* insertion-sequence order.
//! * **L1** — 4096 buckets of 4096 µs each, covering the ~16.8 s epoch
//!   that contains the frontier. A bucket holds `(timestamp, event)` pairs
//!   in insertion order and cascades into L0 when the frontier reaches it.
//! * **Far heap** — events beyond the current epoch wait in a
//!   `BinaryHeap` ordered by `(time, seq)` and are transferred into L1
//!   when their epoch begins.
//!
//! Push and pop are O(1) on the steady-state path (bitmap scans over 64
//! words with a one-word summary); only events crossing the epoch horizon
//! pay a heap operation. The structure reproduces the reference
//! binary-heap scheduler's `(time, insertion-seq)` execution order
//! bit-for-bit — see `tests/proptest_scheduler.rs` for the equivalence
//! property and `docs/ARCHITECTURE.md` for the ordering proof sketch.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

use crate::time::SimTime;

/// A simulated system: receives events, mutates state, schedules more events.
pub trait World {
    /// The event alphabet of this world.
    type Event;

    /// Handles one event at simulation time `now`.
    fn handle(&mut self, now: SimTime, ev: Self::Event, sched: &mut Scheduler<Self::Event>);

    /// Grouping key for kind-homogeneous dispatch: [`run_until`] splits
    /// each same-timestamp batch into contiguous runs of equal kind and
    /// hands each run to [`World::handle_run`] in one call. Must be a pure
    /// function of the event (no world state), so grouping never changes
    /// which handler sees which event. The default puts every event in one
    /// kind, which makes grouped dispatch degenerate to the plain loop.
    #[inline]
    fn kind_of(&self, _ev: &Self::Event) -> u16 {
        0
    }

    /// Handles a contiguous run of same-timestamp events that all share
    /// `kind`. Worlds with a wide event alphabet override this to branch on
    /// `kind` once per run instead of once per event. Implementations must
    /// consume the whole iterator **in order** and treat each event exactly
    /// as [`World::handle`] would — unconsumed events are silently dropped
    /// when the `Drain` drops. The default is the per-event reference loop.
    fn handle_run(
        &mut self,
        now: SimTime,
        kind: u16,
        run: std::vec::Drain<'_, Self::Event>,
        sched: &mut Scheduler<Self::Event>,
    ) {
        let _ = kind;
        for ev in run {
            self.handle(now, ev, sched);
        }
    }
}

/// Process-wide count of events executed by [`run_until`] (all schedulers,
/// all threads); the benchmark harness derives `events_per_sec` from it.
static EXECUTED_EVENTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread slice of [`EXECUTED_EVENTS`], so a parallel harness can
    /// attribute events to the worker that executed them.
    static THREAD_EXECUTED: Cell<u64> = const { Cell::new(0) };
}

/// Total events executed through [`run_until`] in this process so far.
pub fn process_executed_events() -> u64 {
    EXECUTED_EVENTS.load(AtomicOrdering::Relaxed)
}

/// Events executed through [`run_until`] on the *calling thread* so far.
/// Workers snapshot this around their run loop to report per-thread skew.
pub fn thread_executed_events() -> u64 {
    THREAD_EXECUTED.with(|c| c.get())
}

/// Batch-size distribution (events per drained timestamp), published to
/// the telemetry registry. The handle is cached in a `OnceLock` so the
/// per-batch cost is one load; the one-time registration happens outside
/// any measured zero-allocation window (during warm-up).
fn batch_events_hist() -> &'static ffs_telemetry::Log2Histogram {
    static HIST: std::sync::OnceLock<&'static ffs_telemetry::Log2Histogram> =
        std::sync::OnceLock::new();
    HIST.get_or_init(|| {
        ffs_telemetry::histogram(
            "ffs_sim_batch_events",
            "Events drained per timestamp batch by run_until",
        )
    })
}

#[inline]
fn note_executed(n: u64) {
    if n > 0 {
        EXECUTED_EVENTS.fetch_add(n, AtomicOrdering::Relaxed);
        THREAD_EXECUTED.with(|c| c.set(c.get() + n));
    }
}

struct Scheduled<E> {
    at: u64,
    seq: u64,
    ev: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first. Ties broken by
        // insertion sequence so execution order is deterministic and FIFO.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// log2 of the slot count per wheel level.
const LEVEL_BITS: u32 = 12;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Slot-index mask.
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Per-slot FIFO capacity pre-allocated at construction, so steady-state
/// pushes into a fresh slot do not allocate (the zero-allocation hot-path
/// guarantee measured by `fluidfaas`'s counting-allocator test).
const SLOT_PREALLOC: usize = 4;

/// A 4096-bit occupancy map: 64 words plus a one-word summary of which
/// words are non-zero, so the earliest occupied slot is two `ctz`s away.
struct Bitmap {
    words: [u64; SLOTS / 64],
    summary: u64,
}

impl Bitmap {
    fn new() -> Self {
        Bitmap {
            words: [0; SLOTS / 64],
            summary: 0,
        }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i >> 6] |= 1 << (i & 63);
        self.summary |= 1 << (i >> 6);
    }

    #[inline]
    fn clear(&mut self, i: usize) {
        let w = i >> 6;
        self.words[w] &= !(1 << (i & 63));
        if self.words[w] == 0 {
            self.summary &= !(1 << w);
        }
    }

    /// Index of the first set bit, if any.
    #[inline]
    fn first(&self) -> Option<usize> {
        if self.summary == 0 {
            return None;
        }
        let w = self.summary.trailing_zeros() as usize;
        Some((w << 6) | self.words[w].trailing_zeros() as usize)
    }
}

/// The pending-event set and simulation clock.
///
/// Handlers receive `&mut Scheduler` and may enqueue future events with
/// [`Scheduler::at`] or [`Scheduler::after`]. Scheduling into the past is a
/// logic error: the timestamp clamps to `now` and the clamp is counted
/// ([`Scheduler::clamps`], surfaced process-wide through
/// `ffs_obs::schedule_clamps`) so the bug is visible in release builds too.
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    executed: u64,
    pending: usize,
    clamps: u64,
    /// The L0 window's index: `frontier_time >> 12`. Slot `s` of `l0`
    /// holds events at exactly `(l0_window << 12) | s`.
    l0_window: u64,
    /// The L1 epoch's index: `frontier_time >> 24` (`== l0_window >> 12`).
    /// Bucket `b` of `l1` holds events in window `(epoch << 12) | b`.
    epoch: u64,
    l0: Vec<VecDeque<E>>,
    l0_bits: Bitmap,
    l1: Vec<Vec<(u64, E)>>,
    l1_bits: Bitmap,
    far: BinaryHeap<Scheduled<E>>,
    /// Pre-sorted far-future events ([`Scheduler::preload_sorted`]),
    /// consumed front-to-back at epoch advances. Entries carry seqs below
    /// every dynamically pushed event (preload happens on a fresh
    /// scheduler), so draining the stream before the heap at each epoch
    /// advance reproduces exact `(time, seq)` order without paying a heap
    /// push + pop per preloaded event. Invariant: every stream entry lies
    /// strictly beyond the current epoch.
    stream: VecDeque<(u64, E)>,
    /// Recycled buffer [`run_until`] bulk-drains each batch into before
    /// dispatching it ([`Scheduler::drain_front_into`]). Owned here so its
    /// grown capacity survives across batches and pooled-scheduler reuse
    /// (the zero-allocation hot path); always empty between calls.
    batch_scratch: Vec<E>,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Creates an empty scheduler with pre-allocated far-heap space for
    /// `cap` pending events. Callers that know the event volume up front
    /// (e.g. a run over a generated trace) avoid growth reallocations.
    pub fn with_capacity(cap: usize) -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            executed: 0,
            pending: 0,
            clamps: 0,
            l0_window: 0,
            epoch: 0,
            l0: (0..SLOTS)
                .map(|_| VecDeque::with_capacity(SLOT_PREALLOC))
                .collect(),
            l0_bits: Bitmap::new(),
            l1: (0..SLOTS)
                .map(|_| Vec::with_capacity(SLOT_PREALLOC))
                .collect(),
            l1_bits: Bitmap::new(),
            far: BinaryHeap::with_capacity(cap),
            stream: VecDeque::new(),
            batch_scratch: Vec::with_capacity(SLOT_PREALLOC),
        }
    }

    /// Returns the scheduler to its freshly constructed state while keeping
    /// every container's grown capacity: occupied wheel slots are cleared
    /// bitmap-first (O(live), not O(4096)), cursors and counters reset to
    /// zero. A pooled scheduler reset this way is indistinguishable from a
    /// new one — same `seq` stream, same cursor positions — so reuse across
    /// runs is bit-exact (the arena-reuse determinism test pins this down).
    pub fn reset(&mut self) {
        while let Some(s) = self.l0_bits.first() {
            self.l0[s].clear();
            self.l0_bits.clear(s);
        }
        while let Some(b) = self.l1_bits.first() {
            self.l1[b].clear();
            self.l1_bits.clear(b);
        }
        self.far.clear();
        self.stream.clear();
        self.batch_scratch.clear();
        self.now = SimTime::ZERO;
        self.seq = 0;
        self.executed = 0;
        self.pending = 0;
        self.clamps = 0;
        self.l0_window = 0;
        self.epoch = 0;
    }

    /// Total element capacity retained across the scheduler's containers.
    /// The arena-growth test asserts this stays flat once a pooled
    /// scheduler has seen its peak load.
    pub fn retained_capacity(&self) -> usize {
        let l0: usize = self.l0.iter().map(|q| q.capacity()).sum();
        let l1: usize = self.l1.iter().map(|b| b.capacity()).sum();
        l0 + l1 + self.far.capacity() + self.stream.capacity() + self.batch_scratch.capacity()
    }

    /// Bulk-loads a time-sorted batch of events (e.g. a trace's arrivals)
    /// into the scheduler. Equivalent to calling [`Scheduler::at`] for each
    /// item in order, but far-future items wait in a FIFO stream instead of
    /// the overflow heap, so the whole batch costs O(1) per event instead
    /// of O(log n) twice.
    ///
    /// # Panics
    /// Panics if the scheduler is not fresh (events were already scheduled)
    /// or if the items are not sorted by nondecreasing time — both are
    /// required for the stream's seq-order shortcut to be exact.
    pub fn preload_sorted<I: IntoIterator<Item = (SimTime, E)>>(&mut self, items: I) {
        assert_eq!(self.seq, 0, "preload requires a fresh scheduler");
        let mut last = 0u64;
        for (at, ev) in items {
            let at = at.as_micros();
            assert!(at >= last, "preload items must be sorted by time");
            last = at;
            self.stream.push_back((at, ev));
            self.seq += 1;
            self.pending += 1;
        }
        // Pull the epoch-0 prefix down into the wheel so the invariant
        // (stream entries lie strictly beyond the current epoch) holds
        // from the start. Routing window-0 entries straight into L0 is
        // safe only here: the scheduler is fresh, so nothing can already
        // sit in L1's first bucket ahead of them.
        while let Some(&(at, _)) = self.stream.front() {
            if at >> (2 * LEVEL_BITS) != self.epoch {
                break;
            }
            let (at, ev) = self.stream.pop_front().expect("peeked non-empty");
            if at >> LEVEL_BITS == self.l0_window {
                let s = (at & SLOT_MASK) as usize;
                self.l0[s].push_back(ev);
                self.l0_bits.set(s);
            } else {
                let b = ((at >> LEVEL_BITS) & SLOT_MASK) as usize;
                self.l1[b].push((at, ev));
                self.l1_bits.set(b);
            }
        }
    }

    /// Moves every stream entry belonging to the current epoch into L1.
    /// Used at epoch advances, where heap entries of the same window also
    /// land in L1: keeping both in the bucket preserves the "everything in
    /// L0 precedes everything in L1" pop order, and the bucket cascade
    /// restores per-timestamp seq order (stream entries enter first).
    fn drain_stream_for_epoch(&mut self) {
        while let Some(&(at, _)) = self.stream.front() {
            if at >> (2 * LEVEL_BITS) != self.epoch {
                break;
            }
            let (at, ev) = self.stream.pop_front().expect("peeked non-empty");
            let b = ((at >> LEVEL_BITS) & SLOT_MASK) as usize;
            self.l1[b].push((at, ev));
            self.l1_bits.set(b);
        }
    }

    /// The current simulation time (the timestamp of the event being
    /// processed, or zero before the first event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Number of past-scheduling attempts that were clamped to `now`.
    pub fn clamps(&self) -> u64 {
        self.clamps
    }

    /// Schedules `ev` at absolute time `at`.
    #[inline]
    pub fn at(&mut self, at: SimTime, ev: E) {
        let at = if at < self.now {
            // Scheduling into the past is a logic error; clamp to `now`
            // and count it so the bug is visible outside debug builds.
            self.clamps += 1;
            ffs_obs::note_schedule_clamp();
            self.now
        } else {
            at
        };
        let seq = self.seq;
        self.seq += 1;
        self.push_event(at.as_micros(), seq, ev);
    }

    /// Schedules `ev` a relative duration after the current time.
    #[inline]
    pub fn after(&mut self, d: crate::time::SimDuration, ev: E) {
        let at = self.now.saturating_add(d);
        self.at(at, ev);
    }

    /// Schedules `ev` at the current instant (runs after all events already
    /// queued for this instant, preserving FIFO order).
    pub fn immediately(&mut self, ev: E) {
        self.at(self.now, ev);
    }

    /// Routes one event into the level its distance from the frontier
    /// selects. Invariants relied on: `at >= now >= l0_window << 12`, so a
    /// timestamp is never behind the cursor of the level it lands in.
    #[inline]
    fn push_event(&mut self, at: u64, seq: u64, ev: E) {
        self.pending += 1;
        if at >> LEVEL_BITS == self.l0_window {
            let s = (at & SLOT_MASK) as usize;
            self.l0[s].push_back(ev);
            self.l0_bits.set(s);
        } else if at >> (2 * LEVEL_BITS) == self.epoch {
            let b = ((at >> LEVEL_BITS) & SLOT_MASK) as usize;
            self.l1[b].push((at, ev));
            self.l1_bits.set(b);
        } else {
            self.far.push(Scheduled { at, seq, ev });
        }
    }

    /// The timestamp of the next event without disturbing any cursor
    /// (deadline checks must not cascade: a deadline between the frontier
    /// and the next event would otherwise strand later inserts behind an
    /// advanced cursor).
    #[inline]
    fn next_time(&self) -> Option<u64> {
        // Everything in L0 precedes everything in L1 precedes the heap, and
        // L1 buckets are mutually ordered, so the first occupied container
        // decides; only within one L1 bucket are timestamps unordered.
        if let Some(s) = self.l0_bits.first() {
            return Some((self.l0_window << LEVEL_BITS) | s as u64);
        }
        if let Some(b) = self.l1_bits.first() {
            return self.l1[b].iter().map(|&(at, _)| at).min();
        }
        // Both far containers hold only events beyond the current epoch,
        // so a plain minimum suffices.
        match (self.far.peek().map(|s| s.at), self.stream.front()) {
            (Some(h), Some(&(s, _))) => Some(h.min(s)),
            (Some(h), None) => Some(h),
            (None, Some(&(s, _))) => Some(s),
            (None, None) => None,
        }
    }

    /// Pops the earliest event, advancing cursors and cascading as needed.
    fn pop_next(&mut self) -> Option<(u64, E)> {
        let s = self.advance_to_l0()?;
        let q = &mut self.l0[s];
        let ev = q.pop_front().expect("occupied slot");
        if q.is_empty() {
            self.l0_bits.clear(s);
        }
        self.pending -= 1;
        Some(((self.l0_window << LEVEL_BITS) | s as u64, ev))
    }

    /// Advances to the earliest pending timestamp and moves its entire L0
    /// slot into `into` in FIFO (= seq) order, returning the timestamp and
    /// event count. One cursor walk and one bulk `VecDeque` drain replace
    /// the batch's n repeated [`Scheduler::pop_next`] calls (each of which
    /// re-found the first set bit), which is what makes batch extraction
    /// O(n) with a single bitmap touch.
    ///
    /// Equivalent to popping the slot's current events one at a time: the
    /// slot holds exactly one timestamp, handlers can only push at
    /// `t >= now`, so events pushed at this timestamp *during* dispatch
    /// land in the (now empty) slot with larger seqs and form the next
    /// batch — exactly single-step `(time, insertion-seq)` order.
    fn drain_front_into(&mut self, into: &mut Vec<E>) -> Option<(u64, usize)> {
        let s = self.advance_to_l0()?;
        let q = &mut self.l0[s];
        let n = q.len();
        into.extend(q.drain(..));
        self.l0_bits.clear(s);
        self.pending -= n;
        Some(((self.l0_window << LEVEL_BITS) | s as u64, n))
    }

    /// Advances cursors (cascading L1 buckets / the far containers) until
    /// the earliest pending event sits in L0; returns its slot index, or
    /// `None` if nothing is pending. Cascades happen only here — between an
    /// advance and the next insert opportunity — which is what keeps
    /// per-timestamp FIFO order intact: every event an advance moves
    /// downward was scheduled (smaller seq) before any event inserted after
    /// the advance.
    fn advance_to_l0(&mut self) -> Option<usize> {
        loop {
            if let Some(s) = self.l0_bits.first() {
                return Some(s);
            }
            if let Some(b) = self.l1_bits.first() {
                // Advance the L0 window to this bucket and cascade it.
                self.l0_window = (self.epoch << LEVEL_BITS) | b as u64;
                self.l1_bits.clear(b);
                let mut bucket = std::mem::take(&mut self.l1[b]);
                for (at, ev) in bucket.drain(..) {
                    debug_assert_eq!(at >> LEVEL_BITS, self.l0_window);
                    let s = (at & SLOT_MASK) as usize;
                    self.l0[s].push_back(ev);
                    self.l0_bits.set(s);
                }
                // Hand the (empty) buffer back so the bucket keeps its
                // grown capacity for the next epoch's cascade.
                self.l1[b] = bucket;
                continue;
            }
            let far_epoch = self.far.peek().map(|s| s.at >> (2 * LEVEL_BITS));
            let stream_epoch = self.stream.front().map(|&(at, _)| at >> (2 * LEVEL_BITS));
            let new_epoch = match (far_epoch, stream_epoch) {
                (Some(h), Some(s)) => h.min(s),
                (Some(h), None) => h,
                (None, Some(s)) => s,
                (None, None) => return None,
            };
            // Advance the epoch and transfer its events into L1: stream
            // first (its seqs all precede every dynamically pushed event),
            // then the heap, whose pops come out in (time, seq) order. Each
            // bucket therefore receives its same-timestamp events in seq
            // order — and any event inserted after this transfer carries a
            // larger seq still.
            self.epoch = new_epoch;
            self.l0_window = new_epoch << LEVEL_BITS;
            self.drain_stream_for_epoch();
            while let Some(top) = self.far.peek() {
                if top.at >> (2 * LEVEL_BITS) != new_epoch {
                    break;
                }
                let sch = self.far.pop().expect("peeked non-empty");
                let b = ((sch.at >> LEVEL_BITS) & SLOT_MASK) as usize;
                self.l1[b].push((sch.at, sch.ev));
                self.l1_bits.set(b);
            }
        }
    }
}

/// Why [`run_until`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained before the deadline.
    QueueEmpty,
    /// The next event lies at or beyond the deadline; it remains queued.
    DeadlineReached,
}

/// Runs the world until the queue empties or the clock reaches `until`,
/// draining the wheel a *batch* (one L0 slot = one timestamp) at a time.
///
/// Events scheduled exactly at `until` are *not* executed, so consecutive
/// calls with increasing deadlines partition time unambiguously. Deadlines
/// across calls on one scheduler must be non-decreasing: the wheel's
/// window/epoch cursors only move forward, so rewinding the clock would
/// let later pushes land behind them.
///
/// Batch drain is bit-exact with the single-step loop
/// ([`run_until_stepwise`], kept as the executable reference):
/// an L0 slot holds exactly one timestamp in FIFO (= seq) order; handlers
/// can only schedule at `t >= now` (past times clamp to `now`), so events
/// pushed mid-batch at the batch's own timestamp land in the emptied slot
/// with larger seqs and are taken as the *next* batch before the frontier
/// moves — `(time, insertion-seq)` order is preserved exactly. The win is
/// amortisation: one deadline probe, one clock update, one obs flush, and
/// one bulk slot drain per timestamp instead of per event.
///
/// Within a batch, events are dispatched as contiguous *kind-homogeneous
/// runs*: consecutive events with equal [`World::kind_of`] go to one
/// [`World::handle_run`] call, letting the world branch on the event kind
/// (and open its per-dispatch telemetry) once per run instead of once per
/// event. Runs never reorder events — they are contiguous sub-slices of
/// the batch, dispatched and consumed in batch order — so grouping is
/// invisible to execution semantics (pinned by the batch-equivalence
/// property tests).
pub fn run_until<W: World>(
    world: &mut W,
    sched: &mut Scheduler<W::Event>,
    until: SimTime,
) -> StopReason {
    debug_assert!(
        until >= sched.now,
        "run_until deadlines must be non-decreasing"
    );
    // Profile the wheel machinery (probe / cursor / batch extraction) as
    // WheelDrain self-time; the per-run BatchDispatch child below
    // subtracts handler time out of it. One guard per call, one per
    // run — never per event.
    let _drain = ffs_telemetry::span(ffs_telemetry::Phase::WheelDrain);
    let telemetry = ffs_telemetry::enabled();
    let executed_at_entry = sched.executed;
    let until_us = until.as_micros();
    // The scratch is owned by the scheduler (capacity survives batches and
    // pooled reuse) but moved out for the call so handlers' `&mut sched`
    // cannot alias the buffer being drained.
    let mut batch = std::mem::take(&mut sched.batch_scratch);
    debug_assert!(batch.is_empty());
    let reason = loop {
        // Probe first: advancing cursors for (or popping and re-queueing) a
        // boundary event would reorder it behind same-timestamp peers (a
        // bug the engine's property tests guard against).
        match sched.next_time() {
            None => break StopReason::QueueEmpty,
            Some(t) if t >= until_us => {
                sched.now = until;
                break StopReason::DeadlineReached;
            }
            Some(_) => {}
        }
        let (at_us, n) = sched
            .drain_front_into(&mut batch)
            .expect("probed non-empty");
        let at = SimTime::from_micros(at_us);
        sched.now = at;
        sched.executed += n as u64;
        // Observability hook, once per batch: publish the sim clock to the
        // thread-local ambient time (so time-unaware crates can stamp
        // events) and offer a queue-depth sample (of what remains beyond
        // this batch). Pure observation — world state is untouched, so
        // execution is byte-identical with tracing on or off.
        if ffs_obs::enabled() {
            ffs_obs::set_now_us(at_us);
            ffs_obs::sample_queue_depth(at_us, sched.pending as u64);
        }
        if telemetry {
            batch_events_hist().record(n as u64);
        }
        // The overwhelmingly common case on µs-grained traces is a batch
        // of one (arrival times rarely collide). Dispatch it straight
        // through `handle` — by the trait contract identical to a
        // one-event run — skipping the kind scan and `Drain` machinery,
        // which cost more than they amortise on a single event.
        if n == 1 {
            let ev = batch.pop().expect("counted batch event");
            let _dispatch = ffs_telemetry::span(ffs_telemetry::Phase::BatchDispatch);
            world.handle(at, ev, sched);
            continue;
        }
        // Dispatch the batch front-to-back as kind-homogeneous runs.
        // `drain(..len)` shifts the remainder to the front, so the run
        // boundary scan always restarts at index 0; multi-kind batches are
        // rare and small, so the shift cost is noise next to the saved
        // per-event branching.
        while !batch.is_empty() {
            let kind = world.kind_of(&batch[0]);
            let mut len = 1;
            while len < batch.len() && world.kind_of(&batch[len]) == kind {
                len += 1;
            }
            let _dispatch = ffs_telemetry::span(ffs_telemetry::Phase::BatchDispatch);
            world.handle_run(at, kind, batch.drain(..len), sched);
        }
    };
    // Hand the (empty) scratch back so its capacity is retained. A handler
    // panic drops it instead, leaving the default empty Vec — consistent,
    // just cold.
    sched.batch_scratch = batch;
    note_executed(sched.executed - executed_at_entry);
    reason
}

/// The one-event-at-a-time reference loop [`run_until`] batched. Kept
/// public so the batch-equivalence property test and the hotpath benches
/// can compare against it; semantics (stop conditions, clock, counters)
/// are identical, only the drain granularity differs.
pub fn run_until_stepwise<W: World>(
    world: &mut W,
    sched: &mut Scheduler<W::Event>,
    until: SimTime,
) -> StopReason {
    debug_assert!(
        until >= sched.now,
        "run_until deadlines must be non-decreasing"
    );
    let executed_at_entry = sched.executed;
    let reason = loop {
        match sched.next_time() {
            None => break StopReason::QueueEmpty,
            Some(t) if t >= until.as_micros() => {
                sched.now = until;
                break StopReason::DeadlineReached;
            }
            Some(_) => {}
        }
        let (at_us, ev) = sched.pop_next().expect("probed non-empty");
        let at = SimTime::from_micros(at_us);
        sched.now = at;
        sched.executed += 1;
        if ffs_obs::enabled() {
            ffs_obs::set_now_us(at_us);
            ffs_obs::sample_queue_depth(at_us, sched.pending as u64);
        }
        world.handle(at, ev, sched);
    };
    note_executed(sched.executed - executed_at_entry);
    reason
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct Recorder {
        log: Vec<(SimTime, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
            self.log.push((now, ev));
            if ev == 1 {
                // Chain: event 1 schedules events 10 and 11 at the same instant.
                sched.immediately(10);
                sched.immediately(11);
                sched.after(SimDuration::from_secs(5), 99);
            }
        }
    }

    #[test]
    fn events_run_in_time_order_with_fifo_ties() {
        let mut w = Recorder { log: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::from_secs(2), 2);
        s.at(SimTime::from_secs(1), 1);
        s.at(SimTime::from_secs(2), 3); // same time as 2, inserted later
        let reason = run_until(&mut w, &mut s, SimTime::from_secs(100));
        assert_eq!(reason, StopReason::QueueEmpty);
        let evs: Vec<u32> = w.log.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![1, 10, 11, 2, 3, 99]);
    }

    #[test]
    fn deadline_excludes_boundary_event() {
        let mut w = Recorder { log: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::from_secs(1), 1);
        let reason = run_until(&mut w, &mut s, SimTime::from_secs(6));
        assert_eq!(reason, StopReason::DeadlineReached);
        // Event 99 (at t=6) must still be pending.
        assert_eq!(s.pending(), 1);
        assert_eq!(s.now(), SimTime::from_secs(6));
        // Resuming executes it.
        let reason = run_until(&mut w, &mut s, SimTime::from_secs(7));
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(w.log.last().unwrap().1, 99);
    }

    #[test]
    fn immediately_runs_after_already_queued_same_instant_events() {
        struct W {
            order: Vec<u32>,
        }
        impl World for W {
            type Event = u32;
            fn handle(&mut self, _t: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                self.order.push(ev);
                if ev == 0 {
                    sched.immediately(5);
                }
            }
        }
        let mut w = W { order: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::ZERO, 0);
        s.at(SimTime::ZERO, 1);
        run_until(&mut w, &mut s, SimTime::MAX);
        assert_eq!(w.order, vec![0, 1, 5]);
    }

    #[test]
    fn executed_counter_counts() {
        let mut w = Recorder { log: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::ZERO, 7);
        run_until(&mut w, &mut s, SimTime::MAX);
        assert_eq!(s.executed(), 1);
    }

    #[test]
    fn empty_queue_returns_immediately() {
        let mut w = Recorder { log: vec![] };
        let mut s: Scheduler<u32> = Scheduler::new();
        assert_eq!(
            run_until(&mut w, &mut s, SimTime::from_secs(1)),
            StopReason::QueueEmpty
        );
    }

    #[test]
    fn far_future_events_cross_epochs_in_order() {
        // Spread events across L0, L1 and the far heap (the L1 span is
        // ~16.8 s), with a same-timestamp tie in the far region.
        struct Plain {
            log: Vec<(SimTime, u32)>,
        }
        impl World for Plain {
            type Event = u32;
            fn handle(&mut self, now: SimTime, ev: u32, _sched: &mut Scheduler<u32>) {
                self.log.push((now, ev));
            }
        }
        let mut w = Plain { log: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::from_secs(40), 4);
        s.at(SimTime::from_micros(10), 0);
        s.at(SimTime::from_secs(40), 5); // same instant as 4, later insert
        s.at(SimTime::from_secs(20), 3);
        s.at(SimTime::from_millis(8), 2);
        s.at(SimTime::from_micros(10), 1); // ties with 0 within one L0 slot
        let reason = run_until(&mut w, &mut s, SimTime::MAX);
        assert_eq!(reason, StopReason::QueueEmpty);
        let evs: Vec<u32> = w.log.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(s.executed(), 6);
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn deadline_at_window_and_epoch_boundaries() {
        // A deadline falling on an exact 4096 µs window edge (and beyond
        // the current epoch) must not strand or reorder events.
        let mut w = Recorder { log: vec![] };
        let mut s = Scheduler::new();
        let window_edge = SimTime::from_micros(4096);
        s.at(window_edge, 7);
        assert_eq!(
            run_until(&mut w, &mut s, window_edge),
            StopReason::DeadlineReached
        );
        assert!(w.log.is_empty(), "boundary event must stay queued");
        // An insert at the deadline instant lands behind the queued peer.
        s.at(window_edge, 8);
        run_until(&mut w, &mut s, SimTime::MAX);
        let evs: Vec<u32> = w.log.iter().map(|&(_, e)| e).collect();
        assert_eq!(evs, vec![7, 8]);
    }

    #[test]
    fn past_scheduling_clamps_and_counts() {
        struct W {
            log: Vec<(SimTime, u32)>,
        }
        impl World for W {
            type Event = u32;
            fn handle(&mut self, now: SimTime, ev: u32, sched: &mut Scheduler<u32>) {
                self.log.push((now, ev));
                if ev == 1 {
                    // A logic error: schedule one second into the past.
                    sched.at(now - SimDuration::from_secs(1), 2);
                }
            }
        }
        let before = ffs_obs::schedule_clamps();
        let mut w = W { log: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::from_secs(5), 1);
        run_until(&mut w, &mut s, SimTime::MAX);
        // The clamped event ran at `now`, not in the past, and was counted.
        assert_eq!(
            w.log,
            vec![(SimTime::from_secs(5), 1), (SimTime::from_secs(5), 2)]
        );
        assert_eq!(s.clamps(), 1);
        assert_eq!(ffs_obs::schedule_clamps(), before + 1);
    }

    #[test]
    fn preload_matches_individual_pushes() {
        struct Plain {
            log: Vec<(SimTime, u32)>,
        }
        impl World for Plain {
            type Event = u32;
            fn handle(&mut self, now: SimTime, ev: u32, _sched: &mut Scheduler<u32>) {
                self.log.push((now, ev));
            }
        }
        // Times span L0, L1 and several epochs, with duplicates.
        let times: Vec<SimTime> = [0u64, 0, 10, 4096, 5000, 5000, 20_000_000, 40_000_000_000]
            .iter()
            .map(|&us| SimTime::from_micros(us))
            .collect();
        let mut via_preload = Plain { log: vec![] };
        let mut s1 = Scheduler::new();
        s1.preload_sorted(times.iter().enumerate().map(|(i, &t)| (t, i as u32)));
        // A dynamic push tying with a preloaded timestamp runs after it.
        s1.at(SimTime::from_micros(5000), 90);
        assert_eq!(s1.pending(), times.len() + 1);
        run_until(&mut via_preload, &mut s1, SimTime::MAX);

        let mut via_at = Plain { log: vec![] };
        let mut s2 = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s2.at(t, i as u32);
        }
        s2.at(SimTime::from_micros(5000), 90);
        run_until(&mut via_at, &mut s2, SimTime::MAX);

        assert_eq!(via_preload.log, via_at.log);
        assert_eq!(s1.pending(), 0);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn preload_rejects_unsorted_input() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.preload_sorted(vec![(SimTime::from_secs(2), 0), (SimTime::from_secs(1), 1)]);
    }

    #[test]
    fn batch_and_stepwise_drains_agree() {
        // The Recorder chains events (same-instant pushes mid-batch and a
        // far-future push), exercising the refreshed-slot re-take path.
        let seed_times = [2u64, 1, 2, 1_000_000, 1_000_000];
        let drive = |batched: bool| {
            let mut w = Recorder { log: vec![] };
            let mut s = Scheduler::new();
            for (i, &us) in seed_times.iter().enumerate() {
                s.at(
                    SimTime::from_micros(us),
                    if i == 1 { 1 } else { i as u32 + 20 },
                );
            }
            let r = if batched {
                run_until(&mut w, &mut s, SimTime::MAX)
            } else {
                run_until_stepwise(&mut w, &mut s, SimTime::MAX)
            };
            (w.log, r, s.executed(), s.pending(), s.now())
        };
        assert_eq!(drive(true), drive(false));
    }

    #[test]
    fn reset_restores_fresh_scheduler_semantics() {
        let mut w = Recorder { log: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::from_secs(1), 1);
        s.at(SimTime::from_secs(100), 2); // left pending past the deadline
        run_until(&mut w, &mut s, SimTime::from_secs(50));
        assert!(s.pending() > 0);
        let cap = s.retained_capacity();

        s.reset();
        assert_eq!(s.pending(), 0);
        assert_eq!(s.executed(), 0);
        assert_eq!(s.now(), SimTime::ZERO);
        assert_eq!(s.retained_capacity(), cap, "reset must keep capacity");

        // A reset scheduler accepts preload again (requires seq == 0) and
        // replays identically to a fresh one.
        let replay = |s: &mut Scheduler<u32>| {
            s.preload_sorted([(SimTime::from_micros(7), 5), (SimTime::from_secs(30), 6)]);
            s.at(SimTime::from_micros(7), 7);
            let mut w = Recorder { log: vec![] };
            run_until(&mut w, s, SimTime::MAX);
            w.log
        };
        let reused = replay(&mut s);
        let fresh = replay(&mut Scheduler::new());
        assert_eq!(reused, fresh);
    }

    #[test]
    fn process_event_counter_accumulates() {
        let before = process_executed_events();
        let mut w = Recorder { log: vec![] };
        let mut s = Scheduler::new();
        s.at(SimTime::ZERO, 3);
        s.at(SimTime::from_millis(1), 4);
        run_until(&mut w, &mut s, SimTime::MAX);
        assert!(process_executed_events() >= before + 2);
    }
}
