//! # ffs-sim — deterministic discrete-event simulation engine
//!
//! The FluidFaaS reproduction replays hours of serverless invocation traces
//! against a modelled GPU cluster. Doing that in wall-clock time is
//! infeasible, so every platform in this workspace (FluidFaaS itself and the
//! ESG / INFless baselines) is driven by the discrete-event engine in this
//! crate.
//!
//! The engine is deliberately small and strict:
//!
//! * **Integer time.** [`SimTime`] and [`SimDuration`] are microsecond
//!   counters. Floating-point simulation clocks make event ordering depend on
//!   rounding; integer clocks do not.
//! * **Total event order.** Ties at the same timestamp are broken by a
//!   monotonically increasing sequence number, so a simulation run is a pure
//!   function of its inputs.
//! * **Deterministic randomness.** [`rng::SimRng`] is a seeded, splittable
//!   xoshiro256++ generator. Every stochastic component in the workspace
//!   draws from an explicitly seeded stream.
//!
//! ```
//! use ffs_sim::{Scheduler, SimDuration, SimTime, World, run_until};
//!
//! struct Counter(u64);
//! impl World for Counter {
//!     type Event = ();
//!     fn handle(&mut self, now: SimTime, _ev: (), sched: &mut Scheduler<()>) {
//!         self.0 += 1;
//!         if self.0 < 10 {
//!             sched.after(SimDuration::from_millis(5), ());
//!         }
//!         let _ = now;
//!     }
//! }
//!
//! let mut world = Counter(0);
//! let mut sched = Scheduler::new();
//! sched.at(SimTime::ZERO, ());
//! run_until(&mut world, &mut sched, SimTime::from_secs(1));
//! assert_eq!(world.0, 10);
//! ```

#![warn(clippy::unwrap_used)]

pub mod engine;
pub mod queueing;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;

pub use engine::{
    process_executed_events, run_until, run_until_stepwise, thread_executed_events, Scheduler,
    StopReason, World,
};
pub use rng::SimRng;
pub use shard::{Envelope, Sequencer};
pub use stats::{OnlineStats, TimeWeightedMean};
pub use time::{SimDuration, SimTime};
