//! Small online statistics used across the workspace.

use crate::time::{SimDuration, SimTime};

/// Welford online mean / variance accumulator.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation: `std / mean` (Eq. 1 of the paper). Returns 0
    /// for an empty or zero-mean sample.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Coefficient of variation of a slice: `std(xs) / mean(xs)`.
///
/// This is Equation 1 of the FluidFaaS paper, used to rank pipeline
/// partitions by balance (lower is more balanced).
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let mut s = OnlineStats::new();
    for &x in xs {
        s.push(x);
    }
    s.cv()
}

/// Time-weighted mean of a piecewise-constant signal.
///
/// Used for utilization metrics: feed it `(time, new_value)` transitions and
/// it integrates value-over-time.
#[derive(Clone, Debug)]
pub struct TimeWeightedMean {
    start: SimTime,
    last_t: SimTime,
    last_v: f64,
    integral: f64,
}

impl TimeWeightedMean {
    /// Creates an integrator starting at `start` with initial value `v0`.
    pub fn new(start: SimTime, v0: f64) -> Self {
        TimeWeightedMean {
            start,
            last_t: start,
            last_v: v0,
            integral: 0.0,
        }
    }

    /// Records that the signal changed to `v` at time `t`.
    pub fn set(&mut self, t: SimTime, v: f64) {
        debug_assert!(t >= self.last_t, "time must be monotone");
        self.integral += self.last_v * t.saturating_since(self.last_t).as_secs_f64();
        self.last_t = t;
        self.last_v = v;
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.last_v
    }

    /// Mean value over `[start, t]`.
    pub fn mean_until(&self, t: SimTime) -> f64 {
        let total: SimDuration = t.saturating_since(self.start);
        if total.is_zero() {
            return self.last_v;
        }
        let integral = self.integral + self.last_v * t.saturating_since(self.last_t).as_secs_f64();
        integral / total.as_secs_f64()
    }

    /// Integral of the signal over `[start, t]`, in value-seconds.
    pub fn integral_until(&self, t: SimTime) -> f64 {
        self.integral + self.last_v * t.saturating_since(self.last_t).as_secs_f64()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert!((s.cv() - 0.4).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn cv_of_balanced_stages_is_zero() {
        assert_eq!(coefficient_of_variation(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn cv_prefers_balanced_partitions() {
        // [10, 10, 10] is more balanced than [25, 2.5, 2.5].
        let balanced = coefficient_of_variation(&[10.0, 10.0, 10.0]);
        let skewed = coefficient_of_variation(&[25.0, 2.5, 2.5]);
        assert!(balanced < skewed);
    }

    #[test]
    fn time_weighted_mean_integrates() {
        let mut m = TimeWeightedMean::new(SimTime::ZERO, 0.0);
        m.set(SimTime::from_secs(10), 1.0); // 0 for 10s
        m.set(SimTime::from_secs(20), 0.5); // 1 for 10s
                                            // then 0.5 for 10s → integral = 0 + 10 + 5 = 15 over 30s
        assert!((m.mean_until(SimTime::from_secs(30)) - 0.5).abs() < 1e-12);
        assert!((m.integral_until(SimTime::from_secs(30)) - 15.0).abs() < 1e-9);
        assert_eq!(m.current(), 0.5);
    }

    #[test]
    fn time_weighted_mean_zero_span() {
        let m = TimeWeightedMean::new(SimTime::from_secs(5), 2.0);
        assert_eq!(m.mean_until(SimTime::from_secs(5)), 2.0);
    }
}
