//! Deterministic cross-shard message sequencing for lock-stepped epochs.
//!
//! The sharded engine advances every shard independently between epoch
//! boundaries and exchanges cross-shard traffic only *at* boundaries. For
//! the whole run to stay a pure function of `(trace, config, seed)` —
//! regardless of how many worker lanes execute the shards — the exchange
//! must impose a canonical order on the messages of an epoch that does not
//! depend on which lane produced them first in wall-clock time.
//!
//! [`Sequencer`] provides that order. Senders enqueue messages during the
//! (serial) boundary exchange; each message is stamped with its source
//! shard and a per-source sequence number. [`Sequencer::drain_epoch`]
//! returns the epoch's messages sorted by `(dst, src, seq)`:
//!
//! * **`dst` major** — each destination shard receives its deliveries as
//!   one contiguous group, so application can proceed shard by shard.
//! * **`src` then `seq`** — within a destination, messages arrive in
//!   source-shard order, and messages from one source arrive in the order
//!   that source emitted them. Both components are derived from simulation
//!   state, never from thread scheduling, so the triple is a total order
//!   and two runs that produce the same message multiset apply it
//!   identically.
//!
//! The empty-epoch fast path matters: most epochs carry no cross-shard
//! traffic, and draining an empty sequencer is a branch, not a sort or an
//! allocation.

/// One cross-shard message, stamped with its canonical ordering key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Source shard index.
    pub src: usize,
    /// Destination shard index.
    pub dst: usize,
    /// Position among the messages `src` emitted this epoch (from 0).
    pub seq: u64,
    /// The payload.
    pub msg: M,
}

/// Collects one epoch's cross-shard messages and hands them back in the
/// canonical `(dst, src, seq)` delivery order.
#[derive(Debug)]
pub struct Sequencer<M> {
    shards: usize,
    outbox: Vec<Envelope<M>>,
    next_seq: Vec<u64>,
}

impl<M> Sequencer<M> {
    /// A sequencer for `shards` shards (indices `0..shards`).
    pub fn new(shards: usize) -> Self {
        Sequencer {
            shards,
            outbox: Vec::new(),
            next_seq: vec![0; shards],
        }
    }

    /// Number of shards this sequencer routes between.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Enqueues a message from `src` to `dst` for delivery at the next
    /// epoch boundary. Panics if either index is out of range.
    pub fn send(&mut self, src: usize, dst: usize, msg: M) {
        assert!(src < self.shards, "src shard {src} out of range");
        assert!(dst < self.shards, "dst shard {dst} out of range");
        let seq = self.next_seq[src];
        self.next_seq[src] += 1;
        self.outbox.push(Envelope { src, dst, seq, msg });
    }

    /// Messages queued for the current epoch.
    pub fn len(&self) -> usize {
        self.outbox.len()
    }

    /// True when no message is queued (the common case).
    pub fn is_empty(&self) -> bool {
        self.outbox.is_empty()
    }

    /// Ends the epoch: returns all queued messages sorted by
    /// `(dst, src, seq)` and resets the per-source sequence counters. The
    /// empty epoch returns without sorting or allocating.
    pub fn drain_epoch(&mut self) -> Vec<Envelope<M>> {
        if self.outbox.is_empty() {
            return Vec::new();
        }
        self.next_seq.fill(0);
        let mut out = std::mem::take(&mut self.outbox);
        // The key is unique per envelope (per-src seqs never repeat within
        // an epoch), so an unstable sort is still deterministic.
        out.sort_unstable_by_key(|e| (e.dst, e.src, e.seq));
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn per_source_sequence_numbers_count_up() {
        let mut s: Sequencer<&str> = Sequencer::new(3);
        s.send(1, 0, "a");
        s.send(1, 2, "b");
        s.send(0, 2, "c");
        let out = s.drain_epoch();
        let seqs: Vec<(usize, u64)> = out.iter().map(|e| (e.src, e.seq)).collect();
        assert!(seqs.contains(&(1, 0)) && seqs.contains(&(1, 1)) && seqs.contains(&(0, 0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_destination_panics() {
        let mut s: Sequencer<u8> = Sequencer::new(2);
        s.send(0, 2, 0);
    }
}
