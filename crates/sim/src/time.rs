//! Integer simulation time.
//!
//! Simulation clocks based on `f64` make the order of same-instant events
//! depend on floating-point rounding, which destroys reproducibility. All
//! times in this workspace are microsecond counters wrapped in newtypes so
//! instants and durations cannot be confused.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant on the simulation clock, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant, used as an "infinity" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimTime(0)
        } else {
            SimTime((s * MICROS_PER_SEC as f64).round() as u64)
        }
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The duration since an earlier instant, saturating at zero if `earlier`
    /// is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * MICROS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
        }
    }

    /// Creates a duration from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1_000.0)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration in milliseconds as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a non-negative float, rounding to the nearest
    /// microsecond.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0, "duration scale must be non-negative");
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "subtracting a later SimTime");
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "subtracting a longer SimDuration");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "subtracting a longer SimDuration");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    /// Ratio of two durations.
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MICROS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_mins(2).as_micros(), 120_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_micros(), 500_000);
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
    }

    #[test]
    fn negative_float_inputs_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(-0.5), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!(t + d, SimTime::from_secs(14));
        assert_eq!((t + d) - t, d);
        assert_eq!(t - d, SimTime::from_secs(6));
        assert_eq!(d * 3, SimDuration::from_secs(12));
        assert_eq!(d / 2, SimDuration::from_secs(2));
        assert!((d / SimDuration::from_secs(8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d.mul_f64(1.26), SimDuration::from_micros(13));
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(3)
            ]
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "250.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
    }
}
