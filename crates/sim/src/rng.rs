//! Deterministic, splittable random number generation.
//!
//! The `rand` crate's default generators do not guarantee a stable stream
//! across versions, and sharing one generator between components makes the
//! draw order (and thus the whole simulation) fragile to refactoring. This
//! module provides [`SimRng`], a xoshiro256++ generator seeded through
//! SplitMix64, with a [`SimRng::split`] operation so each component of the
//! simulation owns an independent deterministic stream.

use rand::RngCore;

/// SplitMix64 step, used for seeding and stream derivation.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ random number generator.
///
/// Implements [`rand::RngCore`], so it composes with `rand_distr`
/// distributions while keeping the byte stream under this crate's control.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The seed is expanded through SplitMix64 as recommended by the
    /// xoshiro authors, so nearby seeds produce unrelated streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator identified by `stream`.
    ///
    /// Two children with different stream ids, or the same stream id from
    /// generators with different seeds, produce unrelated sequences. The
    /// parent generator is not advanced, so adding a new `split` call never
    /// perturbs existing streams.
    pub fn split(&self, stream: u64) -> SimRng {
        let mut sm =
            self.s[0] ^ self.s[2].rotate_left(17) ^ stream.wrapping_mul(0xA24BAED4963EE407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit output (xoshiro256++).
    #[inline]
    pub fn next_raw(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0,1).
        (self.next_raw() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift rejection method.
        let mut x = self.next_raw();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_raw();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform float in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponentially distributed draw with the given mean.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF; guard against ln(0).
        let u = 1.0 - self.f64();
        -mean * u.ln()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_raw() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next_raw()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_raw().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_raw().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_raw(), b.next_raw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_raw() == b.next_raw()).count();
        assert!(same < 2, "streams from different seeds should be unrelated");
    }

    #[test]
    fn split_streams_are_independent_and_stable() {
        let root = SimRng::seed_from_u64(7);
        let mut c1 = root.split(0);
        let mut c2 = root.split(1);
        let mut c1_again = root.split(0);
        let first = c1.next_raw();
        assert_eq!(first, c1_again.next_raw(), "split is a pure function");
        assert_ne!(first, c2.next_raw(), "different streams differ");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut r = SimRng::seed_from_u64(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.below(10) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} not uniform");
        }
    }

    #[test]
    fn exp_has_requested_mean() {
        let mut r = SimRng::seed_from_u64(9);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exp(2.5)).sum::<f64>() / n as f64;
        assert!(
            (mean - 2.5).abs() < 0.05,
            "exp mean {mean} too far from 2.5"
        );
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut r = SimRng::seed_from_u64(13);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(17);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
