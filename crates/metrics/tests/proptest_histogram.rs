//! Property tests for [`LogHistogram`]: sharded aggregation must be
//! indistinguishable from centralized recording.
//!
//! The parallel harness scores each run on its own worker and merges the
//! per-run histograms afterwards, so `merge` has to commute with
//! recording: a histogram built by merging per-shard histograms must
//! answer every query exactly like one fed the concatenated sample
//! stream. Bucket-derived queries (count, max, percentiles, CDF) are
//! exact; only the mean is floating-point and allowed rounding slack.
//! The `to_log2` telemetry bridge must likewise commute with merging.

use ffs_metrics::LogHistogram;
use proptest::prelude::*;

/// Builds one histogram per shard plus one over the concatenation.
fn build(shards: &[Vec<f64>]) -> (LogHistogram, LogHistogram) {
    let mut merged = LogHistogram::for_latency_ms();
    for shard in shards {
        let mut h = LogHistogram::for_latency_ms();
        for &v in shard {
            h.record(v);
        }
        merged.merge(&h);
    }
    let mut whole = LogHistogram::for_latency_ms();
    for v in shards.iter().flatten() {
        whole.record(*v);
    }
    (merged, whole)
}

proptest! {
    /// Merge of per-shard histograms == histogram of the concatenated
    /// samples, for every query the metrics layer asks.
    #[test]
    fn merge_of_shards_matches_concatenated_samples(
        shards in proptest::collection::vec(
            proptest::collection::vec(0.0f64..2000.0, 0..48),
            1..6,
        ),
    ) {
        let (merged, whole) = build(&shards);
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.max(), whole.max());
        for q in [0.0, 0.01, 0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.percentile(q), whole.percentile(q), "q={}", q);
        }
        for x in [0.05, 1.0, 50.0, 500.0, 1999.0, 5000.0] {
            prop_assert_eq!(
                merged.fraction_below(x),
                whole.fraction_below(x),
                "x={}", x
            );
        }
        // The sums are accumulated in different orders, so the means may
        // differ by floating-point rounding only.
        prop_assert!(
            (merged.mean() - whole.mean()).abs() <= 1e-9 * (1.0 + whole.mean()),
            "merged mean {} vs whole {}", merged.mean(), whole.mean()
        );
    }

    /// The telemetry bridge commutes with merging exactly: bridging the
    /// merged histogram equals merging the per-shard bridges (bucket
    /// representatives depend only on bucket index, and the log2 side is
    /// all integer arithmetic).
    #[test]
    fn to_log2_commutes_with_merge(
        shards in proptest::collection::vec(
            proptest::collection::vec(0.0f64..2000.0, 0..32),
            1..5,
        ),
    ) {
        let (merged, _) = build(&shards);
        let bridged = merged.to_log2(1e6);
        let folded = ffs_telemetry::Log2Histogram::new();
        for shard in &shards {
            let mut h = LogHistogram::for_latency_ms();
            for &v in shard {
                h.record(v);
            }
            folded.merge(&h.to_log2(1e6));
        }
        prop_assert_eq!(bridged.count(), folded.count());
        prop_assert_eq!(bridged.sum(), folded.sum());
        let a = bridged.bucket_counts();
        let b = folded.bucket_counts();
        prop_assert!(a.iter().eq(b.iter()), "bucket counts diverge");
    }
}
