//! Property tests for Jain's fairness index (`ffs_metrics::tenant`).
//!
//! The fairness experiments rank systems by this scalar, so its shape
//! properties matter: identical tenants must score exactly 1.0, the index
//! must live in `(0, 1]`, it must be scale-invariant (doubling every
//! tenant's throughput changes nothing), and skewing service toward one
//! tenant must never *increase* it.

use ffs_metrics::jain_index;
use proptest::prelude::*;

proptest! {
    /// n identical positive allocations score exactly 1.0 (up to fp
    /// rounding), regardless of n or the common value.
    #[test]
    fn identical_tenants_score_one(
        n in 1usize..64,
        x in 0.001f64..1_000.0,
    ) {
        let alloc = vec![x; n];
        prop_assert!((jain_index(&alloc) - 1.0).abs() < 1e-12);
    }

    /// The index is bounded by (0, 1] for any non-degenerate allocation,
    /// and bounded below by 1/n.
    #[test]
    fn index_is_bounded(
        alloc in proptest::collection::vec(0.0f64..1_000.0, 1..64),
    ) {
        let j = jain_index(&alloc);
        prop_assert!(j > 0.0 && j <= 1.0 + 1e-12, "j = {}", j);
        if alloc.iter().any(|&x| x > 0.0) {
            prop_assert!(j >= 1.0 / alloc.len() as f64 - 1e-12);
        }
    }

    /// Scale invariance: multiplying every allocation by a positive
    /// constant leaves the index unchanged.
    #[test]
    fn index_is_scale_invariant(
        alloc in proptest::collection::vec(0.001f64..1_000.0, 1..32),
        k in 0.01f64..100.0,
    ) {
        let scaled: Vec<f64> = alloc.iter().map(|x| x * k).collect();
        let a = jain_index(&alloc);
        let b = jain_index(&scaled);
        prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }

    /// Monotone under throughput skew: starting from equal allocations,
    /// progressively transferring service from one tenant to another
    /// never increases the index. (Transfer = the canonical
    /// Robin-Hood-in-reverse step; Jain's index is Schur-concave, so each
    /// step can only lower it.)
    #[test]
    fn skew_never_increases_index(
        n in 2usize..16,
        base in 1.0f64..100.0,
        steps in 1usize..20,
    ) {
        let mut alloc = vec![base; n];
        let mut prev = jain_index(&alloc);
        prop_assert!((prev - 1.0).abs() < 1e-12);
        let delta = base / steps as f64 / 2.0;
        for _ in 0..steps {
            // Move `delta` from the poorest-served tenant (index 1) to
            // the hog (index 0): strictly more skew each step.
            alloc[0] += delta;
            alloc[1] -= delta;
            let j = jain_index(&alloc);
            prop_assert!(j <= prev + 1e-12, "index rose: {} -> {}", prev, j);
            prev = j;
        }
        prop_assert!(prev < 1.0, "skewed allocation still scored 1.0");
    }
}
