//! GPU-time / MIG-time cost accounting (§6, Table 6) and the
//! occupied-vs-active percentages of Figure 5.
//!
//! Definitions from the paper: *GPU time* is the total time a GPU is
//! active, even if only one slice is used; *MIG time* measures the active
//! time of individual slices. For Figure 5 we additionally distinguish a
//! slice being *occupied* (allocated to an instance, i.e. kept alive) from
//! being *actively used* (processing a request) — the gap between the two
//! is the waste caused by exclusive keep-alive.

use ffs_sim::{SimDuration, SimTime};

/// Identifies a slice for accounting: (GPU index, slice index).
pub type SliceKey = (u16, u8);

/// Dense per-slice slots per GPU. MIG exposes at most 7 compute
/// instances per GPU, so 8 keeps `gpu * STRIDE + index` collision-free;
/// the tables grow on demand if a layout ever exceeds it.
const SLICE_STRIDE: usize = 8;

#[inline]
fn slot(key: SliceKey) -> usize {
    debug_assert!((key.1 as usize) < SLICE_STRIDE, "slice index over stride");
    key.0 as usize * SLICE_STRIDE + key.1 as usize
}

/// Tracks allocation and activity intervals for a fleet.
#[derive(Clone, Debug)]
pub struct CostTracker {
    start: SimTime,
    num_gpus: usize,
    /// Allocated-slice count per GPU (drives "GPU time").
    alloc_count: Vec<u32>,
    gpu_busy_since: Vec<Option<SimTime>>,
    gpu_time: Vec<SimDuration>,
    /// Allocation start per slice (drives "MIG time" / occupied), with the
    /// slice's GPC weight for compute-normalized cost. Dense, indexed by
    /// [`slot`] — the per-stage hooks are the metrics hot path.
    occupied_since: Vec<Option<(SimTime, u32)>>,
    occupied_total: Vec<SimDuration>,
    occupied_gpc_secs: Vec<f64>,
    /// Activity start per slice (drives "actively used"), indexed by
    /// [`slot`].
    active_since: Vec<Option<SimTime>>,
    active_total: Vec<SimDuration>,
    /// Negative intervals clamped to zero (see [`CostTracker::clamps`]).
    clamps: u64,
}

/// Finalised cost report.
#[derive(Clone, Debug, PartialEq)]
pub struct CostReport {
    /// Per-GPU "GPU time" in seconds.
    pub gpu_time_secs: Vec<f64>,
    /// Per-GPU occupied MIG-seconds (sum over the GPU's slices).
    pub occupied_secs: Vec<f64>,
    /// Per-GPU occupied GPC-seconds (slice-seconds weighted by slice GPCs).
    pub occupied_gpc_secs: Vec<f64>,
    /// Per-GPU actively-used MIG-seconds.
    pub active_secs: Vec<f64>,
    /// Observation window in seconds.
    pub window_secs: f64,
}

impl CostReport {
    /// Total GPU time across the fleet.
    pub fn total_gpu_time_secs(&self) -> f64 {
        self.gpu_time_secs.iter().sum()
    }

    /// Total MIG (occupied) time across the fleet.
    pub fn total_mig_time_secs(&self) -> f64 {
        self.occupied_secs.iter().sum()
    }

    /// Total GPC-weighted MIG time across the fleet (compute-seconds
    /// actually reserved).
    pub fn total_mig_gpc_secs(&self) -> f64 {
        self.occupied_gpc_secs.iter().sum()
    }

    /// Total actively-used MIG time across the fleet.
    pub fn total_active_secs(&self) -> f64 {
        self.active_secs.iter().sum()
    }

    /// Figure 5's per-GPU occupied percentage: occupied MIG-seconds divided
    /// by the GPU's total slice-seconds (`slices * window`). Requires the
    /// per-GPU slice count.
    pub fn occupied_pct(&self, gpu: usize, slices_on_gpu: usize) -> f64 {
        if self.window_secs == 0.0 || slices_on_gpu == 0 {
            return 0.0;
        }
        self.occupied_secs[gpu] / (slices_on_gpu as f64 * self.window_secs) * 100.0
    }

    /// Figure 5's per-GPU actively-used percentage.
    pub fn active_pct(&self, gpu: usize, slices_on_gpu: usize) -> f64 {
        if self.window_secs == 0.0 || slices_on_gpu == 0 {
            return 0.0;
        }
        self.active_secs[gpu] / (slices_on_gpu as f64 * self.window_secs) * 100.0
    }
}

impl CostTracker {
    /// Creates a tracker for `num_gpus` GPUs, starting at `start`.
    pub fn new(num_gpus: usize, start: SimTime) -> Self {
        CostTracker {
            start,
            num_gpus,
            alloc_count: vec![0; num_gpus],
            gpu_busy_since: vec![None; num_gpus],
            gpu_time: vec![SimDuration::ZERO; num_gpus],
            occupied_since: vec![None; num_gpus * SLICE_STRIDE],
            occupied_total: vec![SimDuration::ZERO; num_gpus],
            occupied_gpc_secs: vec![0.0; num_gpus],
            active_since: vec![None; num_gpus * SLICE_STRIDE],
            active_total: vec![SimDuration::ZERO; num_gpus],
            clamps: 0,
        }
    }

    /// Negative intervals this tracker clamped to zero (an interval's end
    /// preceded its start). Always zero in a fault-free run — a nonzero
    /// count there indicates an event-ordering bug, so the engine
    /// `debug_assert!`s on it; fault injection legitimately clamps when
    /// failures cut intervals short.
    pub fn clamps(&self) -> u64 {
        self.clamps
    }

    /// Measures `end - start` saturating at zero, counting the clamp (both
    /// locally and via the process-wide `ffs_obs::metric_clamps` counter)
    /// when the interval is negative instead of silently masking it.
    #[inline]
    fn interval(&mut self, end: SimTime, start: SimTime) -> SimDuration {
        if end < start {
            self.clamps += 1;
            ffs_obs::note_metric_clamp();
        }
        end.saturating_since(start)
    }

    /// Records that a slice with `gpcs` compute units was allocated to an
    /// instance at `t`.
    pub fn slice_allocated(&mut self, t: SimTime, key: SliceKey, gpcs: u32) {
        let gpu = key.0 as usize;
        debug_assert!(gpu < self.num_gpus);
        let i = slot(key);
        if i >= self.occupied_since.len() {
            self.occupied_since.resize(i + 1, None);
            self.active_since.resize(i + 1, None);
        }
        let prev = self.occupied_since[i].replace((t, gpcs));
        debug_assert!(prev.is_none(), "double allocation of {key:?}");
        if self.alloc_count[gpu] == 0 {
            self.gpu_busy_since[gpu] = Some(t);
        }
        self.alloc_count[gpu] += 1;
    }

    /// Records that a slice was released at `t`.
    pub fn slice_released(&mut self, t: SimTime, key: SliceKey) {
        let gpu = key.0 as usize;
        if let Some((since, gpcs)) = self
            .occupied_since
            .get_mut(slot(key))
            .and_then(Option::take)
        {
            let d = self.interval(t, since);
            self.occupied_total[gpu] += d;
            self.occupied_gpc_secs[gpu] += d.as_secs_f64() * gpcs as f64;
        } else {
            debug_assert!(false, "release of unallocated {key:?}");
        }
        // Activity implicitly ends with the allocation.
        self.slice_idle(t, key);
        debug_assert!(self.alloc_count[gpu] > 0);
        self.alloc_count[gpu] -= 1;
        if self.alloc_count[gpu] == 0 {
            if let Some(since) = self.gpu_busy_since[gpu].take() {
                let d = self.interval(t, since);
                self.gpu_time[gpu] += d;
            }
        }
    }

    /// Records that a slice began processing a request at `t`. Idempotent
    /// while already active.
    pub fn slice_active(&mut self, t: SimTime, key: SliceKey) {
        let i = slot(key);
        if i >= self.active_since.len() {
            self.occupied_since.resize(i + 1, None);
            self.active_since.resize(i + 1, None);
        }
        self.active_since[i].get_or_insert(t);
    }

    /// Records that a slice stopped processing at `t`. Idempotent while
    /// already idle.
    pub fn slice_idle(&mut self, t: SimTime, key: SliceKey) {
        if let Some(since) = self.active_since.get_mut(slot(key)).and_then(Option::take) {
            let d = self.interval(t, since);
            self.active_total[key.0 as usize] += d;
        }
    }

    /// Closes all open intervals at `end` and produces the report.
    pub fn finalize(mut self, end: SimTime) -> CostReport {
        for i in 0..self.active_since.len() {
            if let Some(since) = self.active_since[i].take() {
                let d = self.interval(end, since);
                self.active_total[i / SLICE_STRIDE] += d;
            }
        }
        for i in 0..self.occupied_since.len() {
            if let Some((since, gpcs)) = self.occupied_since[i].take() {
                let gpu = i / SLICE_STRIDE;
                let d = self.interval(end, since);
                self.occupied_total[gpu] += d;
                self.occupied_gpc_secs[gpu] += d.as_secs_f64() * gpcs as f64;
            }
        }
        for gpu in 0..self.num_gpus {
            if let Some(since) = self.gpu_busy_since[gpu].take() {
                let d = self.interval(end, since);
                self.gpu_time[gpu] += d;
            }
        }
        let start = self.start;
        let window = self.interval(end, start);
        CostReport {
            gpu_time_secs: self.gpu_time.iter().map(|d| d.as_secs_f64()).collect(),
            occupied_secs: self
                .occupied_total
                .iter()
                .map(|d| d.as_secs_f64())
                .collect(),
            occupied_gpc_secs: self.occupied_gpc_secs.clone(),
            active_secs: self.active_total.iter().map(|d| d.as_secs_f64()).collect(),
            window_secs: window.as_secs_f64(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn gpu_time_counts_any_allocation() {
        let mut c = CostTracker::new(2, t(0));
        c.slice_allocated(t(10), (0, 0), 4);
        c.slice_allocated(t(20), (0, 1), 2); // overlapping on same GPU
        c.slice_released(t(30), (0, 0));
        c.slice_released(t(50), (0, 1));
        let r = c.finalize(t(100));
        // GPU 0 busy from 10 to 50 = 40 s, GPU 1 never.
        assert!((r.gpu_time_secs[0] - 40.0).abs() < 1e-9);
        assert_eq!(r.gpu_time_secs[1], 0.0);
        // MIG time: slice (0,0) 20 s + slice (0,1) 30 s = 50 s.
        assert!((r.occupied_secs[0] - 50.0).abs() < 1e-9);
        assert!((r.total_gpu_time_secs() - 40.0).abs() < 1e-9);
        assert!((r.total_mig_time_secs() - 50.0).abs() < 1e-9);
        // GPC-weighted: 20 s x 4 GPCs + 30 s x 2 GPCs = 140 GPC-seconds.
        assert!((r.total_mig_gpc_secs() - 140.0).abs() < 1e-9);
    }

    #[test]
    fn active_time_tracked_separately() {
        let mut c = CostTracker::new(1, t(0));
        c.slice_allocated(t(0), (0, 0), 1);
        c.slice_active(t(10), (0, 0));
        c.slice_idle(t(15), (0, 0));
        c.slice_active(t(20), (0, 0));
        c.slice_idle(t(30), (0, 0));
        c.slice_released(t(100), (0, 0));
        let r = c.finalize(t(100));
        assert!((r.active_secs[0] - 15.0).abs() < 1e-9);
        assert!((r.occupied_secs[0] - 100.0).abs() < 1e-9);
        // Figure 5's story: occupied 100%, active 15% of one slice over 100 s.
        assert!((r.occupied_pct(0, 1) - 100.0).abs() < 1e-9);
        assert!((r.active_pct(0, 1) - 15.0).abs() < 1e-9);
    }

    #[test]
    fn finalize_closes_open_intervals() {
        let mut c = CostTracker::new(1, t(0));
        c.slice_allocated(t(40), (0, 2), 2);
        c.slice_active(t(50), (0, 2));
        let r = c.finalize(t(60));
        assert!((r.gpu_time_secs[0] - 20.0).abs() < 1e-9);
        assert!((r.occupied_secs[0] - 20.0).abs() < 1e-9);
        assert!((r.active_secs[0] - 10.0).abs() < 1e-9);
        assert!((r.window_secs - 60.0).abs() < 1e-9);
    }

    #[test]
    fn release_ends_activity() {
        let mut c = CostTracker::new(1, t(0));
        c.slice_allocated(t(0), (0, 0), 1);
        c.slice_active(t(5), (0, 0));
        c.slice_released(t(8), (0, 0));
        let r = c.finalize(t(10));
        assert!((r.active_secs[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn idempotent_activity_calls() {
        let mut c = CostTracker::new(1, t(0));
        c.slice_allocated(t(0), (0, 0), 1);
        c.slice_active(t(2), (0, 0));
        c.slice_active(t(4), (0, 0)); // ignored: already active since 2
        c.slice_idle(t(6), (0, 0));
        c.slice_idle(t(8), (0, 0)); // ignored
        c.slice_released(t(10), (0, 0));
        let r = c.finalize(t(10));
        assert!((r.active_secs[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn negative_intervals_are_counted_not_masked() {
        let mut c = CostTracker::new(1, t(0));
        c.slice_allocated(t(10), (0, 0), 1);
        c.slice_active(t(12), (0, 0));
        assert_eq!(c.clamps(), 0);
        // An out-of-order release: end precedes both open starts.
        c.slice_released(t(5), (0, 0));
        assert_eq!(c.clamps(), 3, "occupied + active + gpu-busy clamps counted");
        let before = c.clamps();
        let r = c.finalize(t(20));
        assert!((r.occupied_secs[0] - 0.0).abs() < 1e-9);
        assert!(before >= 2);
    }

    #[test]
    fn well_ordered_runs_report_zero_clamps() {
        let mut c = CostTracker::new(1, t(0));
        c.slice_allocated(t(0), (0, 0), 1);
        c.slice_active(t(1), (0, 0));
        c.slice_idle(t(2), (0, 0));
        c.slice_released(t(3), (0, 0));
        assert_eq!(c.clamps(), 0);
    }

    #[test]
    fn zero_window_percentages() {
        let c = CostTracker::new(1, t(0));
        let r = c.finalize(t(0));
        assert_eq!(r.occupied_pct(0, 3), 0.0);
        assert_eq!(r.active_pct(0, 0), 0.0);
    }
}
