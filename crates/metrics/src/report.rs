//! Plain-text tables for the experiment binaries' output.

use std::fmt::Write as _;

/// A simple aligned text table, matching the row/column structure of the
/// paper's tables so `exp_*` binaries print directly comparable output.
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Must match the header arity.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Appends a row of displayable cells.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        write_row(&mut out, &sep);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with 2 decimals (helper for experiment rows).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["app", "slo"]);
        t.row(&["image_classification".into(), "0.95".into()]);
        t.row(&["x".into(), "1.00".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("app"));
        assert!(lines[2].starts_with("image_classification"));
        // Columns aligned: both data rows have the separator at the same col.
        let col = lines[2].find("0.95").unwrap();
        assert_eq!(lines[3].find("1.00").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(0.905), "90.5%");
    }
}
