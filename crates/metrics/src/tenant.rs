//! Per-tenant fairness metrics: tenant latency/SLO slices of a
//! [`RequestLog`] and Jain's fairness index over tenant
//! throughput.
//!
//! Fleet-wide averages hide starvation: a noisy tenant can push another
//! tenant's p99 past its SLO while the aggregate CDF barely moves. The
//! fairness experiments therefore report per-tenant attainment (after
//! HAS-GPU) and a single scalar fairness figure (Jain's index) per system.

use serde::{Deserialize, Serialize};

use ffs_sim::SimDuration;

use crate::cdf::LatencyCdf;
use crate::record::RequestLog;

/// Jain's fairness index over per-tenant allocations (throughput here):
/// `(Σx)² / (n · Σx²)`. Ranges over `(0, 1]`; 1.0 means all tenants
/// receive identical allocations, `1/n` means one tenant receives
/// everything. Returns 1.0 for an empty slice or an all-zero allocation
/// (nobody is being treated unequally when nobody is served).
pub fn jain_index(allocations: &[f64]) -> f64 {
    let n = allocations.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

/// Fairness-relevant aggregates for one tenant.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantStats {
    /// The tenant id.
    pub tenant: u32,
    /// Requests attributed to this tenant (completed or not).
    pub requests: usize,
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// SLO-compliant completions per second (goodput). Always at most
    /// `throughput_rps`; the gap is work delivered too late to matter.
    pub goodput_rps: f64,
    /// Fraction of this tenant's requests completed within SLO.
    pub slo_attainment: f64,
    /// Median latency (ms) over completed requests; `None` if none
    /// completed.
    pub p50_ms: Option<f64>,
    /// 99th-percentile latency (ms); `None` if none completed.
    pub p99_ms: Option<f64>,
}

/// Per-tenant view of one run's request log.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TenantReport {
    /// One row per tenant, ascending by tenant id.
    pub tenants: Vec<TenantStats>,
    /// Jain's index over the tenants' completion throughput. Under light
    /// load every request eventually completes, so this equals the
    /// offered-load skew regardless of scheduler.
    pub jain_throughput: f64,
    /// Jain's index over the tenants' goodput. This is the
    /// scheduler-sensitive figure: ordering decides *whose* requests make
    /// their deadlines even when everything eventually completes.
    pub jain_goodput: f64,
}

impl TenantReport {
    /// Builds the per-tenant report from a request log and the run
    /// duration (used for throughput normalisation).
    pub fn from_log(log: &RequestLog, duration: SimDuration) -> Self {
        let secs = duration.as_secs_f64().max(1e-9);
        let mut tenants = Vec::new();
        let mut rates = Vec::new();
        let mut goodputs = Vec::new();
        for t in log.tenants() {
            let lat = log.latencies_ms_for_tenant(t);
            let cdf = LatencyCdf::new(lat);
            let rps = log.throughput_rps_for_tenant(t, duration);
            let goodput = log.for_tenant(t).filter(|r| r.slo_hit()).count() as f64 / secs;
            rates.push(rps);
            goodputs.push(goodput);
            tenants.push(TenantStats {
                tenant: t,
                requests: log.for_tenant(t).count(),
                throughput_rps: rps,
                goodput_rps: goodput,
                slo_attainment: log.slo_hit_rate_for_tenant(t),
                p50_ms: cdf.p50(),
                p99_ms: cdf.p99(),
            });
        }
        TenantReport {
            tenants,
            jain_throughput: jain_index(&rates),
            jain_goodput: jain_index(&goodputs),
        }
    }

    /// The stats row for one tenant, if present.
    pub fn tenant(&self, tenant: u32) -> Option<&TenantStats> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }

    /// The minimum per-tenant SLO attainment — the starved-tenant view the
    /// fairness tables lead with.
    pub fn worst_slo_attainment(&self) -> f64 {
        self.tenants
            .iter()
            .map(|t| t.slo_attainment)
            .fold(1.0, f64::min)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::record::{Breakdown, RequestRecord};
    use ffs_sim::SimTime;

    fn rec(id: u64, tenant: u32, latency_ms: Option<f64>) -> RequestRecord {
        let arrival = SimTime::from_secs(1);
        RequestRecord {
            id,
            app_index: 0,
            arrival,
            completed: latency_ms.map(|l| arrival + SimDuration::from_millis_f64(l)),
            slo_ms: 100.0,
            breakdown: Breakdown::default(),
            tenant,
        }
    }

    #[test]
    fn jain_identical_allocations_is_one() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn jain_single_hog_is_one_over_n() {
        let j = jain_index(&[12.0, 0.0, 0.0, 0.0]);
        assert!((j - 0.25).abs() < 1e-12);
    }

    #[test]
    fn tenant_report_splits_by_tenant() {
        let mut log = RequestLog::new();
        log.push(rec(0, 0, Some(50.0)));
        log.push(rec(1, 0, Some(150.0))); // miss
        log.push(rec(2, 1, Some(10.0)));
        log.push(rec(3, 1, None)); // abandoned: miss, no latency
        let report = TenantReport::from_log(&log, SimDuration::from_secs(10));
        assert_eq!(report.tenants.len(), 2);
        let t0 = report.tenant(0).expect("tenant 0");
        assert_eq!(t0.requests, 2);
        assert!((t0.slo_attainment - 0.5).abs() < 1e-12);
        assert!((t0.throughput_rps - 0.2).abs() < 1e-12);
        let t1 = report.tenant(1).expect("tenant 1");
        assert_eq!(t1.p99_ms, Some(10.0));
        assert!((t1.throughput_rps - 0.1).abs() < 1e-12);
        assert!((report.worst_slo_attainment() - 0.5).abs() < 1e-12);
        // Throughputs 0.2 vs 0.1 → Jain = (0.3)^2 / (2 * 0.05) = 0.9.
        assert!((report.jain_throughput - 0.9).abs() < 1e-12);
        // One SLO hit each (0.1 rps goodput apiece) → perfectly fair.
        assert!((t0.goodput_rps - 0.1).abs() < 1e-12);
        assert!((t1.goodput_rps - 0.1).abs() < 1e-12);
        assert!((report.jain_goodput - 1.0).abs() < 1e-12);
    }
}
