//! Binned time series for utilization plots (Figures 3 and 16).

use serde::{Deserialize, Serialize};

use ffs_sim::{SimDuration, SimTime};

/// A fixed-bin time series: values recorded at instants are averaged per
/// bin, yielding the per-second utilization curves of the paper's figures.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BinnedSeries {
    bin: SimDuration,
    sums: Vec<f64>,
    counts: Vec<u32>,
}

impl BinnedSeries {
    /// Creates a series with the given bin width.
    pub fn new(bin: SimDuration) -> Self {
        assert!(!bin.is_zero());
        BinnedSeries {
            bin,
            sums: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Records a sample at time `t`.
    pub fn record(&mut self, t: SimTime, value: f64) {
        let idx = (t.as_micros() / self.bin.as_micros()) as usize;
        if idx >= self.sums.len() {
            self.sums.resize(idx + 1, 0.0);
            self.counts.resize(idx + 1, 0);
        }
        self.sums[idx] += value;
        self.counts[idx] += 1;
    }

    /// Pre-sizes the series through `horizon`, so recording during a run
    /// whose end is known up front never reallocates.
    pub fn reserve_until(&mut self, horizon: SimTime) {
        let bins = (horizon.as_micros() / self.bin.as_micros()) as usize + 1;
        self.sums.reserve(bins.saturating_sub(self.sums.len()));
        self.counts.reserve(bins.saturating_sub(self.counts.len()));
    }

    /// The bin width.
    pub fn bin(&self) -> SimDuration {
        self.bin
    }

    /// Number of bins (including empty ones up to the last sample).
    pub fn len(&self) -> usize {
        self.sums.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.sums.is_empty()
    }

    /// The mean value in bin `idx`, or `None` for empty bins.
    pub fn bin_mean(&self, idx: usize) -> Option<f64> {
        if idx < self.counts.len() && self.counts[idx] > 0 {
            Some(self.sums[idx] / self.counts[idx] as f64)
        } else {
            None
        }
    }

    /// All bins as `(bin_start_secs, mean)` pairs; empty bins carry the
    /// previous bin's value (sample-and-hold), starting from 0.0.
    pub fn curve(&self) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(self.sums.len());
        let mut last = 0.0;
        for i in 0..self.sums.len() {
            if let Some(m) = self.bin_mean(i) {
                last = m;
            }
            out.push((i as f64 * self.bin.as_secs_f64(), last));
        }
        out
    }

    /// Mean over all recorded samples.
    pub fn overall_mean(&self) -> f64 {
        let total: f64 = self.sums.iter().sum();
        let n: u32 = self.counts.iter().sum();
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Maximum bin mean.
    pub fn peak(&self) -> f64 {
        (0..self.sums.len())
            .filter_map(|i| self.bin_mean(i))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn samples_average_within_bins() {
        let mut s = BinnedSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_millis(100), 2.0);
        s.record(SimTime::from_millis(900), 4.0);
        s.record(SimTime::from_millis(1500), 10.0);
        assert_eq!(s.bin_mean(0), Some(3.0));
        assert_eq!(s.bin_mean(1), Some(10.0));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn curve_holds_last_value_through_gaps() {
        let mut s = BinnedSeries::new(SimDuration::from_secs(1));
        s.record(SimTime::from_millis(500), 5.0);
        s.record(SimTime::from_millis(3500), 7.0);
        let curve = s.curve();
        assert_eq!(curve.len(), 4);
        assert_eq!(curve[1].1, 5.0, "gap bins hold the last value");
        assert_eq!(curve[2].1, 5.0);
        assert_eq!(curve[3].1, 7.0);
    }

    #[test]
    fn overall_mean_and_peak() {
        let mut s = BinnedSeries::new(SimDuration::from_millis(100));
        for i in 0..10 {
            s.record(SimTime::from_millis(i * 100), i as f64);
        }
        assert!((s.overall_mean() - 4.5).abs() < 1e-12);
        assert_eq!(s.peak(), 9.0);
    }

    #[test]
    fn empty_series() {
        let s = BinnedSeries::new(SimDuration::from_secs(1));
        assert!(s.is_empty());
        assert_eq!(s.overall_mean(), 0.0);
        assert_eq!(s.peak(), 0.0);
        assert!(s.curve().is_empty());
    }
}
