//! # ffs-metrics — SLO, latency, utilization and cost metrics
//!
//! Everything the paper's evaluation section measures, as reusable
//! recorders:
//!
//! * [`record`] — per-request lifecycle records with the latency breakdown
//!   of Figure 14 (queueing / loading / execution / data transfer), SLO hit
//!   accounting (Figure 9) and completion throughput (Figure 10).
//! * [`cdf`] — latency CDFs and percentiles (Figures 11–13, P95 tail
//!   latency claims).
//! * [`timeline`] — binned time series of utilization (Figures 3 and 16)
//!   and the occupied-vs-active accounting of Figure 5.
//! * [`cost`] — "GPU time" and "MIG time" accounting per §6 (Table 6): a
//!   GPU accrues GPU time whenever any of its slices is allocated; a slice
//!   accrues MIG time while allocated, and *active* time while actually
//!   processing.
//! * [`tenant`] — per-tenant latency/SLO slices and Jain's fairness index
//!   over tenant throughput (the fairness experiments).
//! * [`report`] — plain-text tables and JSON rows for the experiment
//!   binaries.

#![warn(clippy::unwrap_used)]

pub mod cdf;
pub mod cost;
pub mod csv;
pub mod histogram;
pub mod record;
pub mod report;
pub mod tenant;
pub mod timeline;

pub use cdf::LatencyCdf;
pub use cost::{CostReport, CostTracker};
pub use histogram::LogHistogram;
pub use record::{Breakdown, RequestLog, RequestRecord};
pub use report::TextTable;
pub use tenant::{jain_index, TenantReport, TenantStats};
pub use timeline::BinnedSeries;
