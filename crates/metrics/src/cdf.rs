//! Latency CDFs and percentiles (Figures 11–13).

use serde::{Deserialize, Serialize};

/// An empirical latency distribution.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyCdf {
    sorted_ms: Vec<f64>,
}

impl LatencyCdf {
    /// Builds a CDF from latency samples (ms). Non-finite samples (NaN,
    /// ±∞) indicate an upstream accounting bug but must not crash a whole
    /// sweep: they are dropped here and counted against the process-wide
    /// [`ffs_obs::nonfinite_latency_samples`] counter so the loss stays
    /// visible.
    pub fn new(mut samples: Vec<f64>) -> Self {
        let before = samples.len();
        samples.retain(|x| x.is_finite());
        for _ in samples.len()..before {
            ffs_obs::note_nonfinite_latency_sample();
        }
        samples.sort_by(f64::total_cmp);
        LatencyCdf { sorted_ms: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted_ms.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted_ms.is_empty()
    }

    /// The `q`-quantile (0.0 ..= 1.0) by nearest-rank. Returns `None` when
    /// empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.sorted_ms.is_empty() {
            return None;
        }
        debug_assert!((0.0..=1.0).contains(&q));
        let n = self.sorted_ms.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted_ms[rank - 1])
    }

    /// Median latency.
    pub fn p50(&self) -> Option<f64> {
        self.percentile(0.50)
    }

    /// 95th-percentile (the paper's tail-latency metric).
    pub fn p95(&self) -> Option<f64> {
        self.percentile(0.95)
    }

    /// 99th-percentile.
    pub fn p99(&self) -> Option<f64> {
        self.percentile(0.99)
    }

    /// Fraction of samples at or below `x` ms.
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.sorted_ms.is_empty() {
            return 0.0;
        }
        let idx = self.sorted_ms.partition_point(|&v| v <= x);
        idx as f64 / self.sorted_ms.len() as f64
    }

    /// `points` evenly spaced CDF points `(latency_ms, cumulative_fraction)`
    /// for plotting.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted_ms.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted_ms.len();
        (1..=points)
            .map(|i| {
                let frac = i as f64 / points as f64;
                let rank = ((frac * n as f64).ceil() as usize).clamp(1, n);
                (self.sorted_ms[rank - 1], frac)
            })
            .collect()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_known_data() {
        let cdf = LatencyCdf::new((1..=100).map(|i| i as f64).collect());
        assert_eq!(cdf.p50(), Some(50.0));
        assert_eq!(cdf.p95(), Some(95.0));
        assert_eq!(cdf.p99(), Some(99.0));
        assert_eq!(cdf.percentile(1.0), Some(100.0));
        assert_eq!(cdf.percentile(0.0), Some(1.0));
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let cdf = LatencyCdf::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(cdf.p50(), Some(3.0));
    }

    #[test]
    fn fraction_below() {
        let cdf = LatencyCdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.fraction_below(25.0), 0.5);
        assert_eq!(cdf.fraction_below(40.0), 1.0);
        assert_eq!(cdf.fraction_below(5.0), 0.0);
    }

    #[test]
    fn curve_is_monotone() {
        let cdf = LatencyCdf::new((0..500).map(|i| (i % 97) as f64).collect());
        let curve = cdf.curve(20);
        assert_eq!(curve.len(), 20);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!((curve.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nonfinite_samples_are_dropped_and_counted() {
        let before = ffs_obs::nonfinite_latency_samples();
        let cdf = LatencyCdf::new(vec![f64::NAN, 2.0, f64::INFINITY, 1.0, f64::NEG_INFINITY]);
        assert_eq!(cdf.len(), 2);
        assert_eq!(cdf.p50(), Some(1.0));
        assert_eq!(cdf.percentile(1.0), Some(2.0));
        assert_eq!(ffs_obs::nonfinite_latency_samples() - before, 3);
    }

    #[test]
    fn empty_cdf() {
        let cdf = LatencyCdf::new(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.p95(), None);
        assert!(cdf.curve(10).is_empty());
        assert_eq!(cdf.fraction_below(1.0), 0.0);
    }
}
