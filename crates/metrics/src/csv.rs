//! CSV serialisation of experiment outputs (for plotting with external
//! tools).

use std::fmt::Write as _;

/// Writes `(x, y)` series as a two-column CSV with a header.
pub fn series_csv(x_name: &str, y_name: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{x_name},{y_name}");
    for (x, y) in points {
        let _ = writeln!(out, "{x},{y}");
    }
    out
}

/// Writes several aligned series as one CSV: a shared x column plus one
/// column per named series. Series must have the same length as `xs`.
pub fn multi_series_csv(x_name: &str, xs: &[f64], series: &[(&str, &[f64])]) -> String {
    for (name, ys) in series {
        assert_eq!(ys.len(), xs.len(), "series {name} length mismatch");
    }
    let mut out = String::new();
    let header: Vec<&str> = std::iter::once(x_name)
        .chain(series.iter().map(|(n, _)| *n))
        .collect();
    let _ = writeln!(out, "{}", header.join(","));
    for (i, x) in xs.iter().enumerate() {
        let mut row = vec![x.to_string()];
        for (_, ys) in series {
            row.push(ys[i].to_string());
        }
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

/// Escapes a value for CSV (quotes fields containing commas/quotes).
pub fn escape(value: &str) -> String {
    if value.contains(',') || value.contains('"') || value.contains('\n') {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Writes generic rows (already stringified) with a header.
pub fn rows_csv(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        header
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",")
    );
    for row in rows {
        assert_eq!(row.len(), header.len(), "row arity mismatch");
        let _ = writeln!(
            out,
            "{}",
            row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        );
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn series_round_trip_shape() {
        let s = series_csv("t", "util", &[(0.0, 0.5), (1.0, 0.75)]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines, vec!["t,util", "0,0.5", "1,0.75"]);
    }

    #[test]
    fn multi_series_alignment() {
        let s = multi_series_csv(
            "t",
            &[0.0, 1.0],
            &[("esg", &[1.0, 2.0][..]), ("fluid", &[3.0, 4.0][..])],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "t,esg,fluid");
        assert_eq!(lines[2], "1,2,4");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn multi_series_rejects_ragged_input() {
        multi_series_csv("t", &[0.0], &[("a", &[1.0, 2.0][..])]);
    }

    #[test]
    fn escaping() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn rows_csv_with_header() {
        let s = rows_csv(&["app", "hit"], &[vec!["image,cls".into(), "0.95".into()]]);
        assert!(s.contains("\"image,cls\",0.95"));
    }
}
