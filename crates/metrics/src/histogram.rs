//! A log-bucketed latency histogram.
//!
//! Storing every latency sample (as [`crate::cdf::LatencyCdf`] does) is
//! exact but O(n) memory; long simulations and the live executor benefit
//! from a fixed-size summary. This histogram uses logarithmic buckets
//! (~5% relative width), giving percentile estimates within one bucket
//! width — plenty for SLO accounting.

use serde::{Deserialize, Serialize};

/// Relative width of each bucket (5%).
const GROWTH: f64 = 1.05;

/// A fixed-memory log-bucketed histogram of non-negative values.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Smallest value resolvable; everything below lands in bucket 0.
    floor: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
}

impl LogHistogram {
    /// Creates a histogram resolving values from `floor` upward.
    pub fn new(floor: f64) -> Self {
        assert!(floor > 0.0);
        LogHistogram {
            floor,
            counts: Vec::new(),
            total: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// A histogram suitable for millisecond latencies (floor 0.1 ms).
    pub fn for_latency_ms() -> Self {
        Self::new(0.1)
    }

    fn bucket_of(&self, v: f64) -> usize {
        if v <= self.floor {
            0
        } else {
            ((v / self.floor).ln() / GROWTH.ln()).floor() as usize + 1
        }
    }

    /// The lower edge of bucket `i`.
    fn bucket_lower(&self, i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            self.floor * GROWTH.powi(i as i32 - 1)
        }
    }

    /// Records a value.
    pub fn record(&mut self, v: f64) {
        assert!(
            v.is_finite() && v >= 0.0,
            "histogram values must be finite and non-negative"
        );
        let b = self.bucket_of(v);
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean of the recorded values (exact).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Maximum recorded value (exact).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The `q`-quantile estimate (within one bucket width). `None` when
    /// empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        debug_assert!((0.0..=1.0).contains(&q));
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Report the bucket's upper edge (conservative for SLOs).
                return Some(self.bucket_lower(i + 1));
            }
        }
        Some(self.max)
    }

    /// Fraction of samples at or below `x` (within one bucket width).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let b = self.bucket_of(x);
        let below: u64 = self.counts.iter().take(b + 1).sum();
        below as f64 / self.total as f64
    }

    /// Projects this histogram onto a telemetry [`Log2Histogram`](ffs_telemetry::Log2Histogram) so
    /// evaluation-grade latency distributions can be exported through the
    /// `ffs-telemetry` registry's Prometheus exposition. Each 5% bucket
    /// contributes its count at the bucket's upper edge scaled by `scale`
    /// (e.g. `1e6` maps milliseconds onto integer nanoseconds) — the same
    /// conservative rounding [`percentile`](Self::percentile) uses, so the
    /// projection is exact in count and within one source-bucket width
    /// (~5%) plus one power-of-two bucket in value.
    pub fn to_log2(&self, scale: f64) -> ffs_telemetry::Log2Histogram {
        assert!(scale > 0.0 && scale.is_finite());
        let out = ffs_telemetry::Log2Histogram::new();
        for (i, &n) in self.counts.iter().enumerate() {
            let rep = self.bucket_lower(i + 1) * scale;
            out.record_n(rep.round() as u64, n);
        }
        out
    }

    /// Merges another histogram with the same floor.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.floor, other.floor, "histogram floors must match");
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_within_bucket_accuracy() {
        let mut h = LogHistogram::for_latency_ms();
        for i in 1..=10_000 {
            h.record(i as f64 / 10.0); // 0.1 .. 1000.0 ms
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.percentile(0.5).unwrap();
        assert!((p50 / 500.0 - 1.0).abs() < 0.06, "p50 {p50}");
        let p95 = h.percentile(0.95).unwrap();
        assert!((p95 / 950.0 - 1.0).abs() < 0.06, "p95 {p95}");
        assert!((h.mean() - 500.05).abs() < 0.5);
        assert_eq!(h.max(), 1000.0);
    }

    #[test]
    fn fraction_below_tracks_cdf() {
        let mut h = LogHistogram::for_latency_ms();
        for v in [10.0, 20.0, 30.0, 40.0] {
            h.record(v);
        }
        assert!((h.fraction_below(25.0) - 0.5).abs() < 0.26);
        assert_eq!(h.fraction_below(1000.0), 1.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LogHistogram::for_latency_ms();
        let mut b = LogHistogram::for_latency_ms();
        a.record(10.0);
        b.record(1000.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1000.0);
        assert!((a.mean() - 505.0).abs() < 1e-9);
    }

    #[test]
    fn to_log2_preserves_count_and_approximates_values() {
        let mut h = LogHistogram::for_latency_ms();
        for v in [0.5, 10.0, 10.0, 250.0] {
            h.record(v);
        }
        let log2 = h.to_log2(1e6); // ms -> ns
        assert_eq!(log2.count(), 4);
        // Mean survives the double bucketing to within the combined
        // bucket widths (5% source bucket + one power-of-two bucket).
        let mean_ns = h.mean() * 1e6;
        assert!(
            log2.mean() >= mean_ns && log2.mean() <= mean_ns * 2.2,
            "bridged mean {} vs exact {}",
            log2.mean(),
            mean_ns
        );
        // Counts land in the buckets of the scaled upper edges.
        let counts = log2.bucket_counts();
        let b10ms = ffs_telemetry::Log2Histogram::bucket_of(10_000_000);
        assert!(counts[b10ms] + counts[b10ms + 1] >= 2, "10ms pair present");
    }

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::for_latency_ms();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.fraction_below(1.0), 0.0);
    }

    #[test]
    fn tiny_values_land_in_bucket_zero() {
        let mut h = LogHistogram::for_latency_ms();
        h.record(0.0);
        h.record(0.05);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(1.0).unwrap() <= 0.1 + 1e-9);
    }
}
