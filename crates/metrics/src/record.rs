//! Per-request lifecycle records and aggregate SLO / throughput metrics.

use serde::{Deserialize, Serialize};

use ffs_sim::{SimDuration, SimTime};

/// Where a request's end-to-end latency went (Figure 14's breakdown).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Waiting in queues (controller, load balancer, instance, stage).
    pub queue_ms: f64,
    /// Waiting for model loads (warm reload after eviction, cold start).
    pub load_ms: f64,
    /// Executing on MIG slices.
    pub exec_ms: f64,
    /// Moving tensors across pipeline-stage boundaries (or in-process
    /// handoffs for monolithic instances).
    pub transfer_ms: f64,
}

impl Breakdown {
    /// Total accounted latency.
    pub fn total_ms(&self) -> f64 {
        self.queue_ms + self.load_ms + self.exec_ms + self.transfer_ms
    }
}

/// One completed (or dropped) request.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Trace-wide request id.
    pub id: u64,
    /// Index of the application (paper's App 0–3).
    pub app_index: usize,
    /// Arrival at the platform.
    pub arrival: SimTime,
    /// Completion time; `None` for requests dropped or still in flight at
    /// the end of the run (both count as SLO misses).
    pub completed: Option<SimTime>,
    /// The SLO latency budget for this request.
    pub slo_ms: f64,
    /// Latency breakdown.
    pub breakdown: Breakdown,
    /// Owning tenant (fairness accounting). Defaults to 0 when absent,
    /// so pre-tenant serialized logs still deserialize.
    #[serde(default)]
    pub tenant: u32,
}

impl RequestRecord {
    /// End-to-end latency in ms, if completed.
    pub fn latency_ms(&self) -> Option<f64> {
        self.completed
            .map(|c| c.saturating_since(self.arrival).as_secs_f64() * 1_000.0)
    }

    /// True if the request completed within its SLO.
    pub fn slo_hit(&self) -> bool {
        match self.latency_ms() {
            Some(l) => l <= self.slo_ms,
            None => false,
        }
    }
}

/// Append-only log of request records with aggregate queries.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RequestLog {
    records: Vec<RequestRecord>,
}

impl RequestLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record. A completion that precedes its own arrival is an
    /// event-ordering bug: `latency_ms` would silently clamp it to zero, so
    /// it is counted against the process-wide metric-clamp counter here
    /// (once per record, not once per latency query).
    pub fn push(&mut self, r: RequestRecord) {
        if let Some(c) = r.completed {
            if c < r.arrival {
                debug_assert!(false, "request {} completed before it arrived", r.id);
                ffs_obs::note_metric_clamp();
            }
        }
        self.records.push(r);
    }

    /// Pre-sizes the log for `n` additional records, so a run with a known
    /// request count never reallocates on the completion path.
    pub fn reserve(&mut self, n: usize) {
        self.records.reserve(n);
    }

    /// All records.
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records for one application.
    pub fn for_app(&self, app_index: usize) -> impl Iterator<Item = &RequestRecord> {
        self.records
            .iter()
            .filter(move |r| r.app_index == app_index)
    }

    /// Records for one tenant.
    pub fn for_tenant(&self, tenant: u32) -> impl Iterator<Item = &RequestRecord> {
        self.records.iter().filter(move |r| r.tenant == tenant)
    }

    /// The distinct tenants appearing in the log, ascending.
    pub fn tenants(&self) -> Vec<u32> {
        let mut t: Vec<u32> = self.records.iter().map(|r| r.tenant).collect();
        t.sort_unstable();
        t.dedup();
        t
    }

    /// SLO hit rate for one tenant (vacuous 1.0 when the tenant has no
    /// records, mirroring [`Self::slo_hit_rate_for`]).
    pub fn slo_hit_rate_for_tenant(&self, tenant: u32) -> f64 {
        let (hits, total) = self.for_tenant(tenant).fold((0usize, 0usize), |(h, t), r| {
            (h + usize::from(r.slo_hit()), t + 1)
        });
        if total == 0 {
            1.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Completed requests per second for one tenant over `duration`.
    pub fn throughput_rps_for_tenant(&self, tenant: u32, duration: SimDuration) -> f64 {
        let done = self
            .for_tenant(tenant)
            .filter(|r| r.completed.is_some())
            .count();
        done as f64 / duration.as_secs_f64()
    }

    /// Completed-request latencies for one tenant.
    pub fn latencies_ms_for_tenant(&self, tenant: u32) -> Vec<f64> {
        self.for_tenant(tenant)
            .filter_map(|r| r.latency_ms())
            .collect()
    }

    /// Fraction of requests completed within their SLO (Figure 9). Unfilled
    /// requests count as misses. Returns 1.0 for an empty log.
    pub fn slo_hit_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 1.0;
        }
        self.records.iter().filter(|r| r.slo_hit()).count() as f64 / self.records.len() as f64
    }

    /// SLO hit rate for one app.
    pub fn slo_hit_rate_for(&self, app_index: usize) -> f64 {
        let (hits, total) = self.for_app(app_index).fold((0usize, 0usize), |(h, t), r| {
            (h + usize::from(r.slo_hit()), t + 1)
        });
        if total == 0 {
            1.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Completed requests per second over `duration` (Figure 10's
    /// throughput).
    pub fn throughput_rps(&self, duration: SimDuration) -> f64 {
        let done = self
            .records
            .iter()
            .filter(|r| r.completed.is_some())
            .count();
        done as f64 / duration.as_secs_f64()
    }

    /// Completed-request latencies in ms.
    pub fn latencies_ms(&self) -> Vec<f64> {
        self.records.iter().filter_map(|r| r.latency_ms()).collect()
    }

    /// Completed-request latencies for one app.
    pub fn latencies_ms_for(&self, app_index: usize) -> Vec<f64> {
        self.for_app(app_index)
            .filter_map(|r| r.latency_ms())
            .collect()
    }

    /// Mean breakdown over completed requests (Figure 14), per app.
    pub fn mean_breakdown_for(&self, app_index: usize) -> Breakdown {
        let mut acc = Breakdown::default();
        let mut n = 0usize;
        for r in self.for_app(app_index) {
            if r.completed.is_some() {
                acc.queue_ms += r.breakdown.queue_ms;
                acc.load_ms += r.breakdown.load_ms;
                acc.exec_ms += r.breakdown.exec_ms;
                acc.transfer_ms += r.breakdown.transfer_ms;
                n += 1;
            }
        }
        if n > 0 {
            let k = n as f64;
            acc.queue_ms /= k;
            acc.load_ms /= k;
            acc.exec_ms /= k;
            acc.transfer_ms /= k;
        }
        acc
    }

    /// Completion time of the last finished request (for the "finishes all
    /// tasks X% faster" comparison of §7.2).
    pub fn makespan(&self) -> Option<SimTime> {
        self.records.iter().filter_map(|r| r.completed).max()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn record(
        id: u64,
        app: usize,
        arrival_s: u64,
        latency_ms: Option<f64>,
        slo_ms: f64,
    ) -> RequestRecord {
        let arrival = SimTime::from_secs(arrival_s);
        RequestRecord {
            id,
            app_index: app,
            arrival,
            completed: latency_ms.map(|l| arrival + SimDuration::from_millis_f64(l)),
            slo_ms,
            tenant: app as u32,
            breakdown: Breakdown {
                queue_ms: 10.0,
                load_ms: 0.0,
                exec_ms: latency_ms.unwrap_or(0.0).max(10.0) - 10.0,
                transfer_ms: 0.0,
            },
        }
    }

    #[test]
    fn slo_hit_accounting() {
        let mut log = RequestLog::new();
        log.push(record(0, 0, 0, Some(100.0), 150.0)); // hit
        log.push(record(1, 0, 1, Some(200.0), 150.0)); // miss
        log.push(record(2, 0, 2, None, 150.0)); // dropped: miss
        log.push(record(3, 1, 3, Some(149.9), 150.0)); // hit
        assert!((log.slo_hit_rate() - 0.5).abs() < 1e-12);
        assert!((log.slo_hit_rate_for(0) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(log.slo_hit_rate_for(1), 1.0);
        assert_eq!(log.slo_hit_rate_for(9), 1.0, "no records = vacuous 1.0");
    }

    #[test]
    fn throughput_counts_only_completed() {
        let mut log = RequestLog::new();
        log.push(record(0, 0, 0, Some(50.0), 100.0));
        log.push(record(1, 0, 0, None, 100.0));
        assert!((log.throughput_rps(SimDuration::from_secs(10)) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn latency_and_makespan() {
        let mut log = RequestLog::new();
        log.push(record(0, 0, 0, Some(100.0), 150.0));
        log.push(record(1, 0, 5, Some(300.0), 150.0));
        let lats = log.latencies_ms();
        assert_eq!(lats.len(), 2);
        assert!((lats[1] - 300.0).abs() < 1e-9);
        assert_eq!(
            log.makespan().unwrap(),
            SimTime::from_secs(5) + SimDuration::from_millis(300)
        );
    }

    #[test]
    fn mean_breakdown_averages_completed_only() {
        let mut log = RequestLog::new();
        log.push(record(0, 2, 0, Some(110.0), 500.0));
        log.push(record(1, 2, 0, Some(210.0), 500.0));
        log.push(record(2, 2, 0, None, 500.0));
        let b = log.mean_breakdown_for(2);
        assert!((b.queue_ms - 10.0).abs() < 1e-12);
        assert!((b.exec_ms - 150.0).abs() < 1e-12);
        assert!((b.total_ms() - 160.0).abs() < 1e-12);
    }

    #[test]
    fn empty_log_is_benign() {
        let log = RequestLog::new();
        assert_eq!(log.slo_hit_rate(), 1.0);
        assert!(log.latencies_ms().is_empty());
        assert!(log.makespan().is_none());
        assert_eq!(log.throughput_rps(SimDuration::from_secs(1)), 0.0);
    }
}
