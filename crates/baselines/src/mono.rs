//! The monolithic baseline platforms shared by ESG and INFless+MIG,
//! expressed as policy bundles over the shared `fluidfaas` engine.
//!
//! Both baselines view a serverless function as a single unit: every
//! component runs on one MIG slice that must hold the whole function
//! (Table 5, "MIG to run (Baseline)"). They differ in placement and
//! routing policy:
//!
//! * **ESG** picks the most resource-efficient (smallest viable) slice and
//!   routes deadline-aware to the lowest-latency instance with capacity.
//! * **INFless+MIG** grabs the largest free slice (throughput-greedy
//!   placement) and routes FIFO to the first instance with capacity.
//!
//! Both keep idle instances alive exclusively on their slices until a long
//! keep-alive expires — the "exclusive keep-alive" policy whose waste §4
//! quantifies (Figure 5). Neither time-shares slices nor migrates, so they
//! run with the engine's no-op shared pool and migrator.

use ffs_mig::{NodeId, SliceProfile};
use ffs_pipeline::DeploymentPlan;
use ffs_sim::{Scheduler, SimDuration, SimTime, World};
use ffs_trace::Trace;

use fluidfaas::config::FfsConfig;
use fluidfaas::platform::catalog::{FuncId, FunctionCatalog};
use fluidfaas::platform::engine::{Engine, EngineCore, EngineError, MAX_LAUNCHES_PER_TICK};
use fluidfaas::platform::events::{Event, InstanceId};
use fluidfaas::platform::hub::MetricsHub;
use fluidfaas::platform::policy::{
    lowest_latency_instance, route_to_instance, Autoscaler, NoMigrator, NoSharedPool, Placer,
    PolicyBundle, Router, SharedPoolPolicy,
};
use fluidfaas::platform::runner::Platform;

/// Which baseline policy the system runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineKind {
    /// ESG (HPDC'24): resource-efficient placement, deadline-aware routing.
    Esg,
    /// INFless with MIG support: largest-slice placement, FIFO routing.
    Infless,
}

impl BaselineKind {
    /// Display name.
    pub const fn name(self) -> &'static str {
        match self {
            BaselineKind::Esg => "ESG",
            BaselineKind::Infless => "INFless",
        }
    }
}

/// Baseline routing: ESG deadline-aware, INFless FIFO. No overflow path —
/// whatever the exclusive fleet cannot admit stays in the backlog.
pub struct BaselineRouter {
    /// The baseline's policy kind.
    pub kind: BaselineKind,
}

impl Router for BaselineRouter {
    fn dispatch(
        &self,
        core: &mut EngineCore,
        _shared: &dyn SharedPoolPolicy,
        f: FuncId,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) {
        while let Some(&req) = core.pending[f].front() {
            let slo = core.catalog.slo_ms(f);
            let chosen: Option<InstanceId> = match self.kind {
                // Deadline-aware: lowest-latency instance with capacity.
                BaselineKind::Esg => lowest_latency_instance(core, f, slo),
                // FIFO: first instance (by id) with capacity. The routing
                // index is exactly the admissible set in ascending id
                // order, so its head is the same winner the filtered
                // per-function scan produced (cross-checked in debug).
                BaselineKind::Infless => {
                    let head = core
                        .instances
                        .admissible_of(f)
                        .first()
                        .map(|&idx| InstanceId(idx as u64));
                    debug_assert_eq!(
                        head,
                        core.instances_of[f]
                            .iter()
                            .copied()
                            .find(|&id| core.instances.has_admission_capacity(id)),
                        "routing index disagrees with the FIFO scan for function {f}"
                    );
                    head
                }
            };
            let Some(id) = chosen else { break };
            route_to_instance(core, id, req, now, sched);
            core.pending[f].pop_front();
        }
    }
}

/// Baseline placement: one slice holds the whole function, chosen per the
/// baseline's preference order.
pub struct BaselinePlacer {
    /// The baseline's policy kind.
    pub kind: BaselineKind,
}

impl BaselinePlacer {
    /// The free slice a new instance gets, per the baseline policy.
    fn pick_slice(&self, core: &EngineCore, f: FuncId) -> Option<ffs_mig::fleet::FreeSlice> {
        let p = core.catalog.profile(f);
        let min_mem = p.total_mem_gb();
        let min_gpcs = p.min_gpcs_mono;
        let mut viable: Vec<ffs_mig::fleet::FreeSlice> = core
            .fleet
            .free_slices(None)
            .into_iter()
            .filter(|s| s.profile.fits_memory(min_mem) && s.profile.gpcs() >= min_gpcs)
            .collect();
        match self.kind {
            BaselineKind::Esg => {
                // ESG's dual-blade search yields a GPC-efficiency preference
                // order over slice types (most resource-efficient meeting
                // the SLO first); place on the best-preferred free slice.
                let pref = crate::esg_search::placement_preference(p, core.catalog.slo_ms(f));
                let rank = |s: &ffs_mig::fleet::FreeSlice| {
                    pref.iter()
                        .position(|&q| q == s.profile)
                        .unwrap_or(usize::MAX)
                };
                viable.sort_by_key(|s| (rank(s), s.id));
            }
            BaselineKind::Infless => {
                // Throughput-greedy: largest slice first.
                viable.sort_by_key(|s| (std::cmp::Reverse(s.profile), s.id));
            }
        }
        viable.into_iter().next()
    }
}

impl Placer for BaselinePlacer {
    fn place(&self, core: &mut EngineCore, f: FuncId) -> Option<(DeploymentPlan, NodeId)> {
        let pick = self.pick_slice(core, f)?;
        let profile = core.catalog.profile(f);
        let all: Vec<ffs_dag::NodeId> = profile.dag.nodes().collect();
        let partition = ffs_dag::PipelinePartition::new(vec![all.clone()]);
        let plan = DeploymentPlan {
            partition,
            stages: vec![ffs_pipeline::plan::StagePlan {
                nodes: all,
                slice: pick.id,
                profile: pick.profile,
                mem_gb: profile.total_mem_gb(),
            }],
            cv: 0.0,
        };
        let node = core.fleet.node_id_of(pick.id.gpu).expect("valid gpu");
        Some((plan, node))
    }
}

/// Baseline scaling: reactive scale-up plus the exclusive keep-alive —
/// idle instances hold their slice until `baseline_keep_alive` expires.
pub struct BaselineAutoscaler;

impl Autoscaler for BaselineAutoscaler {
    fn on_arrival(&self, _core: &mut EngineCore, _f: FuncId) {}

    fn scale(
        &self,
        core: &mut EngineCore,
        placer: &dyn Placer,
        now: SimTime,
        sched: &mut Scheduler<Event>,
    ) {
        // Scale up. Only functions that have ever seen an arrival can be
        // pressured (demand and backlog both rest at zero otherwise), so
        // the sweep walks the engine's active set instead of the catalog.
        for fi in 0..core.active_funcs.len() {
            let f = core.active_funcs[fi];
            for _ in 0..MAX_LAUNCHES_PER_TICK {
                let cap = core.capacity_rps(f);
                // Epsilon floor: the demand EWMA never decays to exactly
                // zero, so an idle function must not oscillate between
                // releasing and re-acquiring its slice.
                let pressured = core.demand_rps[f] > (cap * core.cfg.scaleup_headroom).max(1e-6)
                    || core.pending[f].len() > 1;
                if !pressured {
                    break;
                }
                let Some((plan, node)) = placer.place(core, f) else {
                    break;
                };
                core.launch(f, plan, node, now, sched);
            }
        }
        // Exclusive keep-alive: release only after a long idle period.
        let ids: Vec<InstanceId> = core.instances.keys().collect();
        for id in ids {
            let (idle_for, empty, f, throughput) = {
                let inst = core.instances.get(&id).expect("live");
                (
                    now.saturating_since(inst.last_used),
                    inst.is_empty() && inst.is_ready(),
                    inst.func,
                    inst.est.throughput_rps,
                )
            };
            if empty && idle_for >= core.cfg.baseline_keep_alive {
                let remaining = core.capacity_rps(f) - throughput;
                let target = core.demand_rps[f] / core.cfg.scaleup_headroom;
                if remaining >= target || core.demand_rps[f] < 1e-6 {
                    core.retire_instance(id, now);
                }
            }
        }
    }

    fn keep_alive(&self, _core: &mut EngineCore, _now: SimTime) {}
}

/// The policy bundle a baseline kind selects: its router and placer over
/// the shared engine, reactive scaling with exclusive keep-alive, and no
/// time sharing or migration.
pub fn baseline_policies(kind: BaselineKind) -> PolicyBundle {
    PolicyBundle {
        router: Box::new(BaselineRouter { kind }),
        shared: Box::new(NoSharedPool),
        autoscaler: Box::new(BaselineAutoscaler),
        migrator: Box::new(NoMigrator),
        placer: Box::new(BaselinePlacer { kind }),
    }
}

/// A monolithic-view baseline platform: the shared engine driven by
/// [`baseline_policies`].
pub struct MonolithicSystem {
    kind: BaselineKind,
    engine: Engine,
}

impl MonolithicSystem {
    /// Builds a baseline platform for the trace.
    ///
    /// # Panics
    /// Panics if the config's partition scheme is invalid or the trace
    /// invokes an unknown app; use [`MonolithicSystem::try_new`] to handle
    /// those as errors.
    pub fn new(kind: BaselineKind, cfg: FfsConfig, trace: &Trace) -> Self {
        Self::try_new(kind, cfg, trace)
            .unwrap_or_else(|e| panic!("invalid {} setup: {e}", kind.name()))
    }

    /// Fallible constructor: builds the platform or reports why the
    /// config/trace pair cannot be served.
    pub fn try_new(kind: BaselineKind, cfg: FfsConfig, trace: &Trace) -> Result<Self, EngineError> {
        Ok(MonolithicSystem {
            kind,
            engine: Engine::new(cfg, baseline_policies(kind), trace)?,
        })
    }

    /// The baseline's policy kind.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// Live instance count (introspection for tests).
    pub fn instance_count(&self) -> usize {
        self.engine.core.instance_count()
    }

    /// The function catalog.
    pub fn catalog(&self) -> &FunctionCatalog {
        &self.engine.core.catalog
    }

    /// The slice profiles currently allocated (for the Figure 3(b)-style
    /// "which slices does the baseline actually use" analysis).
    pub fn allocated_profiles(&self) -> Vec<SliceProfile> {
        self.engine
            .core
            .instances
            .values()
            .map(|i| i.plan.stages[0].profile)
            .collect()
    }
}

impl World for MonolithicSystem {
    type Event = Event;

    fn handle(&mut self, now: SimTime, ev: Event, sched: &mut Scheduler<Event>) {
        self.engine.handle(now, ev, sched)
    }
}

impl Platform for MonolithicSystem {
    fn drain(&self) -> SimDuration {
        self.engine.drain()
    }

    fn finalize(&mut self, end: SimTime) {
        self.engine.finalize(end)
    }

    fn take_hub(&mut self) -> MetricsHub {
        self.engine.take_hub()
    }

    fn num_gpus(&self) -> usize {
        self.engine.num_gpus()
    }

    fn slices_per_gpu(&self) -> usize {
        self.engine.slices_per_gpu()
    }

    fn fault_stats(&self) -> fluidfaas::platform::FaultStats {
        self.engine.fault_stats()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use ffs_trace::{AzureTraceConfig, WorkloadClass};
    use fluidfaas::platform::runner::run_platform;

    fn run(
        kind: BaselineKind,
        workload: WorkloadClass,
        secs: f64,
        seed: u64,
    ) -> fluidfaas::platform::runner::RunOutput {
        let cfg = FfsConfig::paper_default(workload);
        let trace = AzureTraceConfig::for_workload(workload, secs, seed).generate();
        let mut sys = MonolithicSystem::new(kind, cfg, &trace);
        run_platform(&mut sys, &trace)
    }

    #[test]
    fn esg_light_workload_is_healthy() {
        let out = run(BaselineKind::Esg, WorkloadClass::Light, 60.0, 1);
        assert!(
            out.log.slo_hit_rate() > 0.85,
            "ESG light hit rate {}",
            out.log.slo_hit_rate()
        );
    }

    #[test]
    fn esg_uses_smallest_viable_slice() {
        let cfg = FfsConfig::test_small(WorkloadClass::Light);
        let trace = AzureTraceConfig::steady(WorkloadClass::Light.apps(), 5.0, 2.0, 3).generate();
        let mut sys = MonolithicSystem::new(BaselineKind::Esg, cfg, &trace);
        let _ = run_platform(&mut sys, &trace);
        // Small variants fit 1g.10gb; ESG must have picked small slices
        // first (some spill to bigger ones as 1g slices run out).
        let profiles = sys.allocated_profiles();
        assert!(profiles.contains(&SliceProfile::G1_10), "{profiles:?}");
    }

    #[test]
    fn infless_grabs_large_slices_first() {
        let cfg = FfsConfig::test_small(WorkloadClass::Light);
        let trace = AzureTraceConfig::steady(WorkloadClass::Light.apps(), 5.0, 2.0, 3).generate();
        let mut sys = MonolithicSystem::new(BaselineKind::Infless, cfg, &trace);
        let _ = run_platform(&mut sys, &trace);
        let profiles = sys.allocated_profiles();
        assert!(profiles.contains(&SliceProfile::G4_40), "{profiles:?}");
    }

    #[test]
    fn heavy_workload_baseline_cannot_use_small_slices() {
        // Large variants need >= 3g.40gb monolithic: on the P1 partition
        // only 4g.40gb slices qualify, so at most one instance per GPU.
        let out = run(BaselineKind::Esg, WorkloadClass::Heavy, 60.0, 7);
        let gpus = 16.0;
        // Allocated GPCs can never exceed 4 per GPU for instances (the 2g
        // and 1g slices are unusable) — check the recorded peak.
        let peak = out
            .allocated_gpcs
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0, f64::max);
        assert!(peak <= 4.0 * gpus + 1e-9, "peak {peak}");
    }

    #[test]
    fn deterministic() {
        let a = run(BaselineKind::Esg, WorkloadClass::Medium, 30.0, 5);
        let b = run(BaselineKind::Esg, WorkloadClass::Medium, 30.0, 5);
        assert_eq!(a.log.slo_hit_rate(), b.log.slo_hit_rate());
    }
}
